//! RICSA — a Rust reproduction of *Computational Monitoring and Steering
//! Using Network-Optimized Visualization and Ajax Web Server* (Zhu, Wu &
//! Rao, IPDPS 2008).
//!
//! This umbrella crate re-exports the workspace crates so applications can
//! depend on a single `ricsa` crate:
//!
//! * [`netsim`] — the discrete-event wide-area network simulator,
//! * [`transport`] — the Robbins–Monro-stabilized transport and EPB
//!   estimation,
//! * [`vizdata`] — volume datasets, octrees and synthetic generators,
//! * [`viz`] — visualization algorithms and cost models,
//! * [`hydro`] — the VH1-like hydrodynamics simulator,
//! * [`pipemap`] — the pipeline-partitioning / network-mapping optimizer,
//! * [`adapt`] — live monitoring, change-point detection and adaptive
//!   re-mapping decisions,
//! * [`core`] — the RICSA framework, sessions and experiment drivers,
//! * [`webfront`] — the Ajax web front end.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![deny(missing_docs)]

pub use ricsa_adapt as adapt;
pub use ricsa_core as core;
pub use ricsa_hydro as hydro;
pub use ricsa_netsim as netsim;
pub use ricsa_pipemap as pipemap;
pub use ricsa_transport as transport;
pub use ricsa_viz as viz;
pub use ricsa_vizdata as vizdata;
pub use ricsa_webfront as webfront;

/// The version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        // Touch one symbol from every re-exported crate so a broken
        // re-export fails this crate's build/test.
        let _ = crate::netsim::presets::fig8_topology();
        let _ = crate::pipemap::pipeline::Pipeline::isosurface(1e6, 1e-9, 1e-8, 0.3, 1e-9, 1e6);
        let _ = crate::vizdata::dataset::DatasetCatalog::paper_datasets();
        let _ = crate::viz::cost::PipelineCostDb::representative();
        let _ = crate::hydro::steering::SteerableParams::default();
        let _ = crate::core::catalog::SimulationCatalog::default();
        let _ = crate::transport::rm::RmParams::for_target(1e6);
        let _ = crate::adapt::DetectorConfig::default();
        let _ = crate::webfront::hub::SessionHub::default();
        assert!(!crate::VERSION.is_empty());
    }
}
