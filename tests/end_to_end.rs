//! Integration tests spanning the workspace crates: the full steering loop
//! on the Fig. 8 deployment, the simulation-to-web-front-end path, and the
//! consistency between the analytical delay model and the simulated system.

use ricsa::core::api::{SimulationCommand, SimulationServer};
use ricsa::core::catalog::SimulationCatalog;
use ricsa::core::experiment::{run_loop_experiment, ExperimentOptions, LoopSpec};
use ricsa::core::session::{PathChoice, SteeringSession};
use ricsa::hydro::problems::Problem;
use ricsa::hydro::steering::SteerableParams;
use ricsa::netsim::presets::{fig8_topology, Fig8Site};
use ricsa::netsim::sim::Simulator;
use ricsa::netsim::time::SimTime;
use ricsa::viz::camera::Camera;
use ricsa::viz::isosurface::extract_isosurface;
use ricsa::viz::render::render_mesh;
use ricsa::vizdata::dataset::DatasetKind;
use ricsa::vizdata::field::Dims;
use ricsa::webfront::hub::Frame;
use ricsa::webfront::server::FrontEndServer;

/// The full loop: plan on the Fig. 8 topology, install the stages, simulate,
/// and check that the measured delay is in the same regime as the analytical
/// prediction and that every stage reported completion.
#[test]
fn steering_loop_runs_end_to_end_on_fig8() {
    let fig8 = fig8_topology();
    let catalog = SimulationCatalog::default();
    let mut plan = SteeringSession::plan(
        1,
        &fig8.topology,
        &catalog,
        "Jet",
        fig8.node(Fig8Site::GaTech),
        fig8.node(Fig8Site::Ornl),
        &PathChoice::Optimal,
    )
    .expect("planning succeeds");
    // Scale the pipeline down (1/64th) so the integration test stays fast;
    // the loop structure is unchanged.
    plan.pipeline.source_bytes /= 64.0;
    for module in &mut plan.pipeline.modules {
        module.output_bytes /= 64.0;
    }
    plan.vrt = ricsa::pipemap::vrt::VisualizationRoutingTable::from_mapping(
        &plan.pipeline,
        &ricsa::pipemap::network::NetGraph::from_topology(&fig8.topology),
        &plan.mapping,
        plan.predicted.total,
    );
    let mut sim = Simulator::new(fig8.topology.clone(), 11);
    SteeringSession::install(&plan, &mut sim, fig8.node(Fig8Site::Lsu), 2, 200e6);
    let delays = SteeringSession::run(&mut sim, 2, SimTime::from_secs(300.0));
    assert_eq!(delays.len(), 2, "both iterations must complete");
    assert!(delays.iter().all(|d| *d > 0.0 && d.is_finite()));
    // Stages reported processing via trace records.
    let stage_records = sim
        .trace()
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                ricsa::netsim::trace::TraceKind::StageCompleted { .. }
            )
        })
        .count();
    assert!(stage_records >= plan.mapping.path.len());
}

/// The paper's central comparison, at reduced scale: the optimizer's loop
/// beats the forced PC-PC loop on both the measured and the predicted delay.
/// (The full-scale speedups are reproduced by the `fig9_loops` binary and
/// recorded in EXPERIMENTS.md.)
#[test]
fn optimal_loop_beats_pc_pc_and_gap_grows_with_size() {
    // 1/16th of the paper's dataset sizes: large enough (1-7 MB) that the
    // network-optimized loop pays off, small enough for a fast test.  At a
    // few hundred kilobytes the direct PC-PC loop genuinely wins, which is
    // exactly the observation the paper makes for small datasets.
    let options = ExperimentOptions {
        size_scale: 1.0 / 16.0,
        max_virtual_time: SimTime::from_secs(200.0),
        ..ExperimentOptions::default()
    };
    let loops = LoopSpec::fig9_loops();
    for dataset in [DatasetKind::Rage, DatasetKind::VisibleWoman] {
        let optimal = run_loop_experiment(&loops[0], dataset, &options);
        let pc_pc = run_loop_experiment(&loops[4], dataset, &options);
        assert!(
            optimal.measured_delay < pc_pc.measured_delay,
            "{}: optimal {} should beat PC-PC {}",
            dataset.name(),
            optimal.measured_delay,
            pc_pc.measured_delay
        );
        // The analytical model agrees on the ranking.
        assert!(optimal.predicted_delay < pc_pc.predicted_delay);
    }
}

/// Live simulation → isosurface → rendered frame → Ajax front end → steering
/// command back into the simulation: the complete monitoring/steering path
/// without the WAN in between.
#[test]
fn simulation_to_web_front_end_round_trip() {
    let front_end = FrontEndServer::start("127.0.0.1:0").expect("bind front end");
    let hub = front_end.hub();
    let inbox = front_end.inbox();

    let mut server = SimulationServer::startup();
    let (commands, datasets) = server.wait_accept_connection();
    commands
        .send(SimulationCommand::Start {
            problem: Problem::SodShockTube,
            dims: Dims::new(48, 8, 8),
            params: SteerableParams {
                end_cycle: 6,
                ..SteerableParams::default()
            },
        })
        .unwrap();

    // Simulate a browser posting a steering change after the first frame.
    inbox.post(SteerableParams {
        cfl: 0.2,
        end_cycle: 6,
        ..SteerableParams::default()
    });

    let camera = Camera::with_viewport(64, 64);
    while server.run_cycle() {
        if let Some(params) = inbox.drain_latest() {
            commands
                .send(SimulationCommand::UpdateParameters(params))
                .unwrap();
        }
        if let Some(snapshot) = datasets.try_iter().last() {
            let pressure = snapshot.variable("pressure").unwrap();
            let (lo, hi) = pressure.value_range();
            let surface = extract_isosurface(pressure, lo + 0.5 * (hi - lo), 16);
            let image = render_mesh(&surface.mesh, &camera, [0.8, 0.8, 0.8]);
            hub.publish(Frame {
                sequence: 0,
                cycle: snapshot.cycle,
                time: snapshot.time,
                image: image.encode_raw(),
                monitors: vec![("max_pressure".into(), hi as f64)],
            });
        }
    }
    // The steering change reached the solver.
    assert!((server.params().unwrap().cfl - 0.2).abs() < 1e-9);
    // Frames were published and are poll-able like a browser would.
    assert!(hub.latest_sequence() >= 3);
    let frame = hub
        .poll_after(0, std::time::Duration::from_millis(50))
        .expect("a frame is available");
    assert!(frame.image.starts_with(b"RICSAIMG"));
    front_end.shutdown();
}

/// The serving layer at the wire level: two frames that differ in a small
/// region, fetched over one keep-alive socket — the delta poll must ship
/// only the changed tiles yet reconstruct the full frame exactly.
#[test]
fn web_front_end_delta_polls_reconstruct_full_frames_over_http() {
    use ricsa::viz::image::Image;
    use ricsa::webfront::http::read_blocking_response;
    use ricsa::webfront::hub::{apply_delta, delta_from_json, image_from_json};
    use std::io::{BufReader, Write};

    let front_end = FrontEndServer::start("127.0.0.1:0").expect("bind front end");
    let hub = front_end.hub();
    let mut img = Image::filled(96, 96, [40, 40, 40, 255]);
    hub.publish(Frame {
        sequence: 0,
        cycle: 1,
        time: 0.1,
        image: img.encode_raw(),
        monitors: vec![],
    });
    for y in 10..20 {
        for x in 10..20 {
            img.set(x, y, [250, 80, 10, 255]);
        }
    }
    hub.publish(Frame {
        sequence: 0,
        cycle: 2,
        time: 0.2,
        image: img.encode_raw(),
        monitors: vec![],
    });

    let stream = std::net::TcpStream::connect(front_end.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut fetch = |path: &str| -> serde_json::Value {
        writer
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: l\r\n\r\n").as_bytes())
            .unwrap();
        let (status, _, body) = read_blocking_response(&mut reader).unwrap();
        assert_eq!(status, 200, "GET {path}");
        serde_json::from_slice(&body).unwrap()
    };

    // All three requests ride the same keep-alive connection.
    let full1 = fetch("/api/poll?since=0&timeout_ms=100&mode=full");
    assert_eq!(full1["sequence"], 1);
    let prev = Image::decode_raw(&image_from_json(&full1).expect("decodable full frame")).unwrap();

    let delta2 = fetch("/api/poll?since=1&timeout_ms=100&mode=delta");
    assert_eq!(delta2["mode"], "delta");
    let (base, delta) = delta_from_json(&delta2).expect("parseable delta");
    assert_eq!(base, 1);
    assert!(
        !delta.tiles.is_empty() && delta.tiles.len() <= 4,
        "a 10x10 edit touches at most 4 tiles, got {}",
        delta.tiles.len()
    );

    let latest = fetch("/api/frame");
    let want = Image::decode_raw(&image_from_json(&latest).expect("decodable full frame")).unwrap();
    assert_eq!(
        apply_delta(&prev, &delta),
        want,
        "delta reconstruction must equal the full frame"
    );
    front_end.shutdown();
}

/// The analytical model and the catalog agree across all three datasets:
/// predicted delay is monotone in dataset size for every loop of Fig. 9.
#[test]
fn predicted_delays_are_monotone_in_dataset_size_for_every_loop() {
    let options = ExperimentOptions {
        size_scale: 1.0 / 256.0,
        max_virtual_time: SimTime::from_secs(60.0),
        ..ExperimentOptions::default()
    };
    for spec in LoopSpec::fig9_loops() {
        let mut last = 0.0;
        for dataset in DatasetKind::ALL {
            let result = run_loop_experiment(&spec, dataset, &options);
            assert!(
                result.predicted_delay > last,
                "{}: prediction not monotone",
                spec.name
            );
            last = result.predicted_delay;
        }
    }
}
