//! Wire-level multi-session isolation audit.
//!
//! N session hubs behind ONE readiness-backed HTTP server, with racing
//! publishers and pollers over real sockets.  Every session publishes
//! frames colour-stamped with its own id; every poller audits, per
//! received payload, that
//!
//! * no frame (or delta base) from another session ever leaks in — the
//!   `session` monitor tag, the session colour pixel and the hub epoch
//!   must all match the polled session,
//! * no sequence is lost and none is duplicated — cursor-driven pollers
//!   must see exactly `1..=FRAMES`, delta pollers a strictly increasing
//!   subsequence whose reconstruction lands on the final image,
//! * deltas apply only against the exact frame the client holds
//!   (`base_sequence == held`), and the reconstructed pixels equal the
//!   published ones byte-for-byte.

use ricsa_viz::image::Image;
use ricsa_webfront::http::read_blocking_response;
use ricsa_webfront::hub::{apply_delta, delta_from_json, image_from_json};
use ricsa_webfront::{Backend, Frame, FrontEndConfig, HttpServerConfig, MultiFrontEnd};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sessions served concurrently by the one server.
const SESSIONS: u64 = 3;
/// Frames each session's publisher emits.
const FRAMES: u64 = 30;
/// Image edge length (small: the payloads race, they don't need to be big).
const EDGE: usize = 16;

/// The session's solid colour — distinct per session so any cross-hub
/// leak is visible in a single pixel.
fn session_red(session: u64) -> u8 {
    (session * 40) as u8
}

/// The image published as frame `seq` of `session`: the session colour
/// everywhere, plus a per-frame marker pixel so consecutive frames differ
/// (deltas are non-empty) and a reconstructed image identifies its frame.
fn session_image(session: u64, seq: u64) -> Image {
    let mut img = Image::filled(EDGE, EDGE, [session_red(session), 0, 0, 255]);
    img.set(1, 1, [seq as u8, 255, 0, 255]);
    img
}

/// One persistent keep-alive connection speaking minimal HTTP/1.1.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Wire {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// GET `path` on this connection and parse the JSON body.
    fn get(&mut self, path: &str) -> serde_json::Value {
        self.writer
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: l\r\n\r\n").as_bytes())
            .expect("write request");
        let (status, _, body) = read_blocking_response(&mut self.reader).expect("read response");
        assert_eq!(status, 200, "GET {path} failed");
        serde_json::from_slice(&body).expect("json body")
    }
}

/// Audit one payload's session identity: monitor tag, epoch, and (when an
/// image is in hand) the session colour pixel.
fn audit_identity(session: u64, epoch: u64, value: &serde_json::Value, image: Option<&Image>) {
    let tags: Vec<(String, f64)> = serde_json::from_value(&value["monitors"]).expect("monitors");
    assert_eq!(
        tags.iter().find(|(k, _)| k == "session").map(|(_, v)| *v),
        Some(session as f64),
        "session {session}: payload carries another session's monitor tag: {value:?}"
    );
    assert_eq!(
        value["epoch"].as_u64(),
        Some(epoch),
        "session {session}: epoch changed mid-stream (foreign hub?)"
    );
    if let Some(img) = image {
        assert_eq!(
            img.get(0, 0)[0],
            session_red(session),
            "session {session}: image pixel carries another session's colour"
        );
        let seq = value["sequence"].as_u64().unwrap();
        assert_eq!(
            img.get(1, 1)[0],
            seq as u8,
            "session {session}: image marker does not match sequence {seq}"
        );
    }
}

/// Cursor-driven full-mode poller: never sends `since`, relying entirely
/// on the server-side delivery-acknowledged cursor.  Must receive exactly
/// `1..=FRAMES`, in order, with no gap and no duplicate.
fn run_full_poller(addr: SocketAddr, session: u64, done: Arc<AtomicBool>) {
    let mut wire = Wire::connect(addr);
    let reg = wire.get(&format!("/s/{session}/api/client"));
    let client = reg["client"].as_u64().expect("client id");
    let epoch = reg["epoch"].as_u64().expect("epoch");
    let mut received: Vec<u64> = Vec::new();
    let mut idle_after_done = 0;
    while received.last() != Some(&FRAMES) {
        let value = wire.get(&format!(
            "/s/{session}/api/poll?client={client}&timeout_ms=400"
        ));
        match value["sequence"].as_u64() {
            Some(seq) => {
                let raw = image_from_json(&value).expect("full payload image");
                let img = Image::decode_raw(&raw).expect("RICSAIMG");
                audit_identity(session, epoch, &value, Some(&img));
                received.push(seq);
            }
            None => {
                audit_identity(session, epoch, &value, None);
                if done.load(Ordering::Relaxed) {
                    idle_after_done += 1;
                    assert!(
                        idle_after_done < 10,
                        "session {session}: publisher finished but poller stuck at \
                         {received:?} — lost frame(s)"
                    );
                }
            }
        }
    }
    let expect: Vec<u64> = (1..=FRAMES).collect();
    assert_eq!(
        received, expect,
        "session {session}: cursor-driven poller must see every sequence exactly once"
    );
}

/// Explicit-`since` delta-mode poller: reconstructs the stream from tile
/// deltas, asserting every delta's base is exactly the frame it holds.
fn run_delta_poller(addr: SocketAddr, session: u64, done: Arc<AtomicBool>) {
    let mut wire = Wire::connect(addr);
    let reg = wire.get(&format!("/s/{session}/api/client"));
    let client = reg["client"].as_u64().expect("client id");
    let epoch = reg["epoch"].as_u64().expect("epoch");
    let mut held: Option<(u64, Image)> = None;
    let mut idle_after_done = 0;
    while held.as_ref().map(|(seq, _)| *seq) != Some(FRAMES) {
        let since = held.as_ref().map(|(seq, _)| *seq).unwrap_or(0);
        let value = wire.get(&format!(
            "/s/{session}/api/poll?client={client}&mode=delta&since={since}&timeout_ms=400"
        ));
        let Some(seq) = value["sequence"].as_u64() else {
            audit_identity(session, epoch, &value, None);
            if done.load(Ordering::Relaxed) {
                idle_after_done += 1;
                assert!(
                    idle_after_done < 10,
                    "session {session}: delta poller stuck at {since} — lost tail"
                );
            }
            continue;
        };
        assert!(
            seq > since,
            "session {session}: sequence went backwards ({since} -> {seq})"
        );
        let img = if value["mode"].as_str() == Some("delta") {
            let (base, delta) = delta_from_json(&value).expect("delta payload");
            let (held_seq, held_img) = held.as_ref().expect("delta before any frame held");
            assert_eq!(
                base, *held_seq,
                "session {session}: delta base {base} is not the held frame {held_seq} — \
                 applying it would corrupt pixels"
            );
            apply_delta(held_img, &delta)
        } else {
            let raw = image_from_json(&value).expect("full payload image");
            Image::decode_raw(&raw).expect("RICSAIMG")
        };
        audit_identity(session, epoch, &value, Some(&img));
        // The reconstruction must be byte-identical to what was published.
        assert_eq!(
            img.pixels,
            session_image(session, seq).pixels,
            "session {session}: reconstructed frame {seq} differs from the published one"
        );
        held = Some((seq, img));
    }
}

#[test]
fn racing_sessions_never_leak_frames_or_drop_sequences() {
    let config = FrontEndConfig {
        http: HttpServerConfig {
            backend: Backend::Readiness,
            ..HttpServerConfig::default()
        },
        hub_capacity: 64,
        ..FrontEndConfig::default()
    };
    let front = MultiFrontEnd::start_with("127.0.0.1:0", config).expect("start server");
    let addr = front.addr();
    for session in 1..=SESSIONS {
        front.add_session(session);
    }
    let done = Arc::new(AtomicBool::new(false));

    // Pollers first: they race the publishers from frame 1.
    let mut pollers = Vec::new();
    for session in 1..=SESSIONS {
        for _ in 0..2 {
            let d = done.clone();
            pollers.push(std::thread::spawn(move || {
                run_full_poller(addr, session, d)
            }));
        }
        let d = done.clone();
        pollers.push(std::thread::spawn(move || {
            run_delta_poller(addr, session, d)
        }));
    }

    // One publisher thread per session, racing each other and the pollers.
    let publishers: Vec<_> = (1..=SESSIONS)
        .map(|session| {
            let endpoints = front.session(session).expect("registered");
            std::thread::spawn(move || {
                for seq in 1..=FRAMES {
                    let assigned = endpoints.hub.publish(Frame {
                        sequence: 0,
                        cycle: seq,
                        time: seq as f64 * 0.1,
                        image: session_image(session, seq).encode_raw(),
                        monitors: vec![("session".into(), session as f64)],
                    });
                    assert_eq!(assigned, seq, "single publisher owns the sequence space");
                    // Throttle so pollers keep up and nothing falls off the
                    // retention ring: lost-vs-dropped must stay unambiguous.
                    std::thread::sleep(Duration::from_millis(3));
                }
            })
        })
        .collect();

    for publisher in publishers {
        publisher.join().expect("publisher thread");
    }
    done.store(true, Ordering::Relaxed);
    for poller in pollers {
        poller.join().expect("poller audit failed");
    }

    // Retirement is immediate: the routes disappear while others live on.
    assert!(front.retire_session(1));
    let mut wire = Wire::connect(addr);
    wire.writer
        .write_all(b"GET /s/1/api/state HTTP/1.1\r\nHost: l\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_blocking_response(&mut wire.reader).unwrap();
    assert_eq!(status, 404, "retired session must vanish from the wire");
    let listing = Wire::connect(addr).get("/api/sessions");
    let ids: Vec<u64> = serde_json::from_value(&listing["sessions"]).unwrap();
    assert_eq!(ids, vec![2, 3], "listing tracks retirement");
    front.shutdown();
}
