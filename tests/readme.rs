//! Keep README.md honest: every command it shows must reference artifacts
//! that exist, the crate map must cover the workspace, and the quickstart
//! snippet must match a runnable example (which this test executes
//! end-to-end through the library, mirroring `examples/quickstart.rs`).

use ricsa::core::catalog::SimulationCatalog;
use ricsa::core::session::{PathChoice, SteeringSession};
use ricsa::netsim::presets::{fig8_topology, Fig8Site};
use ricsa::netsim::sim::Simulator;
use ricsa::netsim::time::SimTime;
use std::path::Path;

fn readme() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("README.md");
    std::fs::read_to_string(path).expect("README.md exists at the workspace root")
}

/// Every `--example NAME` / `--bin NAME` mentioned in README commands must
/// exist as a source file, so the snippets cannot silently rot.
#[test]
fn readme_commands_reference_existing_artifacts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = readme();
    let words: Vec<&str> = text.split_whitespace().collect();
    let mut checked = 0;
    for (i, word) in words.iter().enumerate() {
        let (dir, what) = match *word {
            "--example" => ("examples", "example"),
            "--bin" => ("crates/bench/src/bin", "bench binary"),
            _ => continue,
        };
        let name = words
            .get(i + 1)
            .expect("a name follows the flag")
            .trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_');
        let file = root.join(dir).join(format!("{name}.rs"));
        assert!(
            file.is_file(),
            "README references {what} '{name}' but {} does not exist",
            file.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected several README commands, found {checked}"
    );
}

/// The crate map table must list every member under crates/ (and the shims
/// row), so the map cannot drift from the workspace layout.
#[test]
fn readme_crate_map_covers_the_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = readme();
    let crates = std::fs::read_dir(root.join("crates")).expect("crates/ exists");
    for entry in crates {
        let name = entry.expect("readable dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            text.contains(&format!("`crates/{name}`")),
            "README crate map is missing `crates/{name}`"
        );
    }
    assert!(
        text.contains("`shims/*`"),
        "README crate map is missing the shims row"
    );
}

/// The serving-layer section must show the load-bench command (the binary
/// itself is existence-checked by `readme_commands_reference_existing_artifacts`)
/// and the crate map must describe `crates/webfront` as the serving layer
/// it now is, not the old one-thread-per-request server.
#[test]
fn readme_serving_layer_section_matches_the_code() {
    let text = readme();
    assert!(
        text.contains("--bin webfront_load -- --quick"),
        "README must show the webfront_load --quick command"
    );
    for promise in ["encode-once", "delta tiles", "keep-alive", "thread-pool"] {
        assert!(
            text.contains(promise),
            "README serving-layer/crate-map text must mention '{promise}'"
        );
    }
    // The promises hold against the actual crate surface.
    use ricsa::webfront::http::HttpServerConfig;
    use ricsa::webfront::hub::{PollMode, SessionHub};
    let config = HttpServerConfig::default();
    assert!(config.workers > 1, "thread-pool promise");
    let hub = SessionHub::default();
    hub.publish(ricsa::webfront::hub::Frame {
        sequence: 0,
        cycle: 1,
        time: 0.0,
        image: ricsa::viz::image::Image::filled(4, 4, [1, 2, 3, 255]).encode_raw(),
        monitors: vec![],
    });
    let encodes = hub.encode_count();
    for _ in 0..10 {
        hub.try_payload(0, PollMode::Full);
    }
    assert_eq!(hub.encode_count(), encodes, "encode-once promise");
}

/// The readiness-core claims in the serving-layer section must hold
/// against the crate surface: `Backend::auto()` picks kernel readiness
/// where epoll exists, the RLE wire codec is lossless, and a client 2-8
/// frames behind is served one composed delta chain that applies exactly
/// to the frame it retains.
#[test]
fn readme_readiness_section_matches_the_code() {
    let text = readme();
    for promise in [
        "readiness",
        "epoll",
        "parked",
        "composed delta chains",
        "RLE",
        "audited on the wire",
        "Backend::auto()",
        "arc_swap",
    ] {
        assert!(
            text.contains(promise),
            "README serving-layer text must mention '{promise}'"
        );
    }
    use ricsa::viz::image::Image;
    use ricsa::webfront::hub::{
        apply_delta, delta_from_json, image_from_json, Frame, PollMode, SessionHub,
    };
    use ricsa::webfront::Backend;
    // Auto-selection: kernel readiness wherever epoll exists (CI runs on
    // Linux); the portable pool everywhere else.
    if cfg!(target_os = "linux") {
        assert_eq!(
            Backend::auto(),
            Backend::Readiness,
            "Backend::auto() promise"
        );
    } else {
        assert_eq!(Backend::auto(), Backend::Pool, "portable fallback promise");
    }
    let hub = SessionHub::default();
    let publish = |img: &Image, cycle: u64| {
        hub.publish(Frame {
            sequence: 0,
            cycle,
            time: cycle as f64,
            image: img.encode_raw(),
            monitors: vec![],
        });
    };
    let mut img = Image::filled(96, 96, [30, 30, 30, 255]);
    publish(&img, 1);
    let first = hub.latest_payload().expect("a published frame");
    // The flat frame ships RLE-compressed, and decodes back bit-exactly.
    let full: serde_json::Value = serde_json::from_str(&first.json).unwrap();
    assert_eq!(full["codec"], "rle", "flat frames take the RLE pass");
    let retained =
        Image::decode_raw(&image_from_json(&full).expect("decodable full frame")).unwrap();
    assert_eq!(retained, img, "RLE losslessness promise");
    for step in 0..3usize {
        for y in 0..8 {
            for x in 0..8 {
                img.set(8 * step + x, y, [200, 40, 10, 255]);
            }
        }
        publish(&img, 2 + step as u64);
    }
    // The client still holds frame 1, now three behind: one composed
    // chain carries it straight to the head.
    let payload = hub
        .try_payload(first.sequence, PollMode::Delta)
        .expect("newer frames exist");
    assert!(payload.is_delta, "3 behind must still be served a delta");
    assert_eq!(payload.sequence, hub.latest_sequence());
    let composed: serde_json::Value = serde_json::from_str(&payload.json).unwrap();
    let (base, delta) = delta_from_json(&composed).expect("parseable composed delta");
    assert_eq!(
        base, first.sequence,
        "the chain applies to the retained frame"
    );
    assert_eq!(
        apply_delta(&retained, &delta),
        img,
        "chain exactness promise"
    );
}

/// The adaptive re-mapping section must show the `adapt_live` command and
/// its promises must hold against the actual crate surface: deterministic
/// schedules, passive telemetry with no probe traffic, and a change-point
/// detector that confirms a collapse but not jitter.
#[test]
fn readme_adaptive_section_matches_the_code() {
    let text = readme();
    assert!(
        text.contains("--bin adapt_live -- --quick"),
        "README must show the adapt_live --quick command"
    );
    for promise in [
        "change-point",
        "hysteresis",
        "warm-started",
        "FlowTelemetry",
    ] {
        assert!(
            text.contains(promise),
            "README adaptive/crate-map text must mention '{promise}'"
        );
    }
    // Seeded schedules are byte-identical per seed.
    use ricsa::netsim::dynamics::{generate_schedule, ScheduleParams};
    let a = generate_schedule(8, &ScheduleParams::default(), 5);
    let b = generate_schedule(8, &ScheduleParams::default(), 5);
    assert_eq!(a, b, "generate_schedule determinism promise");
    // The detector confirms a sustained collapse, never plain jitter.
    use ricsa::adapt::{ChangePointDetector, DetectorConfig};
    let mut detector = ChangePointDetector::new(DetectorConfig::default());
    for i in 0..20 {
        let jitter = if i % 2 == 0 { 1.05 } else { 0.95 };
        assert!(detector.observe(100.0 * jitter).is_none(), "jitter tripped");
    }
    assert!(
        (0..5).any(|_| detector.observe(10.0).is_some()),
        "a sustained collapse must confirm"
    );
}

/// The adaptation-sweep section must show the `adapt_sweep` command and
/// its promises must hold against the actual crate surface: schedule
/// families keyed off one base seed, a byte-deterministic record set,
/// and an RTT signal that detects a degradation goodput cannot see.
#[test]
fn readme_adaptation_sweep_section_matches_the_code() {
    let text = readme();
    assert!(
        text.contains("--bin adapt_sweep -- --quick"),
        "README must show the adapt_sweep --quick command"
    );
    for promise in [
        "generate_schedule_family",
        "win rate",
        "oracle",
        "byte-deterministic",
        "RTT",
    ] {
        assert!(
            text.contains(promise),
            "README adaptation-sweep text must mention '{promise}'"
        );
    }
    // Schedule families reproduce from one base seed, member by member.
    use ricsa::netsim::dynamics::{
        family_member_seed, generate_schedule, generate_schedule_family, ScheduleParams,
    };
    let params = ScheduleParams::default();
    let family = generate_schedule_family(8, &params, 21, 3);
    assert_eq!(family, generate_schedule_family(8, &params, 21, 3));
    assert_eq!(
        family[2],
        generate_schedule(8, &params, family_member_seed(21, 2)),
        "family member promise: keyed off the base seed"
    );
    // The RTT signal confirms a degradation flat goodput never shows.
    use ricsa::adapt::{AdaptConfig, AdaptMonitor};
    use ricsa::pipemap::network::NetGraph;
    use ricsa::pipemap::pipeline::{ModuleSpec, Pipeline};
    use ricsa::transport::telemetry::FlowTelemetry;
    let pipeline = Pipeline::new(
        "readme",
        4e6,
        vec![
            ModuleSpec::new("filter", 2e-9, 4e6),
            ModuleSpec::new("render", 5e-9, 1e5).requiring_graphics(),
        ],
    );
    let mut graph = NetGraph::new();
    let src = graph.add_node("src", 1.0, false);
    let mid = graph.add_node("mid", 4.0, true);
    let dst = graph.add_node("dst", 1.5, true);
    graph.add_bidirectional(src, mid, 30e6, 0.01);
    graph.add_bidirectional(mid, dst, 30e6, 0.01);
    graph.add_bidirectional(src, dst, 8e6, 0.02);
    let mut monitor = AdaptMonitor::new(pipeline, graph, src, dst, AdaptConfig::default())
        .expect("the three-node graph admits a mapping");
    let sample = |rtt: f64| FlowTelemetry {
        flow_id: 1,
        goodput_bps: 10e6, // flat: the flow never saturated the link
        rtt_s: rtt,
        goodput_samples: 1,
        rtt_samples: 1,
        last_update_s: 1.0,
        ..FlowTelemetry::default()
    };
    for (t, rtt) in [0.02, 0.02, 0.02, 0.2, 0.2].iter().enumerate() {
        monitor.ingest(src, mid, &sample(*rtt));
        monitor.evaluate(t as f64);
    }
    let record = monitor
        .decisions()
        .last()
        .expect("RTT inflation must confirm a detection");
    assert_eq!(record.signal, ricsa::adapt::SIGNAL_RTT);
}

/// The multi-session section must show the `session_sweep` command and
/// its promises must hold against the actual crate surface: the joint
/// solve is deterministic and never predicts worse than independent
/// under the contended model, and the session layer audits frames per
/// session.
#[test]
fn readme_multi_session_section_matches_the_code() {
    let text = readme();
    assert!(
        text.contains("--bin session_sweep -- --quick"),
        "README must show the session_sweep --quick command"
    );
    for promise in [
        "contention-aware joint solve",
        "fair-share-priced",
        "Jain fairness",
        "SessionMux",
        "cross-traffic",
        "contention_wan",
    ] {
        assert!(
            text.contains(promise),
            "README multi-session text must mention '{promise}'"
        );
    }
    // The joint solve reproduces and never predicts worse than round
    // zero (the independent solves) under the contended objective.
    use ricsa::core::sessions::{contention_wan, demo_session_pipeline};
    use ricsa::pipemap::dp::optimize_with;
    use ricsa::pipemap::joint::{contended_delays, solve_joint, JointOptions, JointSession};
    use ricsa::pipemap::network::NetGraph;
    let wan = contention_wan(3);
    let graph = NetGraph::from_topology(&wan.topology);
    let sessions: Vec<JointSession> = (0..3)
        .map(|i| JointSession {
            pipeline: demo_session_pipeline(1.0 + 0.1 * i as f64),
            source: wan.sources[i].0,
            destination: wan.clients[i].0,
        })
        .collect();
    let options = JointOptions::default();
    let a = solve_joint(&sessions, &graph, &options).expect("feasible");
    let b = solve_joint(&sessions, &graph, &options).expect("feasible");
    assert_eq!(a.mappings, b.mappings, "joint determinism promise");
    let independent: Vec<_> = sessions
        .iter()
        .map(|s| {
            optimize_with(&s.pipeline, &graph, s.source, s.destination, &options.dp)
                .0
                .expect("feasible")
                .mapping
        })
        .collect();
    let total = |mappings: &[ricsa::pipemap::delay::Mapping]| -> f64 {
        contended_delays(&sessions, &graph, mappings)
            .iter()
            .map(|d| d.total)
            .sum()
    };
    assert!(
        total(&a.mappings) <= total(&independent) + 1e-9,
        "joint never-worse-than-independent promise"
    );
    // Under 3-way contention the joint solve actually spreads: not every
    // session crosses the shared trunk.
    let (h1, h2) = wan.trunk_nodes();
    let on_trunk = a
        .mappings
        .iter()
        .filter(|m| {
            m.path
                .windows(2)
                .any(|w| (w[0], w[1]) == (h1, h2) || (w[1], w[0]) == (h1, h2))
        })
        .count();
    assert!(on_trunk < 3, "joint must move someone off the trunk");
}

/// The quickstart snippet names the quickstart example; run the same flow
/// through the library (at reduced scale) so the snippet's promise — plan,
/// simulate, measure — actually holds.
#[test]
fn readme_quickstart_flow_runs_end_to_end() {
    let text = readme();
    assert!(
        text.contains("cargo run --release --example quickstart"),
        "README quickstart must reference the quickstart example"
    );
    let fig8 = fig8_topology();
    let catalog = SimulationCatalog::default();
    let mut plan = SteeringSession::plan(
        1,
        &fig8.topology,
        &catalog,
        "Rage",
        fig8.node(Fig8Site::GaTech),
        fig8.node(Fig8Site::Ornl),
        &PathChoice::Optimal,
    )
    .expect("the Fig. 8 deployment always admits a mapping");
    // 1/64th scale keeps this test fast; the loop structure is unchanged.
    plan.pipeline.source_bytes /= 64.0;
    for module in &mut plan.pipeline.modules {
        module.output_bytes /= 64.0;
    }
    plan.vrt = ricsa::pipemap::vrt::VisualizationRoutingTable::from_mapping(
        &plan.pipeline,
        &ricsa::pipemap::network::NetGraph::from_topology(&fig8.topology),
        &plan.mapping,
        plan.predicted.total,
    );
    assert!(plan.predicted.total > 0.0);
    let mut sim = Simulator::new(fig8.topology.clone(), 42);
    SteeringSession::install(&plan, &mut sim, fig8.node(Fig8Site::Lsu), 1, 200e6);
    let delays = SteeringSession::run(&mut sim, 1, SimTime::from_secs(300.0));
    assert_eq!(delays.len(), 1, "the quickstart iteration must complete");
    assert!(delays[0].is_finite() && delays[0] > 0.0);
}
