//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`'s unbounded MPMC channel subset over
//! `std::sync::mpsc`: the std receiver is single-consumer, so it is shared
//! behind a mutex to give crossbeam's cloneable-`Receiver` semantics.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    pub use std::sync::mpsc::SendError;

    /// Why a `try_recv` returned no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Why a blocking `recv` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv().map_err(|_| RecvError)
        }

        /// Drain currently available messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Iterator over immediately-available messages.
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnected_when_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(7u32).unwrap();
            assert_eq!(rx2.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn try_iter_drains_available_messages() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            let drained: Vec<i32> = rx.try_iter().collect();
            assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn senders_work_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = rx.try_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
