//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io `serde`/`serde_derive` are not vendored in this
//! repository (builds must work with no network), so this proc-macro crate
//! derives the value-tree `Serialize`/`Deserialize` traits defined by the
//! sibling `shims/serde` crate.  It parses the item token stream by hand —
//! no `syn`/`quote` — which is enough for the shapes this workspace uses:
//! named-field structs, tuple structs, unit structs, and enums whose
//! variants are unit, tuple, or struct-like.  Generic types are not
//! supported and produce a compile error.
//!
//! The generated representation mirrors serde_json's externally-tagged
//! default: structs become JSON objects, newtype structs are transparent,
//! unit enum variants become strings, and data-carrying variants become
//! single-key objects `{"Variant": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_serialize(&name, &body)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_deserialize(&name, &body)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Scan past attributes and visibility to the `struct`/`enum` keyword.
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s == "enum";
                }
                i += 1; // `pub`, `crate`, ...
            }
            Some(_) => i += 1, // e.g. the group in `pub(crate)`
            None => panic!("derive: no struct/enum keyword found"),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) shim: generic type `{name}` is not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_enum {
                Body::Enum(parse_variants(&inner))
            } else {
                Body::NamedStruct(parse_named_fields(&inner))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Body::TupleStruct(
            count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
        ),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
        other => panic!("derive: unexpected token after `{name}`: {other:?}"),
    };
    (name, body)
}

/// Extract field names from the tokens inside a brace group, skipping
/// attributes, visibility and type tokens (tracking `<`/`>` depth so commas
/// inside generic arguments don't split fields).
fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1; // past the name
        i += 1; // past the `:`
        fields.push(name);
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Count comma-separated fields in a tuple struct/variant body.
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the comma separating variants (handles discriminants).
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(name: &str, body: &Body) -> String {
    let mut f = String::new();
    let _ = write!(
        f,
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ "
    );
    match body {
        Body::NamedStruct(fields) => {
            f.push_str("let mut __m = ::serde::Map::new(); ");
            for fld in fields {
                let _ = write!(
                    f,
                    "__m.insert(::std::string::String::from(\"{fld}\"), ::serde::Serialize::to_value(&self.{fld})); "
                );
            }
            f.push_str("::serde::Value::Object(__m) ");
        }
        Body::TupleStruct(1) => {
            f.push_str("::serde::Serialize::to_value(&self.0) ");
        }
        Body::TupleStruct(n) => {
            f.push_str("::serde::Value::Array(::std::vec![");
            for k in 0..*n {
                let _ = write!(f, "::serde::Serialize::to_value(&self.{k}), ");
            }
            f.push_str("]) ");
        }
        Body::UnitStruct => {
            f.push_str("::serde::Value::Null ");
        }
        Body::Enum(variants) => {
            f.push_str("match self { ");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            f,
                            "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")), "
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = write!(f, "{name}::{vn}({}) => {{ ", binders.join(", "));
                        if *n == 1 {
                            f.push_str("let __inner = ::serde::Serialize::to_value(__f0); ");
                        } else {
                            f.push_str("let __inner = ::serde::Value::Array(::std::vec![");
                            for b in &binders {
                                let _ = write!(f, "::serde::Serialize::to_value({b}), ");
                            }
                            f.push_str("]); ");
                        }
                        let _ = write!(
                            f,
                            "let mut __m = ::serde::Map::new(); __m.insert(::std::string::String::from(\"{vn}\"), __inner); ::serde::Value::Object(__m) }}, "
                        );
                    }
                    VariantKind::Named(fields) => {
                        let _ = write!(f, "{name}::{vn} {{ {} }} => {{ ", fields.join(", "));
                        f.push_str("let mut __inner = ::serde::Map::new(); ");
                        for fld in fields {
                            let _ = write!(
                                f,
                                "__inner.insert(::std::string::String::from(\"{fld}\"), ::serde::Serialize::to_value({fld})); "
                            );
                        }
                        let _ = write!(
                            f,
                            "let mut __m = ::serde::Map::new(); __m.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(__inner)); ::serde::Value::Object(__m) }}, "
                        );
                    }
                }
            }
            f.push_str("} ");
        }
    }
    f.push_str("} }");
    f
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let mut f = String::new();
    let _ = write!(
        f,
        "impl ::serde::Deserialize for {name} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ "
    );
    match body {
        Body::NamedStruct(fields) => {
            let _ = write!(
                f,
                "let __m = __v.as_object().ok_or_else(|| ::serde::Error::expected(\"object for {name}\"))?; "
            );
            let _ = write!(f, "::std::result::Result::Ok({name} {{ ");
            for fld in fields {
                let _ = write!(f, "{fld}: ::serde::de_field(__m, \"{fld}\")?, ");
            }
            f.push_str("}) ");
        }
        Body::TupleStruct(1) => {
            let _ = write!(
                f,
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?)) "
            );
        }
        Body::TupleStruct(n) => {
            let _ = write!(
                f,
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}\"))?; if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}\")); }} "
            );
            let _ = write!(f, "::std::result::Result::Ok({name}(");
            for k in 0..*n {
                let _ = write!(f, "::serde::Deserialize::from_value(&__a[{k}])?, ");
            }
            f.push_str(")) ");
        }
        Body::UnitStruct => {
            let _ = write!(f, "::std::result::Result::Ok({name}) ");
        }
        Body::Enum(variants) => {
            f.push_str("match __v { ");
            // Unit variants arrive as plain strings.
            f.push_str("::serde::Value::String(__s) => match __s.as_str() { ");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    let _ = write!(f, "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}), ");
                }
            }
            let _ = write!(
                f,
                "__other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")), }}, "
            );
            // Data variants arrive as single-key objects.
            f.push_str("::serde::Value::Object(__m) if __m.len() == 1 => { let (__k, __inner) = __m.iter().next().expect(\"len checked\"); match __k.as_str() { ");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            f,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)), "
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let _ = write!(
                            f,
                            "\"{vn}\" => {{ let __a = __inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}::{vn}\"))?; if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}::{vn}\")); }} ::std::result::Result::Ok({name}::{vn}("
                        );
                        for k in 0..*n {
                            let _ = write!(f, "::serde::Deserialize::from_value(&__a[{k}])?, ");
                        }
                        f.push_str(")) }, ");
                    }
                    VariantKind::Named(fields) => {
                        let _ = write!(
                            f,
                            "\"{vn}\" => {{ let __im = __inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object for {name}::{vn}\"))?; ::std::result::Result::Ok({name}::{vn} {{ "
                        );
                        for fld in fields {
                            let _ = write!(f, "{fld}: ::serde::de_field(__im, \"{fld}\")?, ");
                        }
                        f.push_str("}) }, ");
                    }
                }
            }
            let _ = write!(
                f,
                "__other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")), }} }}, "
            );
            let _ = write!(
                f,
                "_ => ::std::result::Result::Err(::serde::Error::expected(\"string or single-key object for {name}\")), }} "
            );
        }
    }
    f.push_str("} }");
    f
}
