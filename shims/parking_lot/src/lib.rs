//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`Condvar` behind parking_lot's nicer API:
//! `lock()` returns the guard directly (poisoning is absorbed — a panicked
//! writer does not wedge every later reader), and `Condvar::wait_for` takes
//! `&mut MutexGuard` instead of consuming it.

use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // (std's wait consumes and returns it); outside that window it is
    // always `Some`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut guard = pair.0.lock();
        let res = pair.1.wait_for(&mut guard, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(!*guard);
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let mut guard = pair2.0.lock();
            while !*guard {
                let res = pair2.1.wait_for(&mut guard, Duration::from_secs(5));
                if res.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn poisoned_lock_is_absorbed() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
