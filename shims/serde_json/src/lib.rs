//! Offline stand-in for `serde_json`.
//!
//! Text encoding/decoding for the `serde` shim's [`Value`] tree: a strict
//! recursive-descent JSON parser, compact emission via `Value`'s `Display`,
//! and a `json!` macro covering the literal-object/array subset this
//! workspace uses.

use serde::{Deserialize, Serialize};
pub use serde::{Map, Value};

/// Errors from this module are the serde shim's error type.
pub use serde::Error;

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(value.to_value().to_string().into_bytes())
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserialize a [`Value`] tree into a typed value.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

// ----------------------------------------------------------------- parser

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null", Value::Null),
            Some(b't') => self.expect_keyword("true", Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".to_string()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid unicode escape".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(Error("unescaped control character in string".to_string()))
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error("unterminated string".to_string()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated unicode escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid unicode escape".to_string()))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error("invalid unicode escape".to_string()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

// ------------------------------------------------------------------ macro

/// Build a [`Value`] from a JSON-ish literal.  Supports the subset used in
/// this workspace: objects with string-literal keys, arrays, `null`, and
/// arbitrary serializable Rust expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::json_object_entries!(__map, $($body)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal helper for [`json!`]: munches `"key": value` entries.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($map:ident $(,)?) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_entries!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_entries!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : $value:expr, $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a":[1,2.5,null,true],"b":"x\n\"y\"","c":{"d":-3}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("0").unwrap(), Value::Number(0.0));
        assert_eq!(parse("1e-3").unwrap(), Value::Number(0.001));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::String("é".to_string()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".to_string()));
    }

    #[test]
    fn json_macro_subset() {
        let n = 7u64;
        let v = json!({
            "a": n,
            "b": null,
            "c": true,
            "d": [1, 2],
            "e": { "nested": "x" },
        });
        assert_eq!(
            v.to_string(),
            r#"{"a":7,"b":null,"c":true,"d":[1,2],"e":{"nested":"x"}}"#
        );
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1, 2]).to_string(), "[1,2]");
        assert_eq!(json!(3.5), Value::Number(3.5));
    }

    #[test]
    fn typed_round_trip_via_text() {
        let v: Vec<(String, f64)> = vec![("a".to_string(), 1.5), ("b".to_string(), -2.0)];
        let bytes = to_vec(&v).unwrap();
        let back: Vec<(String, f64)> = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
