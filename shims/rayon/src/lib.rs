//! Offline stand-in for `rayon`.
//!
//! Implements the slice of rayon this workspace actually uses — an indexed
//! source (`Range<usize>`, `&[T]`, `&Vec<T>`) followed by `.map(f).collect()`
//! — with real parallelism: the index space is split into one contiguous
//! chunk per available core and mapped on `std::thread::scope` threads,
//! preserving element order.  There is no work stealing; for the regular,
//! evenly-sized loops in this workspace (pencil sweeps, z-slabs, scanlines,
//! octree blocks) static chunking is within noise of rayon.
//!
//! Anything fancier (`reduce`, `fold`, adaptive splitting) is intentionally
//! absent — add it here if a caller needs it, keeping call sites compatible
//! with the real rayon so the shim can be swapped out later.

use std::num::NonZeroUsize;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Run `f` over `0..len` on scoped threads, one contiguous chunk per worker,
/// and return the results in index order.
fn parallel_map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(len);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("parallel map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Mirror of `rayon::iter::IntoParallelIterator` for the sources used here.
pub trait IntoParallelIterator {
    type Item;
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel view of `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel range, ready to collect.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    pub fn collect<C, T>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FromIterator<T>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = self.f;
        parallel_map_indexed(len, |i| f(start + i))
            .into_iter()
            .collect()
    }
}

/// Mirror of rayon's `par_iter` on slices (and `Vec` via deref).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParSlice<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { items: self }
    }
}

/// A parallel view of a slice.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel slice, ready to collect.
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromIterator<U>,
    {
        let items = self.items;
        let f = self.f;
        parallel_map_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn slice_par_iter_matches_sequential() {
        let data: Vec<i64> = (0..997).collect();
        let par: Vec<i64> = data.par_iter().map(|x| x * x).collect();
        let seq: Vec<i64> = data.iter().map(|x| x * x).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn closures_capture_shared_state() {
        let weights = vec![1.0f64; 64];
        let view = &weights;
        let sums: Vec<f64> = (0..64)
            .into_par_iter()
            .map(|i| view[..=i].iter().sum())
            .collect();
        assert_eq!(sums[63], 64.0);
    }
}
