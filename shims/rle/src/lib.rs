//! Offline stand-in for a lossless compression crate (the role `lz4_flex`
//! or `miniz_oxide` would play online): PackBits-style run-length coding
//! over 4-byte pixel units.
//!
//! Rendered RGBA frames are dominated by flat background runs, but the
//! runs repeat at *pixel* granularity — a byte-level RLE sees the repeating
//! 4-byte pattern `R G B A R G B A …` as runs of length one and expands
//! the data.  Coding whole pixels keeps the scheme one pass, allocation-
//! light and exactly reversible:
//!
//! ```text
//! [orig_len: u32 LE] then records over 4-byte units:
//!   control 0..=127   -> (control + 1) literal pixels follow
//!   control 128..=255 -> one pixel follows, repeated (control - 126) times
//! trailing orig_len % 4 bytes are stored raw after the last record
//! ```
//!
//! Run records cover 2..=129 repeats in 5 bytes, so any run of two or more
//! equal pixels already shrinks.  [`decompress`] validates every length and
//! returns `None` on any truncation or trailing garbage, making it safe on
//! wire input.

/// Compress `data` (any byte length; pixel framing starts at offset 0).
///
/// The output always starts with the 4-byte original length, so even the
/// empty input encodes to 4 bytes.  Worst case (no two adjacent pixels
/// equal) the output is `4 + len + ceil(len/512)` bytes; callers that want
/// compression *only when it wins* should compare lengths and keep the
/// original otherwise (see `ricsa-webfront`'s codec field).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + data.len() / 4);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    let pixels = data.len() / 4;
    let body = &data[..pixels * 4];
    let mut i = 0usize; // pixel index
    let mut literal_start = 0usize;
    let pixel = |index: usize| &body[index * 4..index * 4 + 4];
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        // Emit pixels [from, to) as literal records of <= 128 pixels.
        let mut at = from;
        while at < to {
            let take = (to - at).min(128);
            out.push((take - 1) as u8);
            out.extend_from_slice(&body[at * 4..(at + take) * 4]);
            at += take;
        }
    };
    while i < pixels {
        let mut run = 1usize;
        while run < 129 && i + run < pixels && pixel(i + run) == pixel(i) {
            run += 1;
        }
        if run >= 2 {
            flush_literals(&mut out, literal_start, i);
            out.push((run + 126) as u8);
            out.extend_from_slice(pixel(i));
            i += run;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, pixels);
    out.extend_from_slice(&data[pixels * 4..]);
    out
}

/// Decompress a [`compress`] output; `None` on any malformed input
/// (truncated records, length mismatch, or trailing garbage).
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 4 {
        return None;
    }
    let orig_len = u32::from_le_bytes(data[..4].try_into().ok()?) as usize;
    let mut out = Vec::with_capacity(orig_len);
    let body_pixels = (orig_len / 4) * 4;
    let tail_len = orig_len - body_pixels;
    let mut at = 4usize;
    while out.len() < body_pixels {
        let control = *data.get(at)?;
        at += 1;
        if control < 128 {
            let take = (control as usize + 1) * 4;
            let literal = data.get(at..at + take)?;
            out.extend_from_slice(literal);
            at += take;
        } else {
            let repeats = control as usize - 126;
            let unit = data.get(at..at + 4)?;
            for _ in 0..repeats {
                out.extend_from_slice(unit);
            }
            at += 4;
        }
        if out.len() > body_pixels {
            return None; // a record overran the declared pixel area
        }
    }
    let tail = data.get(at..at + tail_len)?;
    out.extend_from_slice(tail);
    at += tail_len;
    if at != data.len() || out.len() != orig_len {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed).expect("own output must decompress");
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc"); // below one pixel: raw tail only
        round_trip(b"abcd");
        round_trip(b"abcdef"); // one pixel + 2-byte tail
    }

    #[test]
    fn flat_regions_shrink_dramatically() {
        // A 64x64 solid RGBA image: 16384 bytes of one repeated pixel.
        let flat: Vec<u8> = [10u8, 20, 30, 255].repeat(4096);
        let packed = compress(&flat);
        assert!(
            packed.len() < flat.len() / 20,
            "flat image must shrink >20x, got {} -> {}",
            flat.len(),
            packed.len()
        );
        round_trip(&flat);
    }

    #[test]
    fn pixel_runs_that_defeat_byte_rle_still_shrink() {
        // Alternating bytes inside each pixel (no byte-level runs at all),
        // but every pixel equal — the pixel-unit coder must still win.
        let data: Vec<u8> = [1u8, 2, 1, 2].repeat(1000);
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 10);
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_grows_only_marginally() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..4096).map(|_| rng.gen::<u8>()).collect();
        let packed = compress(&data);
        assert!(packed.len() <= 4 + data.len() + data.len() / 512 + 1);
        round_trip(&data);
    }

    #[test]
    fn seeded_random_pixel_images_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for case in 0..50 {
            let len = rng.gen_range(0..2000);
            // Mix runs and noise: pick from a tiny palette so runs form.
            let palette: Vec<[u8; 4]> = (0..3)
                .map(|_| [rng.gen(), rng.gen(), rng.gen(), 255])
                .collect();
            let mut data = Vec::with_capacity(len);
            while data.len() + 4 <= len {
                let px = palette[rng.gen_range(0..palette.len())];
                data.extend_from_slice(&px);
            }
            while data.len() < len {
                data.push(rng.gen());
            }
            let packed = compress(&data);
            assert_eq!(
                decompress(&packed).as_deref(),
                Some(data.as_slice()),
                "case {case} (len {len}) must round-trip"
            );
        }
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        assert_eq!(decompress(b""), None);
        assert_eq!(decompress(b"\x01\x00"), None); // truncated header
        let good = compress(&[9u8, 9, 9, 9].repeat(64));
        assert!(decompress(&good).is_some());
        // Truncations at every prefix length must fail cleanly.
        for cut in 0..good.len() {
            assert_eq!(decompress(&good[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage must fail, not be silently ignored.
        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(decompress(&padded), None);
        // A record overrunning the declared length must fail.
        let mut overrun = vec![4u8, 0, 0, 0]; // claims 4 bytes (1 pixel)
        overrun.push(129 + 10); // but encodes a long run
        overrun.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(decompress(&overrun), None);
    }
}
