//! Offline stand-in for the `arc-swap` crate: a container holding an
//! `Arc<T>` that readers can snapshot without taking any lock and writers
//! can replace atomically.
//!
//! The real crate uses hazard-pointer-style debt tracking; this stand-in
//! uses the *left-right* technique (Ramalhete & Correia): two slots each
//! holding an `Arc<T>`, an index saying which slot readers should use, and
//! two generation counters that let the single writer wait until no reader
//! can still be touching the slot it is about to overwrite.  Reads are
//! wait-free (two atomic RMWs plus an `Arc::clone`); writes are serialized
//! behind a mutex and spin briefly while draining readers.
//!
//! Only the small API surface the workspace needs is provided:
//! [`ArcSwap::new`], [`ArcSwap::from_pointee`], [`ArcSwap::load_full`],
//! [`ArcSwap::store`] and [`ArcSwap::swap`].

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// An `Arc<T>` that can be read lock-free and replaced atomically.
///
/// Readers never block writers and vice versa: `load_full` is wait-free,
/// `store` waits only for readers that entered before the flip (each of
/// which holds the structure for the duration of one `Arc::clone`).
pub struct ArcSwap<T> {
    /// The two value slots; `lr` names the one current readers use.
    slots: [UnsafeCell<Arc<T>>; 2],
    /// Index of the slot readers should read (0 or 1).
    lr: AtomicUsize,
    /// Index of the reader-generation counter arriving readers bump.
    version: AtomicUsize,
    /// Active reader counts, one per generation.
    readers: [AtomicUsize; 2],
    /// Serializes writers; readers never touch it.
    write_lock: Mutex<()>,
}

// Readers clone `Arc<T>` out of a slot no writer is mutating (the
// left-right protocol guarantees exclusivity), so sharing is sound exactly
// when sharing an `Arc<T>` itself is.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Wrap an existing `Arc` for lock-free swapping.
    pub fn new(initial: Arc<T>) -> Self {
        ArcSwap {
            slots: [UnsafeCell::new(initial.clone()), UnsafeCell::new(initial)],
            lr: AtomicUsize::new(0),
            version: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            write_lock: Mutex::new(()),
        }
    }

    /// Convenience constructor: allocate the `Arc` internally.
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Snapshot the current value (wait-free).
    pub fn load_full(&self) -> Arc<T> {
        let generation = self.version.load(SeqCst);
        self.readers[generation].fetch_add(1, SeqCst);
        let slot = self.lr.load(SeqCst);
        // Safety: the writer only mutates the slot `lr` does NOT point to,
        // and it never repoints `lr` at a slot until all readers that could
        // see the old index have departed (the generation drain below).
        let value = unsafe { (*self.slots[slot].get()).clone() };
        self.readers[generation].fetch_sub(1, SeqCst);
        value
    }

    /// Replace the value; readers started before the call may still see the
    /// old one, readers started after it see the new one.
    pub fn store(&self, new: Arc<T>) {
        self.swap(new);
    }

    /// Replace the value, returning the previous one.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let _guard = self.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let active = self.lr.load(SeqCst);
        let inactive = 1 - active;
        // Safety: `write_lock` is held, and no reader dereferences the
        // inactive slot (readers follow `lr`, and the previous writer
        // drained every reader that could still have seen `inactive` as
        // active before releasing the lock).
        let old = unsafe {
            let slot = &mut *self.slots[inactive].get();
            *slot = new.clone();
            (*self.slots[active].get()).clone()
        };
        // New readers now pick up the freshly written slot ...
        self.lr.store(inactive, SeqCst);
        // ... and we wait out both reader generations so nobody can still
        // be inside the now-inactive slot before we equalize it.
        let generation = self.version.load(SeqCst);
        let next = 1 - generation;
        self.drain(next);
        self.version.store(next, SeqCst);
        self.drain(generation);
        // Safety: every reader that could dereference `active` has left.
        unsafe {
            *self.slots[active].get() = new;
        }
        old
    }

    /// Spin until the given reader generation count reaches zero.  Reader
    /// critical sections are one `Arc::clone` long, so this resolves in
    /// nanoseconds unless a reader was preempted mid-section — hence the
    /// yield, which matters on single-core hosts.
    fn drain(&self, generation: usize) {
        let mut spins = 0u32;
        while self.readers[generation].load(SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load_full()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn store_then_load_round_trips() {
        let cell = ArcSwap::from_pointee(1u64);
        assert_eq!(*cell.load_full(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load_full(), 3);
    }

    #[test]
    fn dropped_values_are_released() {
        struct Tracked(Arc<Counter>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(Counter::new(0));
        let cell = ArcSwap::from_pointee(Tracked(drops.clone()));
        for _ in 0..10 {
            cell.store(Arc::new(Tracked(drops.clone())));
        }
        drop(cell);
        // 1 initial + 10 stored values, all released exactly once.
        assert_eq!(drops.load(SeqCst), 11);
    }

    #[test]
    fn concurrent_readers_always_see_a_published_value() {
        // A writer publishes strictly increasing counters while readers
        // hammer load_full; every snapshot must be a value the writer
        // actually published, and time must never run backwards for any
        // single reader.
        const WRITES: u64 = 2_000;
        const READERS: usize = 4;
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    // Run until the final value is observed, so the test is
                    // meaningful even when the scheduler runs the writer to
                    // completion first (single-core hosts).
                    while last < WRITES {
                        let now = *cell.load_full();
                        assert!(now <= WRITES, "unpublished value {now}");
                        assert!(now >= last, "went backwards: {last} -> {now}");
                        last = now;
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        for i in 1..=WRITES {
            cell.store(Arc::new(i));
            if i % 64 == 0 {
                std::thread::yield_now(); // interleave with readers
            }
        }
        for handle in readers {
            assert!(handle.join().expect("reader panicked") > 0);
        }
        assert_eq!(*cell.load_full(), WRITES);
    }
}
