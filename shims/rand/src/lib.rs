//! Offline stand-in for `rand`.
//!
//! Provides the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen` for the primitive types the
//! simulator draws, and `Rng::gen_range` over integer ranges.  The engine
//! is xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! statistically solid for simulation workloads (it is not, and does not
//! claim to be, cryptographically secure).

use std::ops::Range;

/// Core trait: a source of 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's analogue of
/// sampling from rand's `Standard` distribution).
pub trait UniformSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with `gen_range(lo..hi)`.
pub trait RangeSample: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.abs_diff(range.start) as u64;
                // Unbiased sampling via rejection from the widest multiple
                // of `span` that fits in 64 bits.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let draw = rng.next_u64();
                    if draw < zone {
                        return range.start.wrapping_add((draw % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        range.start + (range.end - range.start) * unit
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    ///
    /// Note: unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
    /// cryptographically secure; the simulator only needs determinism and
    /// good equidistribution.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                return StdRng::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = r.gen_range(0..5usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 should appear");
        for _ in 0..200 {
            let x = r.gen_range(-3i64..4);
            assert!((-3..4).contains(&x));
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
