//! Offline stand-in for the readiness-API crates (`epoll`, `polling`,
//! `mio`): minimal epoll + eventfd bindings declared directly against the
//! C library `std` already links, so no crates.io dependency is needed.
//!
//! On Linux this exposes a [`Poller`] (an `epoll` instance with one-shot
//! and level-triggered registration), an [`EventFd`] (the classic
//! wake-a-sleeping-`epoll_wait` doorbell), and [`raise_nofile_limit`]
//! (needed before opening tens of thousands of benchmark sockets).  On
//! other platforms every constructor returns `ErrorKind::Unsupported`, so
//! callers can probe with [`is_supported`] and fall back to a portable
//! code path at runtime rather than at compile time.

/// Raw file descriptor alias, so the public API does not depend on
/// `std::os::unix` on non-Unix targets.
pub type RawFd = i32;

/// What a registration should watch for, and whether it disarms itself
/// after firing once (`EPOLLONESHOT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
    /// Disarm the registration after the first event; the owner must call
    /// [`Poller::modify`] to re-arm (prevents level-triggered storms while
    /// a parked connection is being serviced elsewhere).
    pub oneshot: bool,
}

impl Interest {
    /// Watch for readability only, one-shot.
    pub fn readable_oneshot() -> Self {
        Interest {
            readable: true,
            writable: false,
            oneshot: true,
        }
    }

    /// Watch for readability, level-triggered (stays armed).
    pub fn readable() -> Self {
        Interest {
            readable: true,
            writable: false,
            oneshot: false,
        }
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `key` the descriptor was registered with.
    pub key: u64,
    /// Data can be read (includes peer-closed, see `hangup`).
    pub readable: bool,
    /// Data can be written.
    pub writable: bool,
    /// The peer closed or the descriptor errored; the connection should be
    /// serviced so the regular read path observes the EOF/error.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const RLIMIT_NOFILE: i32 = 7;
    const EINTR: i32 = 4;

    /// The kernel's `struct epoll_event`; packed on x86-64 (the one ABI
    /// where the 12-byte layout is not naturally aligned).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    // `std` links libc on every Linux target, so these resolve without any
    // crates.io dependency.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    fn last_error() -> io::Error {
        io::Error::last_os_error()
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        if interest.oneshot {
            mask |= EPOLLONESHOT;
        }
        mask
    }

    /// An epoll instance.  See the crate docs for the supported subset.
    #[derive(Debug)]
    pub struct Poller {
        fd: RawFd,
    }

    impl Poller {
        /// Create a new epoll instance (`epoll_create1`).
        pub fn new() -> io::Result<Poller> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(last_error());
            }
            Ok(Poller { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, mask: u32, key: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask,
                data: key,
            };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
            if rc < 0 {
                return Err(last_error());
            }
            Ok(())
        }

        /// Register a descriptor under `key`.
        pub fn add(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask_of(interest), key)
        }

        /// Re-arm / change an existing registration.
        pub fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask_of(interest), key)
        }

        /// Remove a registration (must precede closing the descriptor when
        /// duplicates of it might exist).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait for events, appending to `out` (cleared first).  `None`
        /// blocks indefinitely; `Some(d)` rounds up to whole milliseconds
        /// so a 1 ns timeout still sleeps rather than spins.  Returns the
        /// number of events delivered; `EINTR` reports as zero events.
        pub fn wait(
            &self,
            out: &mut Vec<Event>,
            max_events: usize,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            out.clear();
            let max = max_events.clamp(1, 4096) as i32;
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; max as usize];
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => {
                    let ms = d.as_millis();
                    let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                    ms.min(i32::MAX as u128) as i32
                }
            };
            let got = unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), max, timeout_ms) };
            if got < 0 {
                let err = last_error();
                if err.raw_os_error() == Some(EINTR) {
                    return Ok(0);
                }
                return Err(err);
            }
            for raw in buf.iter().take(got as usize) {
                let events = { raw.events };
                let data = { raw.data };
                out.push(Event {
                    key: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(got as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A kernel event counter used as a doorbell: writers `ring`, a thread
    /// sleeping in [`Poller::wait`] with the eventfd registered wakes and
    /// `drain`s it.  Non-blocking on both ends.
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        /// Create the doorbell.
        pub fn new() -> io::Result<EventFd> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(last_error());
            }
            Ok(EventFd { fd })
        }

        /// The descriptor, for registering with a [`Poller`].
        pub fn as_raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Ring the doorbell (add 1 to the counter).  Saturation (`EAGAIN`
        /// at u64::MAX-1) still leaves the descriptor readable, so it is
        /// ignored — the wake is already pending.
        pub fn ring(&self) {
            let one: u64 = 1;
            unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
        }

        /// Consume all pending rings so the descriptor stops polling
        /// readable; returns how many rings had accumulated.
        pub fn drain(&self) -> u64 {
            let mut count: u64 = 0;
            let got = unsafe { read(self.fd, &mut count as *mut u64 as *mut u8, 8) };
            if got == 8 {
                count
            } else {
                0
            }
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// Raise `RLIMIT_NOFILE` to at least `target` descriptors, pushing the
    /// hard limit too when privileged.  Returns the soft limit actually in
    /// effect afterwards (which may be below `target` for ordinary users).
    pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(last_error());
        }
        if lim.cur >= target {
            return Ok(lim.cur);
        }
        // Privileged processes may lift the hard limit as well.
        let want = RLimit {
            cur: target,
            max: lim.max.max(target),
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            return Ok(target);
        }
        // Unprivileged: the best we can do is the existing hard limit.
        let capped = RLimit {
            cur: target.min(lim.max),
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &capped) } < 0 {
            return Err(last_error());
        }
        Ok(capped.cur)
    }

    /// Whether the readiness backend can work here (always on Linux).
    pub fn is_supported() -> bool {
        true
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable fallback: every constructor reports `Unsupported`, and the
    //! serving layer falls back to its rotation worker pool at runtime.

    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll readiness backend is only available on Linux",
        )
    }

    /// Unsupported-platform placeholder for the Linux `Poller`.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails off Linux; probe with [`super::is_supported`].
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed here).
        pub fn add(&self, _fd: RawFd, _key: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed here).
        pub fn modify(&self, _fd: RawFd, _key: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed here).
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed here).
        pub fn wait(
            &self,
            _out: &mut Vec<Event>,
            _max_events: usize,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Unsupported-platform placeholder for the Linux `EventFd`.
    #[derive(Debug)]
    pub struct EventFd {}

    impl EventFd {
        /// Always fails off Linux.
        pub fn new() -> io::Result<EventFd> {
            Err(unsupported())
        }

        /// Unreachable (no `EventFd` can be constructed here).
        pub fn as_raw_fd(&self) -> RawFd {
            -1
        }

        /// Unreachable (no `EventFd` can be constructed here).
        pub fn ring(&self) {}

        /// Unreachable (no `EventFd` can be constructed here).
        pub fn drain(&self) -> u64 {
            0
        }
    }

    /// No-op off Linux: reports the request as satisfied so portable
    /// benchmark code does not need a cfg.
    pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
        Ok(target)
    }

    /// Whether the readiness backend can work here (never, off Linux).
    pub fn is_supported() -> bool {
        false
    }
}

pub use sys::{raise_nofile_limit, EventFd, Poller};

/// Whether this platform supports the readiness backend at all.
pub fn is_supported() -> bool {
    sys::is_supported()
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn socket_readability_is_reported_under_the_registered_key() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 7, Interest::readable_oneshot())
            .unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: a short wait returns no events.
        let got = poller
            .wait(&mut events, 16, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(got, 0, "no data, no event");

        client.write_all(b"ping").unwrap();
        let got = poller
            .wait(&mut events, 16, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(got, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // One-shot: the registration disarmed itself even though the data
        // is still unread.
        let got = poller
            .wait(&mut events, 16, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(got, 0, "oneshot must disarm");

        // Re-arm, observe again, then consume and delete.
        poller
            .modify(server.as_raw_fd(), 9, Interest::readable_oneshot())
            .unwrap();
        let got = poller
            .wait(&mut events, 16, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(got, 1);
        assert_eq!(events[0].key, 9, "modify updates the key");
        let mut buf = [0u8; 8];
        let mut server = server;
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 1, Interest::readable_oneshot())
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        let got = poller
            .wait(&mut events, 16, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(got, 1);
        assert!(events[0].readable && events[0].hangup);
    }

    #[test]
    fn eventfd_wakes_a_sleeping_wait_and_drains() {
        let poller = Poller::new().unwrap();
        let doorbell = EventFd::new().unwrap();
        poller
            .add(doorbell.as_raw_fd(), u64::MAX, Interest::readable())
            .unwrap();

        let ringer = std::thread::spawn({
            let fd = doorbell.as_raw_fd();
            move || {
                std::thread::sleep(Duration::from_millis(30));
                // Ring through the raw fd the way a remote waker would.
                let one: u64 = 1;
                let buf = one.to_ne_bytes();
                extern "C" {
                    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
                }
                let wrote = unsafe { write(fd, buf.as_ptr(), 8) };
                assert_eq!(wrote, 8);
            }
        });

        let start = Instant::now();
        let mut events = Vec::new();
        let got = poller
            .wait(&mut events, 16, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(got, 1);
        assert_eq!(events[0].key, u64::MAX);
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "the ring, not the timeout, must end the wait"
        );
        assert_eq!(doorbell.drain(), 1);
        // Drained: the level-triggered registration goes quiet again.
        let got = poller
            .wait(&mut events, 16, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(got, 0);
        ringer.join().unwrap();
    }

    #[test]
    fn nofile_limit_reaches_bench_scale() {
        // The 10k-connection bench needs ~2 fds per poller plus slack; the
        // call must at least not lower whatever is already in effect.
        let achieved = raise_nofile_limit(4096).unwrap();
        assert!(achieved >= 4096);
        assert!(is_supported());
    }
}
