//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `ricsa-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`, `black_box` — backed by a simple
//! wall-clock harness: warm up once, run `sample_size` timed samples of an
//! adaptively-chosen iteration count, and print min/median/mean per bench.
//! There is no statistical analysis, outlier rejection, or HTML report;
//! this exists so `cargo bench` produces honest comparative numbers with
//! zero external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    /// `--test` mode (what `cargo test --benches` passes): run each bench
    /// body exactly once to check it executes, skip timing.
    test_mode: bool,
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse harness-relevant flags (`--test`, `--bench`, a name filter),
    /// ignoring the rest of criterion's CLI surface.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown criterion flag: skip a possible value.
                    let _ = args.next();
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(&name.to_string(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        bencher.report(id);
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Runs and times one benchmark body, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: target ~5 ms per sample so fast bodies
        // are timed over many iterations and slow ones over a single run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<56} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{id:<56} min {:>12} median {:>12} mean {:>12}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Define a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Standalone timing helper for benchmark *binaries* (not Criterion
/// benches): measure the median wall-clock time of one call to `routine`
/// using exactly the warm-up + calibrated-iteration sampling the
/// [`Bencher`] harness uses, so numbers printed by bins are comparable
/// with `cargo bench` output across runs.
pub fn time_per_call<O, F: FnMut() -> O>(sample_size: usize, mut routine: F) -> Duration {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
        test_mode: false,
    };
    bencher.iter(&mut routine);
    let mut sorted = bencher.samples;
    sorted.sort();
    sorted[sorted.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body_and_records_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u64;
        c.bench_function("shim/self-test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0, "bench body must actually run");
    }

    #[test]
    fn groups_and_ids_compose_names() {
        let id = BenchmarkId::new("f", 32);
        assert_eq!(id.to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn time_per_call_returns_a_positive_median() {
        let mut n = 0u64;
        let d = time_per_call(3, || {
            n += 1;
            black_box(n)
        });
        assert!(d > Duration::ZERO);
        assert!(n > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(50)), "50 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
