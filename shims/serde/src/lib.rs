//! Offline stand-in for `serde`.
//!
//! This workspace builds with no network access, so the real serde cannot
//! be fetched.  This shim keeps the familiar surface — `Serialize`,
//! `Deserialize`, `#[derive(Serialize, Deserialize)]` — but collapses the
//! serializer/visitor machinery into a single JSON-like [`Value`] tree:
//! serializing produces a `Value`, deserializing consumes one.  The sibling
//! `serde_json` shim adds the text format on top.
//!
//! Swapping the real serde back in later only requires removing these shim
//! path-dependencies; call sites are written against the real API subset.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Object maps preserve deterministic (sorted) key order so serialized
/// bytes are reproducible across runs — the simulator depends on that.
pub type Map = BTreeMap<String, Value>;

/// A JSON-like value tree: the single data model of the shim.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Compact JSON text, matching what `serde_json::Value::to_string` yields.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(f, *n),
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; serde_json serializes them as null.
        f.write_str("null")
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        // Rust's float Display is shortest-round-trip, which is exactly
        // what a JSON encoder wants.
        write!(f, "{n}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Serialization into the shim's value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// (De)serialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn expected(what: &str) -> Error {
        Error(format!("expected {what}"))
    }

    pub fn unknown_variant(got: &str, ty: &str) -> Error {
        Error(format!("unknown variant `{got}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Fetch and deserialize one field of an object; absent fields deserialize
/// from `Null` so that `Option` fields may be omitted.
pub fn de_field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{key}`"))),
    }
}

// -------------------------------------------------------------- primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(Error::expected(concat!("integer (", stringify!($t), ")"))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::expected("number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::expected("single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::expected("2-element array"))?;
        if a.len() != 2 {
            return Err(Error::expected("2-element array"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::expected("3-element array"))?;
        if a.len() != 3 {
            return Err(Error::expected("3-element array"));
        }
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

// Maps serialize as arrays of `[key, value]` pairs rather than JSON
// objects: the simulator keys maps by ids (`NodeId`, `LinkId`), not
// strings, and the pair form round-trips any serializable key type while
// keeping deterministic order for `BTreeMap`.
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort the entries by serialized key text so HashMap serialization
        // is reproducible across runs despite randomized hash order.
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect();
        entries.sort_by_key(|a| a.to_string());
        Value::Array(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array of [key, value] pairs"))?
            .iter()
            .map(<(K, V)>::from_value)
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array of [key, value] pairs"))?
            .iter()
            .map(<(K, V)>::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(|a| a.to_string());
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Number(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = v
            .as_f64()
            .ok_or_else(|| Error::expected("number of seconds"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(Error::expected("non-negative finite seconds"));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert("b".to_string(), Value::Number(2.5));
        m.insert(
            "a".to_string(),
            Value::Array(vec![Value::Null, Value::Bool(true)]),
        );
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"a":[null,true],"b":2.5}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(-41.0).to_string(), "-41");
        assert_eq!(Value::Number(0.25).to_string(), "0.25");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Value::String("a\"b\\c\nd".to_string()).to_string(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::from_value(&some.to_value()).unwrap(),
            Some(7)
        );
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn index_on_missing_key_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
    }

    #[test]
    fn numeric_equality_across_types() {
        assert_eq!(Value::Number(4.0), 4);
        assert_eq!(Value::Number(4.0), 4u64);
        assert_ne!(Value::Number(4.5), 4);
    }
}
