//! Regular-grid scalar and vector fields.
//!
//! Fields are stored in x-fastest (row-major in x, then y, then z) order as
//! `f32`, matching the layout the visualization algorithms expect and the
//! 4-bytes-per-voxel accounting used when matching the paper's dataset sizes.

use serde::{Deserialize, Serialize};

/// Grid dimensions (number of voxels along each axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims {
    /// Number of samples along x.
    pub nx: usize,
    /// Number of samples along y.
    pub ny: usize,
    /// Number of samples along z.
    pub nz: usize,
}

impl Dims {
    /// Construct dimensions.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Dims { nx, ny, nz }
    }

    /// A cube with `n` samples per side.
    pub fn cube(n: usize) -> Self {
        Dims::new(n, n, n)
    }

    /// Total number of voxels.
    pub fn count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of bytes a `f32` field with these dimensions occupies.
    pub fn bytes(&self) -> usize {
        self.count() * std::mem::size_of::<f32>()
    }

    /// Linear index of voxel `(x, y, z)`; x varies fastest.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z * self.ny + y) * self.nx + x
    }

    /// Whether `(x, y, z)` lies inside the grid.
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    /// Number of cells (cubes between samples) along each axis; zero along
    /// axes with fewer than two samples.
    pub fn cell_dims(&self) -> Dims {
        Dims::new(
            self.nx.saturating_sub(1),
            self.ny.saturating_sub(1),
            self.nz.saturating_sub(1),
        )
    }
}

/// A scalar field sampled on a regular grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarField {
    /// Grid dimensions.
    pub dims: Dims,
    /// Physical spacing between samples along each axis.
    pub spacing: [f32; 3],
    /// Physical origin of sample `(0,0,0)`.
    pub origin: [f32; 3],
    /// Sample values, x-fastest.
    pub data: Vec<f32>,
}

impl ScalarField {
    /// A zero-filled field with unit spacing.
    pub fn zeros(dims: Dims) -> Self {
        ScalarField {
            dims,
            spacing: [1.0; 3],
            origin: [0.0; 3],
            data: vec![0.0; dims.count()],
        }
    }

    /// Build a field by evaluating `f(x, y, z)` (voxel indices) at every
    /// sample.
    pub fn from_fn(dims: Dims, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(dims.count());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        ScalarField {
            dims,
            spacing: [1.0; 3],
            origin: [0.0; 3],
            data,
        }
    }

    /// Value at voxel `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.dims.index(x, y, z)]
    }

    /// Set the value at voxel `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let i = self.dims.index(x, y, z);
        self.data[i] = v;
    }

    /// Number of bytes of sample data.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Minimum and maximum sample value (`(0, 0)` for an empty field).
    pub fn value_range(&self) -> (f32, f32) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Trilinear interpolation at a continuous voxel-space position.
    /// Positions outside the grid are clamped to the boundary.
    pub fn sample_trilinear(&self, px: f32, py: f32, pz: f32) -> f32 {
        let cl = |p: f32, n: usize| -> (usize, usize, f32) {
            if n <= 1 {
                return (0, 0, 0.0);
            }
            let p = p.clamp(0.0, (n - 1) as f32);
            let i0 = p.floor() as usize;
            let i1 = (i0 + 1).min(n - 1);
            (i0, i1, p - i0 as f32)
        };
        let (x0, x1, fx) = cl(px, self.dims.nx);
        let (y0, y1, fy) = cl(py, self.dims.ny);
        let (z0, z1, fz) = cl(pz, self.dims.nz);
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let c00 = lerp(self.get(x0, y0, z0), self.get(x1, y0, z0), fx);
        let c10 = lerp(self.get(x0, y1, z0), self.get(x1, y1, z0), fx);
        let c01 = lerp(self.get(x0, y0, z1), self.get(x1, y0, z1), fx);
        let c11 = lerp(self.get(x0, y1, z1), self.get(x1, y1, z1), fx);
        let c0 = lerp(c00, c10, fy);
        let c1 = lerp(c01, c11, fy);
        lerp(c0, c1, fz)
    }

    /// Central-difference gradient at voxel `(x, y, z)` (one-sided at the
    /// boundary), in physical units.
    pub fn gradient(&self, x: usize, y: usize, z: usize) -> [f32; 3] {
        let d = self.dims;
        let diff = |lo: f32, hi: f32, span: f32, h: f32| (hi - lo) / (span * h);
        let gx = {
            let x0 = x.saturating_sub(1);
            let x1 = (x + 1).min(d.nx - 1);
            diff(
                self.get(x0, y, z),
                self.get(x1, y, z),
                (x1 - x0).max(1) as f32,
                self.spacing[0],
            )
        };
        let gy = {
            let y0 = y.saturating_sub(1);
            let y1 = (y + 1).min(d.ny - 1);
            diff(
                self.get(x, y0, z),
                self.get(x, y1, z),
                (y1 - y0).max(1) as f32,
                self.spacing[1],
            )
        };
        let gz = {
            let z0 = z.saturating_sub(1);
            let z1 = (z + 1).min(d.nz - 1);
            diff(
                self.get(x, y, z0),
                self.get(x, y, z1),
                (z1 - z0).max(1) as f32,
                self.spacing[2],
            )
        };
        [gx, gy, gz]
    }
}

/// A 3-component vector field sampled on a regular grid (used by the
/// streamline module).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorField {
    /// Grid dimensions.
    pub dims: Dims,
    /// Physical spacing between samples along each axis.
    pub spacing: [f32; 3],
    /// Vector samples, x-fastest.
    pub data: Vec<[f32; 3]>,
}

impl VectorField {
    /// A zero-filled vector field.
    pub fn zeros(dims: Dims) -> Self {
        VectorField {
            dims,
            spacing: [1.0; 3],
            data: vec![[0.0; 3]; dims.count()],
        }
    }

    /// Build a vector field by evaluating `f(x, y, z)` at every sample.
    pub fn from_fn(dims: Dims, mut f: impl FnMut(usize, usize, usize) -> [f32; 3]) -> Self {
        let mut data = Vec::with_capacity(dims.count());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        VectorField {
            dims,
            spacing: [1.0; 3],
            data,
        }
    }

    /// Vector at voxel `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> [f32; 3] {
        self.data[self.dims.index(x, y, z)]
    }

    /// Number of bytes of sample data.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<[f32; 3]>()
    }

    /// Trilinearly interpolated vector at a continuous voxel-space position.
    pub fn sample_trilinear(&self, px: f32, py: f32, pz: f32) -> [f32; 3] {
        let component = |axis: usize| -> f32 {
            // Reuse scalar interpolation per component; cheap and clear.
            let cl = |p: f32, n: usize| -> (usize, usize, f32) {
                if n <= 1 {
                    return (0, 0, 0.0);
                }
                let p = p.clamp(0.0, (n - 1) as f32);
                let i0 = p.floor() as usize;
                let i1 = (i0 + 1).min(n - 1);
                (i0, i1, p - i0 as f32)
            };
            let (x0, x1, fx) = cl(px, self.dims.nx);
            let (y0, y1, fy) = cl(py, self.dims.ny);
            let (z0, z1, fz) = cl(pz, self.dims.nz);
            let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
            let g = |x: usize, y: usize, z: usize| self.get(x, y, z)[axis];
            let c00 = lerp(g(x0, y0, z0), g(x1, y0, z0), fx);
            let c10 = lerp(g(x0, y1, z0), g(x1, y1, z0), fx);
            let c01 = lerp(g(x0, y0, z1), g(x1, y0, z1), fx);
            let c11 = lerp(g(x0, y1, z1), g(x1, y1, z1), fx);
            lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
        };
        [component(0), component(1), component(2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_indexing_is_x_fastest() {
        let d = Dims::new(4, 3, 2);
        assert_eq!(d.count(), 24);
        assert_eq!(d.bytes(), 96);
        assert_eq!(d.index(0, 0, 0), 0);
        assert_eq!(d.index(1, 0, 0), 1);
        assert_eq!(d.index(0, 1, 0), 4);
        assert_eq!(d.index(0, 0, 1), 12);
        assert!(d.contains(3, 2, 1));
        assert!(!d.contains(4, 0, 0));
        assert_eq!(d.cell_dims(), Dims::new(3, 2, 1));
        assert_eq!(Dims::new(1, 1, 1).cell_dims(), Dims::new(0, 0, 0));
    }

    #[test]
    fn from_fn_and_accessors() {
        let f = ScalarField::from_fn(Dims::new(3, 3, 3), |x, y, z| (x + 10 * y + 100 * z) as f32);
        assert_eq!(f.get(2, 1, 0), 12.0);
        assert_eq!(f.get(0, 0, 2), 200.0);
        assert_eq!(f.nbytes(), 27 * 4);
        let (lo, hi) = f.value_range();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 222.0);
        let mut g = f.clone();
        g.set(0, 0, 0, -5.0);
        assert_eq!(g.value_range().0, -5.0);
    }

    #[test]
    fn trilinear_interpolation_reproduces_linear_functions() {
        // A function linear in x, y, z is reproduced exactly by trilinear
        // interpolation.
        let f = ScalarField::from_fn(Dims::cube(5), |x, y, z| {
            2.0 * x as f32 - 1.5 * y as f32 + 0.5 * z as f32
        });
        let exact = |x: f32, y: f32, z: f32| 2.0 * x - 1.5 * y + 0.5 * z;
        for &(x, y, z) in &[(0.5, 0.5, 0.5), (1.25, 2.75, 3.5), (0.0, 4.0, 2.2)] {
            assert!((f.sample_trilinear(x, y, z) - exact(x, y, z)).abs() < 1e-5);
        }
        // Clamping outside the domain.
        assert_eq!(f.sample_trilinear(-3.0, 0.0, 0.0), 0.0);
        assert_eq!(f.sample_trilinear(100.0, 0.0, 0.0), 8.0);
    }

    #[test]
    fn gradient_of_linear_field_is_constant() {
        let f = ScalarField::from_fn(Dims::cube(6), |x, y, z| {
            3.0 * x as f32 + 2.0 * y as f32 - 1.0 * z as f32
        });
        for &(x, y, z) in &[(0, 0, 0), (2, 3, 4), (5, 5, 5)] {
            let g = f.gradient(x, y, z);
            assert!((g[0] - 3.0).abs() < 1e-5, "{g:?}");
            assert!((g[1] - 2.0).abs() < 1e-5);
            assert!((g[2] + 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn vector_field_interpolation() {
        let v = VectorField::from_fn(Dims::cube(4), |x, y, z| {
            [x as f32, y as f32 * 2.0, z as f32 * 3.0]
        });
        assert_eq!(v.get(1, 2, 3), [1.0, 4.0, 9.0]);
        let s = v.sample_trilinear(0.5, 0.5, 0.5);
        assert!((s[0] - 0.5).abs() < 1e-6);
        assert!((s[1] - 1.0).abs() < 1e-6);
        assert!((s[2] - 1.5).abs() < 1e-6);
        assert_eq!(v.nbytes(), 64 * 12);
        let z = VectorField::zeros(Dims::cube(2));
        assert_eq!(z.get(1, 1, 1), [0.0; 3]);
    }

    #[test]
    fn empty_field_value_range() {
        let f = ScalarField::zeros(Dims::new(0, 0, 0));
        assert_eq!(f.value_range(), (0.0, 0.0));
    }
}
