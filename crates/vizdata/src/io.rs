//! A minimal tagged binary container for scalar fields.
//!
//! The paper's raw data "usually takes a multivariate format and is organized
//! in structures such as CDF, HDF, and NetCDF".  For the reproduction we need
//! a self-describing on-disk/in-memory format so that the data-source node
//! can cache simulation output and the filtering module can read it back;
//! this module provides a small header + little-endian `f32` payload format
//! with support for multiple named variables.

use crate::field::{Dims, ScalarField};
use serde::{Deserialize, Serialize};

/// Magic bytes identifying the container format ("RICSAVOL").
pub const MAGIC: &[u8; 8] = b"RICSAVOL";
/// Current container version.
pub const VERSION: u32 = 1;

/// Errors produced while encoding/decoding containers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoError {
    /// The magic bytes or version did not match.
    BadHeader(String),
    /// The buffer ended before the declared payload.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// A variable name was not valid UTF-8 or exceeded limits.
    BadVariable(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadHeader(m) => write!(f, "bad container header: {m}"),
            IoError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated container: expected {expected} bytes, got {actual}"
                )
            }
            IoError::BadVariable(m) => write!(f, "bad variable: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// A named variable stored in a container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Variable name (e.g. `"pressure"`, `"density"`).
    pub name: String,
    /// The field samples.
    pub field: ScalarField,
}

/// A multivariate volume container.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VolumeContainer {
    /// The variables, in insertion order.
    pub variables: Vec<Variable>,
    /// Simulation cycle / time step the data belongs to.
    pub cycle: u64,
    /// Physical simulation time of the snapshot.
    pub time: f64,
}

impl VolumeContainer {
    /// An empty container for the given cycle/time.
    pub fn new(cycle: u64, time: f64) -> Self {
        VolumeContainer {
            variables: Vec::new(),
            cycle,
            time,
        }
    }

    /// Add a named variable.
    pub fn push(&mut self, name: impl Into<String>, field: ScalarField) {
        self.variables.push(Variable {
            name: name.into(),
            field,
        });
    }

    /// Look up a variable by name.
    pub fn variable(&self, name: &str) -> Option<&ScalarField> {
        self.variables
            .iter()
            .find(|v| v.name == name)
            .map(|v| &v.field)
    }

    /// Names of all stored variables.
    pub fn variable_names(&self) -> Vec<&str> {
        self.variables.iter().map(|v| v.name.as_str()).collect()
    }

    /// Total payload size in bytes (used by the delay model as the dataset
    /// size `m_0`).
    pub fn nbytes(&self) -> usize {
        self.variables.iter().map(|v| v.field.nbytes()).sum()
    }

    /// Encode to the binary container format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.nbytes());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&(self.variables.len() as u32).to_le_bytes());
        for v in &self.variables {
            let name_bytes = v.name.as_bytes();
            out.extend_from_slice(&(name_bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(name_bytes);
            let d = v.field.dims;
            for n in [d.nx, d.ny, d.nz] {
                out.extend_from_slice(&(n as u64).to_le_bytes());
            }
            for s in v.field.spacing {
                out.extend_from_slice(&s.to_le_bytes());
            }
            for o in v.field.origin {
                out.extend_from_slice(&o.to_le_bytes());
            }
            for value in &v.field.data {
                out.extend_from_slice(&value.to_le_bytes());
            }
        }
        out
    }

    /// Decode from the binary container format.
    pub fn decode(buf: &[u8]) -> Result<Self, IoError> {
        let mut cursor = Cursor { buf, pos: 0 };
        let magic = cursor.take(8)?;
        if magic != MAGIC {
            return Err(IoError::BadHeader("wrong magic bytes".into()));
        }
        let version = cursor.u32()?;
        if version != VERSION {
            return Err(IoError::BadHeader(format!("unsupported version {version}")));
        }
        let cycle = cursor.u64()?;
        let time = cursor.f64()?;
        let n_vars = cursor.u32()? as usize;
        let mut container = VolumeContainer::new(cycle, time);
        for _ in 0..n_vars {
            let name_len = cursor.u32()? as usize;
            if name_len > 4096 {
                return Err(IoError::BadVariable(format!(
                    "name length {name_len} too large"
                )));
            }
            let name_bytes = cursor.take(name_len)?;
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|e| IoError::BadVariable(e.to_string()))?;
            let nx = cursor.u64()? as usize;
            let ny = cursor.u64()? as usize;
            let nz = cursor.u64()? as usize;
            let mut spacing = [0.0f32; 3];
            for s in &mut spacing {
                *s = cursor.f32()?;
            }
            let mut origin = [0.0f32; 3];
            for o in &mut origin {
                *o = cursor.f32()?;
            }
            let dims = Dims::new(nx, ny, nz);
            let count = dims.count();
            let mut data = Vec::with_capacity(count);
            for _ in 0..count {
                data.push(cursor.f32()?);
            }
            container.push(
                name,
                ScalarField {
                    dims,
                    spacing,
                    origin,
                    data,
                },
            );
        }
        Ok(container)
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        if self.pos + n > self.buf.len() {
            return Err(IoError::Truncated {
                expected: self.pos + n,
                actual: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, IoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, IoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f32(&mut self) -> Result<f32, IoError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn f64(&mut self) -> Result<f64, IoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_le_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Dims;

    fn sample_container() -> VolumeContainer {
        let mut c = VolumeContainer::new(42, 1.25);
        c.push(
            "pressure",
            ScalarField::from_fn(Dims::new(4, 3, 2), |x, y, z| (x + y + z) as f32),
        );
        c.push(
            "density",
            ScalarField::from_fn(Dims::new(2, 2, 2), |x, _, _| x as f32 * 0.5),
        );
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let c = sample_container();
        let bytes = c.encode();
        let back = VolumeContainer::decode(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.cycle, 42);
        assert_eq!(back.time, 1.25);
        assert_eq!(back.variable_names(), vec!["pressure", "density"]);
        assert!(back.variable("pressure").is_some());
        assert!(back.variable("missing").is_none());
    }

    #[test]
    fn nbytes_counts_payload() {
        let c = sample_container();
        assert_eq!(c.nbytes(), (24 + 8) * 4);
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let c = sample_container();
        let mut bytes = c.encode();
        bytes[0] = b'X';
        assert!(matches!(
            VolumeContainer::decode(&bytes),
            Err(IoError::BadHeader(_))
        ));
        let mut bytes2 = c.encode();
        bytes2[8] = 99;
        assert!(matches!(
            VolumeContainer::decode(&bytes2),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let c = sample_container();
        let bytes = c.encode();
        let cut = &bytes[..bytes.len() - 10];
        match VolumeContainer::decode(cut) {
            Err(IoError::Truncated { expected, actual }) => {
                assert!(expected > actual);
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
        assert!(VolumeContainer::decode(&[]).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::Truncated {
            expected: 100,
            actual: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(IoError::BadHeader("x".into()).to_string().contains("x"));
        assert!(IoError::BadVariable("v".into()).to_string().contains("v"));
    }

    #[test]
    fn empty_container_round_trips() {
        let c = VolumeContainer::new(0, 0.0);
        let back = VolumeContainer::decode(&c.encode()).unwrap();
        assert!(back.variables.is_empty());
        assert_eq!(back.nbytes(), 0);
    }
}
