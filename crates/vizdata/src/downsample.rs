//! Down-sampling of scalar fields.
//!
//! The paper down-samples the Visible Woman dataset "from its original size
//! by 8 times" to make it fit the available resources.  The same operation is
//! provided here, both for reproducing that preprocessing step and for
//! building multi-resolution test data for the cost-model calibration.

use crate::field::{Dims, ScalarField};

/// Down-sample a field by an integer factor along every axis, averaging the
/// `factor³` samples that map to each output voxel (block mean filter).
///
/// The output dimensions are `ceil(n / factor)` along each axis, so every
/// input sample contributes to exactly one output sample.
///
/// # Panics
/// Panics if `factor` is zero.
pub fn downsample(field: &ScalarField, factor: usize) -> ScalarField {
    assert!(factor > 0, "downsampling factor must be positive");
    if factor == 1 {
        return field.clone();
    }
    let d = field.dims;
    let out_dims = Dims::new(
        d.nx.div_ceil(factor).max(usize::from(d.nx > 0)),
        d.ny.div_ceil(factor).max(usize::from(d.ny > 0)),
        d.nz.div_ceil(factor).max(usize::from(d.nz > 0)),
    );
    let mut out = ScalarField::zeros(out_dims);
    out.spacing = [
        field.spacing[0] * factor as f32,
        field.spacing[1] * factor as f32,
        field.spacing[2] * factor as f32,
    ];
    out.origin = field.origin;
    for oz in 0..out_dims.nz {
        for oy in 0..out_dims.ny {
            for ox in 0..out_dims.nx {
                let mut sum = 0.0f64;
                let mut count = 0usize;
                for z in (oz * factor)..((oz + 1) * factor).min(d.nz) {
                    for y in (oy * factor)..((oy + 1) * factor).min(d.ny) {
                        for x in (ox * factor)..((ox + 1) * factor).min(d.nx) {
                            sum += field.get(x, y, z) as f64;
                            count += 1;
                        }
                    }
                }
                if count > 0 {
                    out.set(ox, oy, oz, (sum / count as f64) as f32);
                }
            }
        }
    }
    out
}

/// The factor needed to shrink a field of `dims` below `max_bytes`, growing
/// in integer steps (1, 2, 3, ...).  Returns 1 if the field already fits.
pub fn factor_to_fit(dims: Dims, max_bytes: usize) -> usize {
    if max_bytes == 0 {
        return 1;
    }
    let mut factor = 1usize;
    loop {
        let nx = dims.nx.div_ceil(factor);
        let ny = dims.ny.div_ceil(factor);
        let nz = dims.nz.div_ceil(factor);
        if nx * ny * nz * 4 <= max_bytes || factor > dims.nx.max(dims.ny).max(dims.nz).max(1) {
            return factor;
        }
        factor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_one_is_identity() {
        let f = ScalarField::from_fn(Dims::cube(5), |x, y, z| (x * y * z) as f32);
        assert_eq!(downsample(&f, 1), f);
    }

    #[test]
    fn factor_two_halves_dimensions_and_preserves_mean() {
        let f = ScalarField::from_fn(Dims::cube(8), |x, _, _| x as f32);
        let d = downsample(&f, 2);
        assert_eq!(d.dims, Dims::cube(4));
        // Block means of a linear ramp: first output = mean(0,1) = 0.5.
        assert!((d.get(0, 0, 0) - 0.5).abs() < 1e-6);
        assert!((d.get(3, 0, 0) - 6.5).abs() < 1e-6);
        // Global mean is preserved by block averaging on equal-size blocks.
        let mean_in: f32 = f.data.iter().sum::<f32>() / f.data.len() as f32;
        let mean_out: f32 = d.data.iter().sum::<f32>() / d.data.len() as f32;
        assert!((mean_in - mean_out).abs() < 1e-5);
        // Spacing doubles.
        assert_eq!(d.spacing, [2.0, 2.0, 2.0]);
    }

    #[test]
    fn non_divisible_dimensions_round_up() {
        let f = ScalarField::from_fn(Dims::new(5, 5, 5), |x, y, z| (x + y + z) as f32);
        let d = downsample(&f, 2);
        assert_eq!(d.dims, Dims::new(3, 3, 3));
        assert!(d.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn eight_times_reduction_matches_paper_preprocessing() {
        // "Downsampled from its original size by 8 times": factor 2 per axis
        // reduces the byte size by 8x.
        let f = ScalarField::from_fn(Dims::cube(16), |x, y, z| (x ^ y ^ z) as f32);
        let d = downsample(&f, 2);
        assert_eq!(d.nbytes() * 8, f.nbytes());
    }

    #[test]
    fn factor_to_fit_grows_until_it_fits() {
        let dims = Dims::cube(100); // 4 MB
        assert_eq!(factor_to_fit(dims, 8_000_000), 1);
        let factor = factor_to_fit(dims, 500_000);
        let n = 100usize.div_ceil(factor);
        assert!(n * n * n * 4 <= 500_000);
        assert!(factor >= 2);
        assert_eq!(factor_to_fit(dims, 0), 1);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_factor_panics() {
        let f = ScalarField::zeros(Dims::cube(2));
        let _ = downsample(&f, 0);
    }
}
