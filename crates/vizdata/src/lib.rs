//! Volume datasets for the RICSA visualization pipeline.
//!
//! The paper's experiments visualize three pre-generated volumes — *Jet*
//! (16 MB), *Rage* (64 MB) and the down-sampled *Visible Woman* (108 MB) —
//! and live output from a hydrodynamics simulation.  None of those datasets
//! can be redistributed, so this crate provides:
//!
//! * regular-grid scalar and vector fields ([`field`]),
//! * octree block decomposition with per-block min/max metadata used by the
//!   isosurface cost model ([`octree`]),
//! * synthetic generators producing fields with matching nominal sizes and
//!   qualitatively similar structure ([`synth`]),
//! * the named dataset registry used by the Fig. 9 / Fig. 10 experiments
//!   ([`dataset`]),
//! * simple (de)serialization of fields to a tagged binary container
//!   ([`io`]), standing in for the CDF/HDF/NetCDF formats the paper cites,
//! * down-sampling utilities ([`downsample`]), mirroring the paper's 8×
//!   down-sampling of the Visible Woman volume.

#![deny(missing_docs)]

pub mod dataset;
pub mod downsample;
pub mod field;
pub mod io;
pub mod octree;
pub mod synth;

pub use dataset::{Dataset, DatasetCatalog, DatasetKind};
pub use field::{Dims, ScalarField, VectorField};
pub use octree::{BlockId, Octree, OctreeBlock};
pub use synth::{SyntheticVolume, VolumeKind};
