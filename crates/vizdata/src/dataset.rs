//! The named dataset registry used by the Fig. 9 / Fig. 10 experiments.
//!
//! The paper visualizes three pre-generated datasets replicated at the two
//! data-source hosts:
//!
//! | Name          | Size    | Stand-in generator                   |
//! |---------------|---------|--------------------------------------|
//! | Jet           | 16 MB   | [`VolumeKind::Jet`]                  |
//! | Rage          | 64 MB   | [`VolumeKind::BlastWave`]            |
//! | Visible Woman | 108 MB  | [`VolumeKind::NestedShells`]         |
//!
//! The experiments in the paper are driven by the dataset *sizes* (which set
//! the transfer and processing times in Eq. 2), so each catalog entry records
//! the nominal full-resolution byte size, plus a generator that can produce
//! the field at full or reduced resolution for the algorithmic modules.

use crate::field::Dims;
use crate::synth::{SyntheticVolume, VolumeKind};
use serde::{Deserialize, Serialize};

/// The three datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Jet data, 16 MB.
    Jet,
    /// Rage data, 64 MB.
    Rage,
    /// Visible Woman data (down-sampled), 108 MB.
    VisibleWoman,
}

impl DatasetKind {
    /// All datasets in the order the paper reports them.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Jet,
        DatasetKind::Rage,
        DatasetKind::VisibleWoman,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Jet => "Jet",
            DatasetKind::Rage => "Rage",
            DatasetKind::VisibleWoman => "VisWoman",
        }
    }
}

/// One dataset entry: nominal size plus a generator for actual samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Which of the paper's datasets this stands in for.
    pub kind: DatasetKind,
    /// Full-resolution grid dimensions.
    pub full_dims: Dims,
    /// Stand-in synthetic generator.
    pub generator: VolumeKind,
    /// Seed for the generator.
    pub seed: u64,
}

impl Dataset {
    /// Nominal full-resolution size in bytes (4 bytes per voxel), which is
    /// what the delay model and the transport experiments use.
    pub fn nominal_bytes(&self) -> usize {
        self.full_dims.bytes()
    }

    /// Nominal size in megabytes (10^6 bytes), as quoted in the paper.
    pub fn nominal_megabytes(&self) -> f64 {
        self.nominal_bytes() as f64 / 1.0e6
    }

    /// Generate the field at full resolution.
    pub fn generate_full(&self) -> crate::field::ScalarField {
        SyntheticVolume::new(self.generator, self.full_dims, self.seed).generate()
    }

    /// Generate the field at a reduced resolution with roughly `max_voxels`
    /// samples — used by tests and cost-model calibration where the full
    /// 10⁷-voxel volumes would be wastefully slow.
    pub fn generate_preview(&self, max_voxels: usize) -> crate::field::ScalarField {
        let full = self.full_dims.count().max(1);
        let ratio = (full as f64 / max_voxels.max(1) as f64).cbrt().max(1.0);
        let dims = Dims::new(
            ((self.full_dims.nx as f64 / ratio).round() as usize).max(8),
            ((self.full_dims.ny as f64 / ratio).round() as usize).max(8),
            ((self.full_dims.nz as f64 / ratio).round() as usize).max(8),
        );
        SyntheticVolume::new(self.generator, dims, self.seed).generate()
    }
}

/// The catalog of the paper's three datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetCatalog {
    entries: Vec<Dataset>,
}

impl Default for DatasetCatalog {
    fn default() -> Self {
        DatasetCatalog {
            entries: vec![
                Dataset {
                    kind: DatasetKind::Jet,
                    // 200×200×100 × 4 B = 16.0 MB
                    full_dims: Dims::new(200, 200, 100),
                    generator: VolumeKind::Jet,
                    seed: 101,
                },
                Dataset {
                    kind: DatasetKind::Rage,
                    // 252×252×252 × 4 B = 64.0 MB
                    full_dims: Dims::new(252, 252, 252),
                    generator: VolumeKind::BlastWave,
                    seed: 202,
                },
                Dataset {
                    kind: DatasetKind::VisibleWoman,
                    // 300×300×300 × 4 B = 108.0 MB
                    full_dims: Dims::new(300, 300, 300),
                    generator: VolumeKind::NestedShells,
                    seed: 303,
                },
            ],
        }
    }
}

impl DatasetCatalog {
    /// The default catalog with the paper's three datasets.
    pub fn paper_datasets() -> Self {
        DatasetCatalog::default()
    }

    /// Look up a dataset by kind.
    pub fn get(&self, kind: DatasetKind) -> &Dataset {
        self.entries
            .iter()
            .find(|d| d.kind == kind)
            .expect("catalog always contains the three paper datasets")
    }

    /// All entries in paper order.
    pub fn all(&self) -> &[Dataset] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_three_datasets_with_paper_sizes() {
        let catalog = DatasetCatalog::paper_datasets();
        assert_eq!(catalog.all().len(), 3);
        let jet = catalog.get(DatasetKind::Jet);
        let rage = catalog.get(DatasetKind::Rage);
        let vw = catalog.get(DatasetKind::VisibleWoman);
        assert!(
            (jet.nominal_megabytes() - 16.0).abs() < 0.5,
            "{}",
            jet.nominal_megabytes()
        );
        assert!(
            (rage.nominal_megabytes() - 64.0).abs() < 0.5,
            "{}",
            rage.nominal_megabytes()
        );
        assert!(
            (vw.nominal_megabytes() - 108.0).abs() < 0.5,
            "{}",
            vw.nominal_megabytes()
        );
        assert!(jet.nominal_bytes() < rage.nominal_bytes());
        assert!(rage.nominal_bytes() < vw.nominal_bytes());
    }

    #[test]
    fn names_match_paper_figures() {
        assert_eq!(DatasetKind::Jet.name(), "Jet");
        assert_eq!(DatasetKind::Rage.name(), "Rage");
        assert_eq!(DatasetKind::VisibleWoman.name(), "VisWoman");
        assert_eq!(DatasetKind::ALL.len(), 3);
    }

    #[test]
    fn preview_generation_respects_voxel_budget() {
        let catalog = DatasetCatalog::paper_datasets();
        let vw = catalog.get(DatasetKind::VisibleWoman);
        let preview = vw.generate_preview(40_000);
        assert!(preview.dims.count() <= 80_000, "{}", preview.dims.count());
        assert!(preview.dims.count() >= 8 * 8 * 8);
        let (lo, hi) = preview.value_range();
        assert!(hi > lo);
    }

    #[test]
    fn preview_of_small_dataset_is_near_full_resolution() {
        let d = Dataset {
            kind: DatasetKind::Jet,
            full_dims: Dims::cube(16),
            generator: VolumeKind::Jet,
            seed: 1,
        };
        let preview = d.generate_preview(1_000_000);
        assert_eq!(preview.dims, Dims::cube(16));
    }
}
