//! Octree block decomposition of a scalar field.
//!
//! The paper's isosurface cost model (Section 4.4.1) assumes extraction is
//! performed at the *block* level: "to speed up the search process, one
//! typically traverses an octree to identify data blocks containing
//! isosurfaces".  The model parameters are the number of blocks containing
//! isosurfaces (`n_blocks`), the number of cells per block (`S_block`), and
//! the per-block extraction time.  The GUI also lets a user select "one of
//! the eight octree subsets or entire dataset".
//!
//! [`Octree`] partitions a field into cubic blocks of a configurable edge
//! length, records each block's value range (min/max) so that blocks not
//! intersecting the isovalue can be culled, and exposes the eight top-level
//! octants for the subset-selection feature.

use crate::field::{Dims, ScalarField};
use serde::{Deserialize, Serialize};

/// Identifier of a block within an [`Octree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub usize);

/// One cubic block of the decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OctreeBlock {
    /// Identifier of this block.
    pub id: BlockId,
    /// Inclusive voxel-space lower corner.
    pub min: [usize; 3],
    /// Exclusive voxel-space upper corner.
    pub max: [usize; 3],
    /// Minimum sample value inside the block.
    pub value_min: f32,
    /// Maximum sample value inside the block.
    pub value_max: f32,
}

impl OctreeBlock {
    /// Number of samples in the block.
    pub fn sample_count(&self) -> usize {
        (self.max[0] - self.min[0]) * (self.max[1] - self.min[1]) * (self.max[2] - self.min[2])
    }

    /// Number of cells (cubes spanning 8 samples) the block contributes to
    /// marching cubes.  Blocks share a one-sample overlap with their +x/+y/+z
    /// neighbours conceptually; cell counts are computed within the block.
    pub fn cell_count(&self) -> usize {
        let span = |lo: usize, hi: usize| (hi - lo).saturating_sub(1);
        span(self.min[0], self.max[0])
            * span(self.min[1], self.max[1])
            * span(self.min[2], self.max[2])
    }

    /// Whether an isosurface at `isovalue` can pass through this block.
    pub fn intersects_isovalue(&self, isovalue: f32) -> bool {
        self.value_min <= isovalue && isovalue <= self.value_max
    }

    /// Which of the eight top-level octants of `dims` this block's lower
    /// corner falls in (0..8, x-lowest bit).
    pub fn octant(&self, dims: Dims) -> usize {
        let half = |v: usize, n: usize| usize::from(v >= n / 2);
        half(self.min[0], dims.nx)
            | (half(self.min[1], dims.ny) << 1)
            | (half(self.min[2], dims.nz) << 2)
    }
}

/// A flat octree-style block decomposition of a scalar field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Octree {
    /// Dimensions of the decomposed field.
    pub dims: Dims,
    /// Edge length of a block, in samples.
    pub block_size: usize,
    /// All blocks in scan order.
    pub blocks: Vec<OctreeBlock>,
}

impl Octree {
    /// Decompose `field` into cubic blocks with `block_size` samples per
    /// edge (boundary blocks may be smaller).
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn build(field: &ScalarField, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let dims = field.dims;
        let mut blocks = Vec::new();
        let mut id = 0usize;
        let ranges = |n: usize| -> Vec<(usize, usize)> {
            if n == 0 {
                return vec![];
            }
            (0..n)
                .step_by(block_size)
                .map(|lo| (lo, (lo + block_size).min(n)))
                .collect()
        };
        for (z0, z1) in ranges(dims.nz) {
            for (y0, y1) in ranges(dims.ny) {
                for (x0, x1) in ranges(dims.nx) {
                    let mut lo = f32::INFINITY;
                    let mut hi = f32::NEG_INFINITY;
                    // The value range includes the one-sample overlap shared
                    // with the +x/+y/+z neighbours, because the cells whose
                    // lower corner lies in this block read those samples;
                    // without it, isovalue culling could drop boundary cells.
                    for z in z0..(z1 + 1).min(dims.nz) {
                        for y in y0..(y1 + 1).min(dims.ny) {
                            for x in x0..(x1 + 1).min(dims.nx) {
                                let v = field.get(x, y, z);
                                lo = lo.min(v);
                                hi = hi.max(v);
                            }
                        }
                    }
                    blocks.push(OctreeBlock {
                        id: BlockId(id),
                        min: [x0, y0, z0],
                        max: [x1, y1, z1],
                        value_min: lo,
                        value_max: hi,
                    });
                    id += 1;
                }
            }
        }
        Octree {
            dims,
            block_size,
            blocks,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the decomposition contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The blocks whose value range straddles `isovalue` (the `n_blocks` of
    /// the paper's Eq. 4).
    pub fn active_blocks(&self, isovalue: f32) -> Vec<&OctreeBlock> {
        self.blocks
            .iter()
            .filter(|b| b.intersects_isovalue(isovalue))
            .collect()
    }

    /// Number of blocks whose value range straddles `isovalue`.
    pub fn active_block_count(&self, isovalue: f32) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.intersects_isovalue(isovalue))
            .count()
    }

    /// The blocks making up one of the eight top-level octants (0..8).
    pub fn octant_blocks(&self, octant: usize) -> Vec<&OctreeBlock> {
        self.blocks
            .iter()
            .filter(|b| b.octant(self.dims) == octant % 8)
            .collect()
    }

    /// Nominal cells per (full-size) block — the paper's `S_block`.
    pub fn cells_per_block(&self) -> usize {
        let edge = self.block_size.saturating_sub(1).max(1);
        edge * edge * edge
    }

    /// Total samples across all blocks (equals the field sample count).
    pub fn total_samples(&self) -> usize {
        self.blocks.iter().map(|b| b.sample_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_field(n: usize) -> ScalarField {
        ScalarField::from_fn(Dims::cube(n), |x, _, _| x as f32)
    }

    #[test]
    fn decomposition_covers_every_sample_exactly_once() {
        let f = ramp_field(10);
        let tree = Octree::build(&f, 4);
        // 10 = 4 + 4 + 2 -> 3 blocks per axis -> 27 blocks.
        assert_eq!(tree.len(), 27);
        assert_eq!(tree.total_samples(), 1000);
        assert!(!tree.is_empty());
    }

    #[test]
    fn block_value_ranges_include_the_shared_boundary_sample() {
        let f = ramp_field(8);
        let tree = Octree::build(&f, 4);
        for b in &tree.blocks {
            assert_eq!(b.value_min, b.min[0] as f32);
            // The range extends one sample into the +x neighbour (clamped at
            // the domain boundary) so isovalue culling never drops cells.
            let expected_max = b.max[0].min(7) as f32;
            assert_eq!(b.value_max, expected_max);
        }
    }

    #[test]
    fn active_block_culling_matches_value_ranges() {
        let f = ramp_field(8); // values 0..7 along x
        let tree = Octree::build(&f, 4);
        // isovalue 2.0 lies only in blocks covering x in [0,4).
        let active = tree.active_blocks(2.0);
        assert!(active.iter().all(|b| b.min[0] == 0));
        assert_eq!(active.len(), 4);
        assert_eq!(tree.active_block_count(2.0), 4);
        // isovalue outside the data range: no active blocks.
        assert_eq!(tree.active_block_count(100.0), 0);
        // isovalue 6.0 only in blocks covering x in [4,8).
        assert!(tree.active_blocks(6.0).iter().all(|b| b.min[0] == 4));
    }

    #[test]
    fn octants_partition_the_blocks() {
        let f = ramp_field(8);
        let tree = Octree::build(&f, 4);
        let total: usize = (0..8).map(|o| tree.octant_blocks(o).len()).sum();
        assert_eq!(total, tree.len());
        for o in 0..8 {
            assert_eq!(tree.octant_blocks(o).len(), 1);
        }
        // Octant index 9 wraps around modulo 8.
        assert_eq!(tree.octant_blocks(9).len(), tree.octant_blocks(1).len());
    }

    #[test]
    fn boundary_blocks_are_smaller() {
        let f = ramp_field(10);
        let tree = Octree::build(&f, 4);
        let sizes: Vec<usize> = tree.blocks.iter().map(|b| b.sample_count()).collect();
        assert!(sizes.contains(&64)); // full 4x4x4 block
        assert!(sizes.contains(&32)); // 2x4x4 boundary block
        assert!(sizes.contains(&8)); // 2x2x2 corner block
        let b = &tree.blocks[0];
        assert_eq!(b.cell_count(), 27);
    }

    #[test]
    fn cells_per_block_matches_paper_definition() {
        let f = ramp_field(8);
        let tree = Octree::build(&f, 4);
        assert_eq!(tree.cells_per_block(), 27);
        let tree1 = Octree::build(&f, 1);
        assert_eq!(tree1.cells_per_block(), 1);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let f = ramp_field(4);
        let _ = Octree::build(&f, 0);
    }

    #[test]
    fn empty_field_produces_empty_tree() {
        let f = ScalarField::zeros(Dims::new(0, 0, 0));
        let tree = Octree::build(&f, 4);
        assert!(tree.is_empty());
        assert_eq!(tree.total_samples(), 0);
    }
}
