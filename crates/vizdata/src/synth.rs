//! Synthetic volume generators.
//!
//! Substitutes for the paper's experimental datasets (Jet, Rage, Visible
//! Woman) and for generic test volumes used to calibrate the visualization
//! cost models.  Each generator produces a scalar field with structure that
//! exercises the same code paths the real datasets would: the jet has a
//! turbulent column with fine isosurface detail, the blast wave has a sharp
//! spherical shock front, and the anatomy-like volume has nested smooth
//! shells of distinct value bands.

use crate::field::{Dims, ScalarField, VectorField};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Which synthetic volume to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VolumeKind {
    /// Turbulent jet analog (stands in for the paper's 16 MB "Jet" data).
    Jet,
    /// Radial blast-wave analog (stands in for the 64 MB "Rage" data).
    BlastWave,
    /// Nested-shell anatomy analog (stands in for the 108 MB "Visible
    /// Woman" data).
    NestedShells,
    /// Smooth radial ramp — useful for calibration because the isosurface
    /// area varies smoothly with the isovalue.
    RadialRamp,
    /// Pseudo-random value noise — worst case for block culling.
    Noise,
}

/// A synthetic volume description: kind, resolution and seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticVolume {
    /// Which generator to use.
    pub kind: VolumeKind,
    /// Grid resolution.
    pub dims: Dims,
    /// Seed controlling the pseudo-random components.
    pub seed: u64,
}

impl SyntheticVolume {
    /// Describe a synthetic volume.
    pub fn new(kind: VolumeKind, dims: Dims, seed: u64) -> Self {
        SyntheticVolume { kind, dims, seed }
    }

    /// Generate the scalar field (parallelized over z-slabs).
    pub fn generate(&self) -> ScalarField {
        let dims = self.dims;
        let kind = self.kind;
        let seed = self.seed;
        let slab: Vec<Vec<f32>> = (0..dims.nz.max(1))
            .into_par_iter()
            .map(|z| {
                let mut slice = Vec::with_capacity(dims.nx * dims.ny);
                for y in 0..dims.ny {
                    for x in 0..dims.nx {
                        slice.push(sample(kind, dims, seed, x, y, z));
                    }
                }
                slice
            })
            .collect();
        let mut data = Vec::with_capacity(dims.count());
        for s in slab {
            data.extend_from_slice(&s);
        }
        data.truncate(dims.count());
        ScalarField {
            dims,
            spacing: [1.0; 3],
            origin: [0.0; 3],
            data,
        }
    }

    /// Generate a companion vector field (used by the streamline module):
    /// a swirling flow around the volume axis plus an axial component scaled
    /// by the scalar generator.
    pub fn generate_vector(&self) -> VectorField {
        let dims = self.dims;
        let kind = self.kind;
        let seed = self.seed;
        VectorField::from_fn(dims, |x, y, z| {
            let cx = dims.nx as f32 / 2.0;
            let cy = dims.ny as f32 / 2.0;
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            let r = (dx * dx + dy * dy).sqrt().max(1.0);
            let s = sample(kind, dims, seed, x, y, z);
            [-dy / r, dx / r, 0.2 + 0.8 * s]
        })
    }
}

/// Evaluate the generator at one voxel.  Deterministic in `(kind, dims,
/// seed, x, y, z)`.
fn sample(kind: VolumeKind, dims: Dims, seed: u64, x: usize, y: usize, z: usize) -> f32 {
    let nx = dims.nx.max(2) as f32;
    let ny = dims.ny.max(2) as f32;
    let nz = dims.nz.max(2) as f32;
    // Normalized coordinates in [0, 1].
    let u = x as f32 / (nx - 1.0);
    let v = y as f32 / (ny - 1.0);
    let w = z as f32 / (nz - 1.0);
    match kind {
        VolumeKind::RadialRamp => {
            let dx = u - 0.5;
            let dy = v - 0.5;
            let dz = w - 0.5;
            1.0 - 2.0 * (dx * dx + dy * dy + dz * dz).sqrt()
        }
        VolumeKind::Noise => value_noise(seed, x as i64, y as i64, z as i64),
        VolumeKind::Jet => {
            // Column along z with a Gaussian radial profile, perturbed by
            // multi-octave value noise so isosurfaces are wrinkled.
            let dx = u - 0.5;
            let dy = v - 0.5;
            let r2 = dx * dx + dy * dy;
            let core = (-r2 * 40.0).exp();
            let wake = (-((u - 0.5).powi(2)) * 8.0).exp() * (1.0 - w) * 0.3;
            let turb = 0.35 * fractal_noise(seed, x, y, z, 3);
            (core * (0.6 + 0.4 * (w * 12.0).sin().abs()) + wake + turb * core.max(0.15))
                .clamp(0.0, 1.5)
        }
        VolumeKind::BlastWave => {
            // Expanding spherical shock: high plateau inside a radius, sharp
            // falloff at the front, rippled by noise.
            let dx = u - 0.5;
            let dy = v - 0.5;
            let dz = w - 0.5;
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            let front = 0.33;
            let width = 0.03;
            let shell = (-(r - front).powi(2) / (2.0 * width * width)).exp();
            let interior = if r < front { 0.55 } else { 0.05 };
            let ripple = 0.08 * fractal_noise(seed, x, y, z, 2);
            (interior + shell + ripple).clamp(0.0, 2.0)
        }
        VolumeKind::NestedShells => {
            // Concentric ellipsoidal shells with distinct value bands,
            // standing in for skin/soft-tissue/bone bands of a CT volume.
            let dx = (u - 0.5) * 1.0;
            let dy = (v - 0.5) * 1.3;
            let dz = (w - 0.5) * 0.8;
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            let band = |center: f32, width: f32, level: f32| {
                if (r - center).abs() < width {
                    level
                } else {
                    0.0
                }
            };
            let body = if r < 0.45 { 0.2 } else { 0.0 };
            body + band(0.45, 0.02, 0.4)
                + band(0.3, 0.03, 0.6)
                + band(0.15, 0.05, 1.0)
                + 0.02 * fractal_noise(seed, x, y, z, 2)
        }
    }
}

/// Hash-based value noise in `[0, 1)`.
fn value_noise(seed: u64, x: i64, y: i64, z: i64) -> f32 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F)
        ^ (z as u64).wrapping_mul(0x165667B19E3779F9);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    (h >> 11) as f32 / (1u64 << 53) as f32
}

/// Multi-octave smoothed value noise in roughly `[-1, 1]`.
fn fractal_noise(seed: u64, x: usize, y: usize, z: usize, octaves: u32) -> f32 {
    let mut total = 0.0f32;
    let mut amplitude = 1.0f32;
    let mut norm = 0.0f32;
    for o in 0..octaves {
        let step = 1usize << (o + 2); // coarser octaves sample a sparser lattice
        let xi = (x / step) as i64;
        let yi = (y / step) as i64;
        let zi = (z / step) as i64;
        let n = value_noise(seed.wrapping_add(o as u64 * 7919), xi, yi, zi) * 2.0 - 1.0;
        total += n * amplitude;
        norm += amplitude;
        amplitude *= 0.5;
    }
    if norm > 0.0 {
        total / norm
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(16), 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        let c = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(16), 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn all_kinds_produce_finite_values_with_spread() {
        for kind in [
            VolumeKind::Jet,
            VolumeKind::BlastWave,
            VolumeKind::NestedShells,
            VolumeKind::RadialRamp,
            VolumeKind::Noise,
        ] {
            let f = SyntheticVolume::new(kind, Dims::cube(24), 3).generate();
            assert_eq!(f.data.len(), 24 * 24 * 24);
            assert!(f.data.iter().all(|v| v.is_finite()), "{kind:?}");
            let (lo, hi) = f.value_range();
            assert!(hi > lo, "{kind:?} has no value spread");
        }
    }

    #[test]
    fn radial_ramp_peaks_at_center() {
        let f = SyntheticVolume::new(VolumeKind::RadialRamp, Dims::cube(33), 1).generate();
        let center = f.get(16, 16, 16);
        let corner = f.get(0, 0, 0);
        assert!(center > 0.9);
        assert!(corner < 0.0);
    }

    #[test]
    fn blast_wave_has_a_shell_of_high_values() {
        let n = 48;
        let f = SyntheticVolume::new(VolumeKind::BlastWave, Dims::cube(n), 5).generate();
        // Along the x axis through the center the value should peak near the
        // front radius (0.33 of the half-width from the center).
        let c = n / 2;
        let front = c + (0.33 * n as f32) as usize;
        let at_front = f.get(front.min(n - 1), c, c);
        let far_outside = f.get(n - 1, c, c);
        assert!(at_front > 0.5, "front value {at_front}");
        assert!(far_outside < 0.3, "outside value {far_outside}");
    }

    #[test]
    fn jet_is_concentrated_near_the_axis() {
        let n = 32;
        let f = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(n), 11).generate();
        let axis_mean: f32 = (0..n).map(|z| f.get(n / 2, n / 2, z)).sum::<f32>() / n as f32;
        let edge_mean: f32 = (0..n).map(|z| f.get(0, 0, z)).sum::<f32>() / n as f32;
        assert!(
            axis_mean > 2.0 * edge_mean,
            "axis {axis_mean} edge {edge_mean}"
        );
    }

    #[test]
    fn vector_field_swirls_around_the_axis() {
        let spec = SyntheticVolume::new(VolumeKind::RadialRamp, Dims::cube(17), 2);
        let v = spec.generate_vector();
        // At a point to the +x side of the center the swirl points in +y.
        let sample = v.get(14, 8, 8);
        assert!(sample[1] > 0.5, "{sample:?}");
        // Near the axis (where the ramp is high) the axial component is
        // positive, so streamlines seeded there advect along +z.
        assert!(v.get(8, 8, 8)[2] > 0.5);
    }

    #[test]
    fn noise_is_roughly_uniform() {
        let f = SyntheticVolume::new(VolumeKind::Noise, Dims::cube(24), 9).generate();
        let mean: f32 = f.data.iter().sum::<f32>() / f.data.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
