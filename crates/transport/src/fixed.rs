//! A fixed-rate (open-loop) controller used as a baseline.
//!
//! Sending at a constant rate with no feedback is the simplest possible
//! control-channel strategy; it neither adapts to congestion nor recovers
//! the target goodput after loss, and serves as the lower baseline in the
//! transport-stabilization experiments.

use crate::flow::RateController;
use serde::{Deserialize, Serialize};

/// Parameters of the fixed-rate controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedParams {
    /// Sleep time between bursts, seconds.
    pub sleep: f64,
    /// Window, datagrams per burst.
    pub window: u32,
}

/// The fixed-rate controller.
#[derive(Debug, Clone)]
pub struct FixedController {
    params: FixedParams,
}

impl FixedController {
    /// A controller that sends `window` datagrams every `sleep` seconds.
    pub fn new(sleep: f64, window: u32) -> Self {
        FixedController {
            params: FixedParams {
                sleep: sleep.max(1e-6),
                window: window.max(1),
            },
        }
    }

    /// A controller whose nominal send rate equals `rate_bps` for a given
    /// datagram size.
    pub fn for_rate(rate_bps: f64, window: u32, mtu: usize) -> Self {
        let window = window.max(1);
        let burst_bytes = window as f64 * mtu as f64;
        let sleep = if rate_bps > 0.0 {
            burst_bytes / rate_bps
        } else {
            1.0
        };
        FixedController::new(sleep, window)
    }
}

impl RateController for FixedController {
    fn on_goodput(&mut self, _goodput_bps: f64, _now: f64) {}

    fn sleep_time(&self) -> f64 {
        self.params.sleep
    }

    fn window(&self) -> u32 {
        self.params.window
    }

    fn name(&self) -> &'static str {
        "fixed-rate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_adapts() {
        let mut c = FixedController::new(0.02, 8);
        let s = c.sleep_time();
        let w = c.window();
        c.on_goodput(1e9, 0.0);
        c.on_loss(1.0);
        assert_eq!(c.sleep_time(), s);
        assert_eq!(c.window(), w);
        assert_eq!(c.name(), "fixed-rate");
    }

    #[test]
    fn for_rate_matches_nominal_rate() {
        let mtu = 1000;
        let c = FixedController::for_rate(2e6, 10, mtu);
        let rate = (c.window() as usize * mtu) as f64 / c.sleep_time();
        assert!((rate - 2e6).abs() / 2e6 < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let c = FixedController::new(0.0, 0);
        assert!(c.sleep_time() > 0.0);
        assert_eq!(c.window(), 1);
        let z = FixedController::for_rate(0.0, 4, 1000);
        assert!(z.sleep_time() > 0.0);
    }
}
