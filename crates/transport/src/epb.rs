//! Effective path bandwidth (EPB) estimation — paper Section 4.3.
//!
//! The paper estimates, for every virtual link of the overlay, the throughput
//! a flow actually achieves ("effective path bandwidth") by sending test
//! messages of several sizes, measuring their end-to-end delays, and fitting
//! the linear model
//!
//! ```text
//! d(P, r) ≈ r / EPB(P) + d0(P)
//! ```
//!
//! by least squares (Eq. 3 reduces to this once the bandwidth-constrained
//! term dominates).  The reciprocal of the fitted slope is the EPB estimate
//! and the intercept estimates the minimum path delay; both feed the
//! dynamic-programming optimizer as `b_{i,j}` and `d_{i,j}`.

use crate::flow::FlowConfig;
use crate::harness::run_flow;
use crate::harness::{measure_message_latency, ControllerChoice, FlowExperiment};
use ricsa_netsim::node::NodeId;
use ricsa_netsim::time::SimTime;
use ricsa_netsim::topology::Topology;
use serde::{Deserialize, Serialize};

/// Result of an EPB regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpbEstimate {
    /// Estimated effective path bandwidth, bytes per second.
    pub epb_bps: f64,
    /// Estimated minimum path delay (regression intercept), seconds.
    pub min_delay: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
    /// Number of `(size, delay)` samples used.
    pub samples: usize,
}

impl EpbEstimate {
    /// Predicted transfer delay for a message of `bytes`.
    pub fn predict_delay(&self, bytes: f64) -> f64 {
        if self.epb_bps <= 0.0 {
            return f64::INFINITY;
        }
        bytes / self.epb_bps + self.min_delay.max(0.0)
    }
}

/// Accumulates `(message size, measured delay)` samples and fits the linear
/// delay model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpbEstimator {
    samples: Vec<(f64, f64)>,
}

impl EpbEstimator {
    /// An estimator with no samples.
    pub fn new() -> Self {
        EpbEstimator::default()
    }

    /// Add a measurement: a message of `bytes` took `delay_secs` to deliver.
    pub fn add_sample(&mut self, bytes: f64, delay_secs: f64) {
        if bytes > 0.0 && delay_secs > 0.0 && bytes.is_finite() && delay_secs.is_finite() {
            self.samples.push((bytes, delay_secs));
        }
    }

    /// Number of accepted samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been accepted.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Fit `delay = size/EPB + d0` by ordinary least squares.
    ///
    /// Returns `None` with fewer than two samples or when all samples share
    /// the same size (the slope is then unidentifiable).
    pub fn fit(&self) -> Option<EpbEstimate> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let n_f = n as f64;
        let sum_x: f64 = self.samples.iter().map(|(x, _)| x).sum();
        let sum_y: f64 = self.samples.iter().map(|(_, y)| y).sum();
        let mean_x = sum_x / n_f;
        let mean_y = sum_y / n_f;
        let sxx: f64 = self.samples.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
        if sxx < 1e-12 {
            return None;
        }
        let sxy: f64 = self
            .samples
            .iter()
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        if slope <= 0.0 {
            // A non-positive slope means delay does not grow with size in the
            // sampled range; EPB is effectively unbounded for these sizes.
            return Some(EpbEstimate {
                epb_bps: f64::INFINITY,
                min_delay: mean_y.max(0.0),
                r_squared: 0.0,
                samples: n,
            });
        }
        let ss_tot: f64 = self.samples.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = self
            .samples
            .iter()
            .map(|(x, y)| {
                let pred = slope * x + intercept;
                (y - pred).powi(2)
            })
            .sum();
        let r_squared = if ss_tot < 1e-18 {
            1.0
        } else {
            (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
        };
        Some(EpbEstimate {
            epb_bps: 1.0 / slope,
            min_delay: intercept.max(0.0),
            r_squared,
            samples: n,
        })
    }
}

/// Parameters for the active measurement procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveMeasurementConfig {
    /// Test message sizes, bytes.
    pub probe_sizes: Vec<usize>,
    /// Repetitions per size.
    pub repetitions: usize,
    /// Target rate used by the probing transport (bytes/s).  Probing is done
    /// with a generous target so the path, not the controller, limits
    /// throughput.
    pub probe_rate_bps: f64,
    /// Per-probe virtual-time limit.
    pub per_probe_timeout: SimTime,
}

impl Default for ActiveMeasurementConfig {
    fn default() -> Self {
        ActiveMeasurementConfig {
            probe_sizes: vec![64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024],
            repetitions: 2,
            probe_rate_bps: 1e9,
            per_probe_timeout: SimTime::from_secs(120.0),
        }
    }
}

/// Actively measure the effective path bandwidth between two nodes of a
/// topology by timing test transfers of several sizes (paper Section 4.3).
pub fn measure_path(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    config: &ActiveMeasurementConfig,
    seed: u64,
) -> Option<EpbEstimate> {
    let mut estimator = EpbEstimator::new();
    let mut probe_seed = seed;
    for &size in &config.probe_sizes {
        for _ in 0..config.repetitions.max(1) {
            probe_seed = probe_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            if let Some(latency) = measure_message_latency(
                topology.clone(),
                src,
                dst,
                size,
                config.probe_rate_bps,
                config.per_probe_timeout,
                probe_seed,
            ) {
                estimator.add_sample(size as f64, latency);
            }
        }
    }
    estimator.fit()
}

/// Measure the *sustainable goodput* of a path with a long-running probing
/// flow, as a cross-check of the regression-based estimate.
///
/// The probe is congestion-controlled (AIMD): an open-loop blast far above
/// the path capacity would just melt the bottleneck queue, and a reliable
/// transport's goodput collapses under that kind of self-inflicted loss —
/// the measured number would say nothing about the path.
pub fn measure_sustained_goodput(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    duration: SimTime,
    seed: u64,
) -> f64 {
    let outcome = run_flow(FlowExperiment {
        topology: topology.clone(),
        src,
        dst,
        config: FlowConfig::default(),
        controller: ControllerChoice::Aimd,
        duration,
        seed,
    });
    outcome.steady_state_goodput()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_netsim::link::LinkSpec;
    use ricsa_netsim::node::NodeSpec;

    #[test]
    fn regression_recovers_synthetic_bandwidth() {
        // delay = size / 2 MB/s + 30 ms, exactly linear.
        let mut est = EpbEstimator::new();
        for size in [1e5, 2e5, 5e5, 1e6, 2e6] {
            est.add_sample(size, size / 2e6 + 0.03);
        }
        let fit = est.fit().unwrap();
        assert!((fit.epb_bps - 2e6).abs() / 2e6 < 1e-9);
        assert!((fit.min_delay - 0.03).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
        assert!((fit.predict_delay(4e6) - (2.0 + 0.03)).abs() < 1e-9);
    }

    #[test]
    fn regression_handles_noise() {
        let mut est = EpbEstimator::new();
        let mut sign = 1.0;
        for i in 1..=20 {
            let size = 1e5 * i as f64;
            sign = -sign;
            let noise = sign * 0.002 * (i % 3) as f64;
            est.add_sample(size, size / 5e6 + 0.02 + noise);
        }
        let fit = est.fit().unwrap();
        assert!((fit.epb_bps - 5e6).abs() / 5e6 < 0.05);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let mut est = EpbEstimator::new();
        assert!(est.fit().is_none());
        est.add_sample(1e5, 0.1);
        assert!(est.fit().is_none());
        // Same size twice: slope unidentifiable.
        let mut same = EpbEstimator::new();
        same.add_sample(1e5, 0.1);
        same.add_sample(1e5, 0.2);
        assert!(same.fit().is_none());
        // Invalid samples are ignored.
        let mut bad = EpbEstimator::new();
        bad.add_sample(-1.0, 0.1);
        bad.add_sample(1.0, f64::NAN);
        assert!(bad.is_empty());
    }

    #[test]
    fn flat_delay_yields_unbounded_epb() {
        let mut est = EpbEstimator::new();
        est.add_sample(1e5, 0.05);
        est.add_sample(1e6, 0.05);
        est.add_sample(2e6, 0.049);
        let fit = est.fit().unwrap();
        assert!(fit.epb_bps.is_infinite());
        assert!(fit.min_delay > 0.0);
    }

    #[test]
    fn active_measurement_estimates_link_bandwidth() {
        // 40 Mbit/s = 5 MB/s link with 20 ms delay and light loss.
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        t.connect(a, b, LinkSpec::from_mbps(40.0, 0.02).with_queue_delay(2.0));
        let config = ActiveMeasurementConfig {
            probe_sizes: vec![128 * 1024, 512 * 1024, 2 * 1024 * 1024],
            repetitions: 1,
            ..ActiveMeasurementConfig::default()
        };
        let est = measure_path(&t, a, b, &config, 17).expect("measurement should succeed");
        // The achievable goodput is below the raw 5 MB/s because of pacing
        // and ACK overhead, but must be the right order of magnitude.
        assert!(
            est.epb_bps > 1.5e6 && est.epb_bps < 6e6,
            "estimated EPB {} out of range",
            est.epb_bps
        );
        assert!(est.samples >= 3);
    }

    #[test]
    fn sustained_goodput_probe_is_capacity_limited() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        t.connect(a, b, LinkSpec::from_mbps(8.0, 0.01).with_queue_delay(0.5));
        let goodput = measure_sustained_goodput(&t, a, b, SimTime::from_secs(20.0), 3);
        // 8 Mbit/s = 1 MB/s; the probe should saturate but not exceed it.
        assert!(goodput > 0.5e6 && goodput <= 1.05e6, "goodput {goodput}");
    }
}
