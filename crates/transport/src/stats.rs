//! Time-series summaries used by the transport experiments.
//!
//! The stabilization experiment needs a handful of scalar summaries of the
//! goodput trajectory: steady-state mean and jitter, convergence time to a
//! band around the target, and a stability index comparing early and late
//! variability.

use serde::{Deserialize, Serialize};

/// A `(time, value)` series with summary helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// The samples in time order.
    pub samples: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Wrap an existing sample vector (assumed time-ordered).
    pub fn new(samples: Vec<(f64, f64)>) -> Self {
        TimeSeries { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of all values (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation of all values.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self
            .samples
            .iter()
            .map(|(_, v)| (v - mean).powi(2))
            .sum::<f64>()
            / self.samples.len() as f64)
            .sqrt()
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        let mean = self.mean();
        if mean.abs() < 1e-12 {
            0.0
        } else {
            self.std_dev() / mean
        }
    }

    /// Restrict to samples with `time >= from`.
    pub fn after(&self, from: f64) -> TimeSeries {
        TimeSeries::new(
            self.samples
                .iter()
                .copied()
                .filter(|(t, _)| *t >= from)
                .collect(),
        )
    }

    /// Mean absolute successive difference — a jitter measure that, unlike
    /// the standard deviation, is insensitive to slow drift.
    pub fn mean_abs_successive_diff(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let diffs: Vec<f64> = self
            .samples
            .windows(2)
            .map(|w| (w[1].1 - w[0].1).abs())
            .collect();
        diffs.iter().sum::<f64>() / diffs.len() as f64
    }

    /// Earliest time from which the series stays within `band` (relative,
    /// e.g. 0.2 = ±20 %) of `target` for the rest of the trace, or `None` if
    /// it never settles.
    pub fn convergence_time(&self, target: f64, band: f64) -> Option<f64> {
        if self.samples.is_empty() || target <= 0.0 {
            return None;
        }
        let within = |v: f64| (v - target).abs() <= band * target;
        // Scan from the end to find the last excursion outside the band.
        let mut last_violation: Option<usize> = None;
        for (i, (_, v)) in self.samples.iter().enumerate() {
            if !within(*v) {
                last_violation = Some(i);
            }
        }
        match last_violation {
            None => Some(self.samples[0].0),
            Some(i) if i + 1 < self.samples.len() => Some(self.samples[i + 1].0),
            Some(_) => None,
        }
    }

    /// Stability index: the ratio of the coefficient of variation in the
    /// first `split` fraction of the trace to that in the remainder.  Values
    /// well above 1 indicate the trajectory settled down.
    pub fn stability_index(&self, split: f64) -> f64 {
        if self.samples.len() < 4 {
            return 1.0;
        }
        let split = split.clamp(0.05, 0.95);
        let t_split = {
            let t0 = self.samples.first().map(|(t, _)| *t).unwrap_or(0.0);
            let t1 = self.samples.last().map(|(t, _)| *t).unwrap_or(0.0);
            t0 + split * (t1 - t0)
        };
        let early = TimeSeries::new(
            self.samples
                .iter()
                .copied()
                .filter(|(t, _)| *t < t_split)
                .collect(),
        );
        let late = self.after(t_split);
        let late_cv = late.coefficient_of_variation();
        if late_cv < 1e-12 {
            return f64::INFINITY;
        }
        early.coefficient_of_variation() / late_cv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        TimeSeries::new(
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (i as f64, *v))
                .collect(),
        )
    }

    #[test]
    fn empty_series_summaries_are_zero() {
        let s = TimeSeries::default();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        assert_eq!(s.mean_abs_successive_diff(), 0.0);
        assert_eq!(s.convergence_time(1.0, 0.1), None);
    }

    #[test]
    fn mean_and_std() {
        let s = series(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.coefficient_of_variation() - 0.4).abs() < 1e-12);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn after_filters_by_time() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        let tail = s.after(2.0);
        assert_eq!(tail.samples, vec![(2.0, 3.0), (3.0, 4.0)]);
    }

    #[test]
    fn jitter_measures_successive_change() {
        let smooth = series(&[1.0, 1.0, 1.0, 1.0]);
        let bumpy = series(&[1.0, 2.0, 1.0, 2.0]);
        assert_eq!(smooth.mean_abs_successive_diff(), 0.0);
        assert!((bumpy.mean_abs_successive_diff() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convergence_time_detection() {
        // Starts far from target 10, settles to within 10 % at t = 3.
        let s = series(&[1.0, 20.0, 5.0, 9.8, 10.1, 9.9, 10.0]);
        let t = s.convergence_time(10.0, 0.1).unwrap();
        assert_eq!(t, 3.0);
        // Never converges.
        let bad = series(&[1.0, 2.0, 3.0, 50.0]);
        assert_eq!(bad.convergence_time(10.0, 0.1), None);
        // Converged from the start.
        let good = series(&[10.0, 10.0]);
        assert_eq!(good.convergence_time(10.0, 0.1), Some(0.0));
    }

    #[test]
    fn stability_index_detects_settling() {
        let mut vals: Vec<f64> = vec![1.0, 9.0, 2.0, 8.0, 3.0, 7.0];
        vals.extend(std::iter::repeat_n(5.0, 6));
        let s = series(&vals);
        assert!(s.stability_index(0.5) > 5.0);
        let constant = series(&[5.0; 10]);
        assert!(constant.stability_index(0.5).is_infinite());
        let tiny = series(&[1.0, 2.0]);
        assert_eq!(tiny.stability_index(0.5), 1.0);
    }
}
