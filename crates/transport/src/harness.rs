//! One-call helpers for running transport flows on a simulated topology.
//!
//! The stabilization experiments and the EPB active-measurement procedure
//! both need the same scaffolding: build a simulator, install a sender and a
//! receiver, run for a while, and pull the statistics back out.  This module
//! provides that scaffolding.

use crate::aimd::{AimdController, AimdParams};
use crate::fixed::FixedController;
use crate::flow::{shared_stats, FlowConfig, FlowStats, RateController};
use crate::receiver::FlowReceiver;
use crate::rm::{RmController, RmParams};
use crate::sender::WindowSender;
use crate::stats::TimeSeries;
use ricsa_netsim::node::NodeId;
use ricsa_netsim::sim::Simulator;
use ricsa_netsim::time::SimTime;
use ricsa_netsim::topology::Topology;
use serde::{Deserialize, Serialize};

/// Which rate controller a flow experiment uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControllerChoice {
    /// Robbins–Monro stabilization toward the contained target (bytes/s).
    RobbinsMonro {
        /// Target goodput `g*`, bytes per second.
        target_bps: f64,
    },
    /// AIMD (TCP-like) baseline.
    Aimd,
    /// Open-loop fixed rate (bytes/s).
    FixedRate {
        /// Nominal send rate, bytes per second.
        rate_bps: f64,
    },
}

/// Description of a single-flow experiment between two nodes of a topology.
#[derive(Debug, Clone)]
pub struct FlowExperiment {
    /// The topology to run on.
    pub topology: Topology,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Flow configuration (message size, window, MTU, ...).
    pub config: FlowConfig,
    /// Rate controller selection.
    pub controller: ControllerChoice,
    /// Virtual-time horizon of the run.
    pub duration: SimTime,
    /// RNG seed.
    pub seed: u64,
}

/// The outcome of a flow experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Raw flow statistics.
    pub stats: FlowStats,
    /// Goodput samples as a time series (receiver estimates, bytes/s).
    pub goodput: TimeSeries,
    /// Controller name for reporting.
    pub controller: String,
    /// Completion time of the finite message, if one was configured and it
    /// completed within the horizon (seconds from flow start).
    pub completion_time: Option<f64>,
}

impl FlowOutcome {
    /// Steady-state mean goodput: the mean over the second half of the run.
    pub fn steady_state_goodput(&self) -> f64 {
        let t_half = self
            .goodput
            .samples
            .last()
            .map(|(t, _)| t / 2.0)
            .unwrap_or(0.0);
        self.goodput.after(t_half).mean()
    }

    /// Steady-state coefficient of variation (jitter) of the goodput.
    pub fn steady_state_cv(&self) -> f64 {
        let t_half = self
            .goodput
            .samples
            .last()
            .map(|(t, _)| t / 2.0)
            .unwrap_or(0.0);
        self.goodput.after(t_half).coefficient_of_variation()
    }
}

/// Run a single transport flow and collect its statistics.
pub fn run_flow(exp: FlowExperiment) -> FlowOutcome {
    let stats = shared_stats();
    let mut sim = Simulator::new(exp.topology, exp.seed);
    let controller_name;

    match exp.controller {
        ControllerChoice::RobbinsMonro { target_bps } => {
            let params = RmParams {
                window: exp.config.window,
                mtu: exp.config.mtu,
                initial_sleep: exp.config.initial_sleep,
                ..RmParams::for_target(target_bps)
            };
            let controller = RmController::new(params);
            controller_name = controller.name().to_string();
            let sender = WindowSender::new(exp.config.clone(), exp.dst, controller, stats.clone());
            sim.install(exp.src, Box::new(sender));
        }
        ControllerChoice::Aimd => {
            let controller = AimdController::new(AimdParams {
                sleep: exp.config.initial_sleep,
                initial_window: exp.config.window,
                ..AimdParams::default()
            });
            controller_name = controller.name().to_string();
            let sender = WindowSender::new(exp.config.clone(), exp.dst, controller, stats.clone());
            sim.install(exp.src, Box::new(sender));
        }
        ControllerChoice::FixedRate { rate_bps } => {
            let controller = FixedController::for_rate(rate_bps, exp.config.window, exp.config.mtu);
            controller_name = controller.name().to_string();
            let sender = WindowSender::new(exp.config.clone(), exp.dst, controller, stats.clone());
            sim.install(exp.src, Box::new(sender));
        }
    }

    let receiver = FlowReceiver::new(exp.config.clone(), exp.src, stats.clone());
    sim.install(exp.dst, Box::new(receiver));
    sim.run_until(exp.duration);

    let final_stats = stats.borrow().clone();
    let goodput = TimeSeries::new(final_stats.goodput_samples.clone());
    FlowOutcome {
        completion_time: final_stats.completion_time,
        goodput,
        controller: controller_name,
        stats: final_stats,
    }
}

/// Convenience: measure the transfer latency of a single message of
/// `bytes` between two nodes using the Robbins–Monro transport with the
/// given target rate.  Returns `None` if the transfer did not complete
/// within `duration`.
pub fn measure_message_latency(
    topology: Topology,
    src: NodeId,
    dst: NodeId,
    bytes: usize,
    target_bps: f64,
    duration: SimTime,
    seed: u64,
) -> Option<f64> {
    let config = FlowConfig {
        message_bytes: Some(bytes),
        ..FlowConfig::default()
    };
    let outcome = run_flow(FlowExperiment {
        topology,
        src,
        dst,
        config,
        controller: ControllerChoice::RobbinsMonro { target_bps },
        duration,
        seed,
    });
    outcome.completion_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_netsim::crosstraffic::CrossTraffic;
    use ricsa_netsim::link::LinkSpec;
    use ricsa_netsim::loss::LossModel;
    use ricsa_netsim::node::NodeSpec;

    fn wan_pair(mbps: f64, delay: f64, loss: f64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("src", 1.0));
        let b = t.add_node(NodeSpec::workstation("dst", 1.0));
        t.connect(
            a,
            b,
            LinkSpec::from_mbps(mbps, delay)
                .with_loss(LossModel::Bernoulli { p: loss })
                .with_queue_delay(1.0),
        );
        (t, a, b)
    }

    #[test]
    fn rm_flow_converges_to_target_goodput() {
        let (topo, a, b) = wan_pair(100.0, 0.02, 0.002);
        let target = 1.0e6; // 1 MB/s, well under the 12.5 MB/s link
        let outcome = run_flow(FlowExperiment {
            topology: topo,
            src: a,
            dst: b,
            config: FlowConfig::default(),
            controller: ControllerChoice::RobbinsMonro { target_bps: target },
            duration: SimTime::from_secs(30.0),
            seed: 5,
        });
        let ss = outcome.steady_state_goodput();
        assert!(
            (ss - target).abs() / target < 0.2,
            "steady-state goodput {ss} should be within 20% of target {target}"
        );
        assert!(
            outcome.steady_state_cv() < 0.2,
            "cv {}",
            outcome.steady_state_cv()
        );
        assert_eq!(outcome.controller, "robbins-monro");
    }

    #[test]
    fn rm_flow_tracks_its_target_where_aimd_cannot() {
        let build = || {
            let mut t = Topology::new();
            let a = t.add_node(NodeSpec::workstation("src", 1.0));
            let b = t.add_node(NodeSpec::workstation("dst", 1.0));
            t.connect(
                a,
                b,
                LinkSpec::from_mbps(20.0, 0.03)
                    .with_loss(LossModel::Bernoulli { p: 0.01 })
                    .with_cross_traffic(CrossTraffic::OnOff {
                        low_load: 0.1,
                        high_load: 0.5,
                        mean_low_duration: 1.0,
                        mean_high_duration: 1.0,
                    })
                    .with_queue_delay(0.5),
            );
            (t, a, b)
        };
        let (t1, a1, b1) = build();
        let rm = run_flow(FlowExperiment {
            topology: t1,
            src: a1,
            dst: b1,
            config: FlowConfig::default(),
            controller: ControllerChoice::RobbinsMonro { target_bps: 0.5e6 },
            duration: SimTime::from_secs(40.0),
            seed: 11,
        });
        let (t2, a2, b2) = build();
        let aimd = run_flow(FlowExperiment {
            topology: t2,
            src: a2,
            dst: b2,
            config: FlowConfig::default(),
            controller: ControllerChoice::Aimd,
            duration: SimTime::from_secs(40.0),
            seed: 11,
        });
        // The point of the Robbins-Monro transport is that the control
        // channel holds a *specified* goodput level despite loss and cross
        // traffic; AIMD has no target and simply runs the link as hard as it
        // can, so its goodput ends up far from g*.
        let target = 0.5e6;
        let rm_error = (rm.steady_state_goodput() - target).abs() / target;
        let aimd_error = (aimd.steady_state_goodput() - target).abs() / target;
        assert!(
            rm_error < 0.2,
            "RM should hold g*: relative error {rm_error}"
        );
        assert!(
            rm.steady_state_cv() < 0.2,
            "RM jitter {}",
            rm.steady_state_cv()
        );
        assert!(
            aimd_error > 2.0 * rm_error,
            "AIMD should miss the target by far more than RM (aimd {aimd_error}, rm {rm_error})"
        );
    }

    #[test]
    fn finite_message_completes_and_latency_scales_with_size() {
        let (topo, a, b) = wan_pair(80.0, 0.01, 0.001);
        let small = measure_message_latency(
            topo.clone(),
            a,
            b,
            200_000,
            5e6,
            SimTime::from_secs(60.0),
            3,
        )
        .expect("small transfer should complete");
        let large =
            measure_message_latency(topo, a, b, 2_000_000, 5e6, SimTime::from_secs(60.0), 3)
                .expect("large transfer should complete");
        assert!(large > small, "large {large} should exceed small {small}");
    }

    #[test]
    fn lossy_path_still_delivers_reliably() {
        let (topo, a, b) = wan_pair(50.0, 0.02, 0.05); // 5 % loss
        let config = FlowConfig {
            message_bytes: Some(500_000),
            ..FlowConfig::default()
        };
        let outcome = run_flow(FlowExperiment {
            topology: topo,
            src: a,
            dst: b,
            config,
            controller: ControllerChoice::RobbinsMonro { target_bps: 2e6 },
            duration: SimTime::from_secs(120.0),
            seed: 9,
        });
        assert!(
            outcome.completion_time.is_some(),
            "transfer must complete despite 5% loss"
        );
        assert!(outcome.stats.retransmissions > 0);
        assert!(outcome.stats.bytes_delivered >= 500_000);
    }

    #[test]
    fn fixed_rate_overdriving_a_slow_link_loses_datagrams() {
        let (topo, a, b) = wan_pair(1.0, 0.01, 0.0); // 125 KB/s link
        let outcome = run_flow(FlowExperiment {
            topology: topo,
            src: a,
            dst: b,
            config: FlowConfig::default(),
            controller: ControllerChoice::FixedRate { rate_bps: 2e6 },
            duration: SimTime::from_secs(10.0),
            seed: 2,
        });
        // The open-loop sender pushes ~2 MB/s into a 125 KB/s link: most of
        // it must be dropped at the queue, so goodput lands near capacity.
        assert!(outcome.steady_state_goodput() < 0.3e6);
        assert_eq!(outcome.controller, "fixed-rate");
    }
}
