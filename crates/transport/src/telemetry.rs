//! Passive per-flow telemetry: monitoring that costs no probe traffic.
//!
//! The adaptive re-mapping control plane (DESIGN.md §8) needs up-to-date
//! estimates of what every virtual link currently delivers — without
//! injecting measurement traffic next to the data it would perturb.  Every
//! [`crate::sender::WindowSender`] therefore maintains a [`FlowTelemetry`]
//! record fed exclusively by signals the transport already produces:
//!
//! * **goodput** — the receiver's sliding-window goodput estimate carried
//!   back in every ACK, smoothed with an EWMA;
//! * **RTT** — one un-retransmitted datagram per round trip is used as a
//!   passive probe: the sample is the time from its transmission to the
//!   first ACK confirming it.  A probe that gets retransmitted is
//!   discarded (Karn's rule: the ACK would be ambiguous);
//! * **loss events** — NACK groups that survive the sender's staleness
//!   filters, i.e. the same signal that drives the rate controller.
//!
//! The struct is `serde`-serializable so controllers can log telemetry
//! snapshots alongside their decision traces.

use serde::{Deserialize, Serialize};

/// Default EWMA weight for goodput and RTT smoothing.
pub const DEFAULT_TELEMETRY_ALPHA: f64 = 0.3;

/// A passive telemetry snapshot of one transport flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FlowTelemetry {
    /// The flow this telemetry describes.
    pub flow_id: u64,
    /// EWMA of the receiver-reported goodput, bytes/second (0 until the
    /// first ACK carries a positive estimate).
    pub goodput_bps: f64,
    /// EWMA of the passive round-trip-time samples, seconds (0 until the
    /// first sample).
    pub rtt_s: f64,
    /// Loss events observed (fresh NACK groups, one per controller
    /// back-off).
    pub loss_events: u64,
    /// Number of goodput observations folded into the EWMA.
    pub goodput_samples: u64,
    /// Number of RTT probes resolved.
    pub rtt_samples: u64,
    /// Virtual time of the first observation, seconds.
    pub first_update_s: f64,
    /// Virtual time of the latest observation, seconds.
    pub last_update_s: f64,
}

impl FlowTelemetry {
    /// Whether any goodput observation has arrived yet.
    pub fn has_signal(&self) -> bool {
        self.goodput_samples > 0
    }

    /// Loss events per second over the observed span (0 before the span
    /// is meaningfully long).
    pub fn loss_event_rate(&self) -> f64 {
        let span = self.last_update_s - self.first_update_s;
        if span <= 1e-9 {
            0.0
        } else {
            self.loss_events as f64 / span
        }
    }
}

/// Accumulates [`FlowTelemetry`] from the sender's existing signals.
#[derive(Debug, Clone)]
pub struct TelemetryCollector {
    telemetry: FlowTelemetry,
    alpha: f64,
    /// In-flight passive RTT probe: `(sequence, send time)`.
    probe: Option<(u64, f64)>,
}

impl TelemetryCollector {
    /// A collector for `flow_id` with the default EWMA weight.
    pub fn new(flow_id: u64) -> Self {
        TelemetryCollector::with_alpha(flow_id, DEFAULT_TELEMETRY_ALPHA)
    }

    /// A collector with an explicit EWMA weight in `(0, 1]`.
    pub fn with_alpha(flow_id: u64, alpha: f64) -> Self {
        TelemetryCollector {
            telemetry: FlowTelemetry {
                flow_id,
                ..FlowTelemetry::default()
            },
            alpha: alpha.clamp(1e-3, 1.0),
            probe: None,
        }
    }

    /// The telemetry accumulated so far.
    pub fn telemetry(&self) -> &FlowTelemetry {
        &self.telemetry
    }

    /// The sequence number of the outstanding RTT probe, if any.
    pub fn probe_seq(&self) -> Option<u64> {
        self.probe.map(|(seq, _)| seq)
    }

    /// Note a datagram transmission.  A fresh (non-retransmitted) datagram
    /// becomes the RTT probe when none is outstanding; retransmitting the
    /// current probe discards it (Karn's rule — the eventual ACK could be
    /// for either copy).
    pub fn note_sent(&mut self, seq: u64, now: f64, retransmission: bool) {
        match self.probe {
            Some((probe_seq, _)) if retransmission && probe_seq == seq => self.probe = None,
            None if !retransmission => self.probe = Some((seq, now)),
            _ => {}
        }
    }

    /// Resolve the outstanding probe against the sender's acknowledgement
    /// state (`acked(seq)` must reflect cumulative + SACK confirmation
    /// only).  Produces at most one RTT sample per probe.
    pub fn note_acked(&mut self, now: f64, acked: impl Fn(u64) -> bool) {
        if let Some((seq, sent_at)) = self.probe {
            if acked(seq) {
                let sample = (now - sent_at).max(0.0);
                let t = &mut self.telemetry;
                t.rtt_s = if t.rtt_samples == 0 {
                    sample
                } else {
                    self.alpha * sample + (1.0 - self.alpha) * t.rtt_s
                };
                t.rtt_samples += 1;
                self.touch(now);
                self.probe = None;
            }
        }
    }

    /// Fold a receiver-reported goodput observation into the EWMA.
    pub fn on_goodput(&mut self, goodput_bps: f64, now: f64) {
        if !(goodput_bps.is_finite() && goodput_bps > 0.0) {
            return;
        }
        let t = &mut self.telemetry;
        t.goodput_bps = if t.goodput_samples == 0 {
            goodput_bps
        } else {
            self.alpha * goodput_bps + (1.0 - self.alpha) * t.goodput_bps
        };
        t.goodput_samples += 1;
        self.touch(now);
    }

    /// Record `count` fresh loss events.
    pub fn on_loss(&mut self, count: u64, now: f64) {
        self.telemetry.loss_events += count;
        self.touch(now);
    }

    fn touch(&mut self, now: f64) {
        let t = &mut self.telemetry;
        if t.first_update_s == 0.0 && t.last_update_s == 0.0 {
            t.first_update_s = now;
        }
        t.last_update_s = t.last_update_s.max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_ewma_tracks_observations() {
        let mut c = TelemetryCollector::with_alpha(7, 0.5);
        assert!(!c.telemetry().has_signal());
        c.on_goodput(100.0, 1.0);
        assert_eq!(c.telemetry().goodput_bps, 100.0);
        c.on_goodput(200.0, 2.0);
        assert!((c.telemetry().goodput_bps - 150.0).abs() < 1e-9);
        assert_eq!(c.telemetry().goodput_samples, 2);
        assert!(c.telemetry().has_signal());
        // Garbage observations are ignored.
        c.on_goodput(f64::NAN, 3.0);
        c.on_goodput(-1.0, 3.0);
        assert_eq!(c.telemetry().goodput_samples, 2);
    }

    #[test]
    fn rtt_probe_resolves_once_and_respects_karn() {
        let mut c = TelemetryCollector::new(1);
        c.note_sent(0, 0.0, false);
        assert_eq!(c.probe_seq(), Some(0));
        // A later fresh send does not replace the outstanding probe.
        c.note_sent(1, 0.01, false);
        assert_eq!(c.probe_seq(), Some(0));
        c.note_acked(0.05, |s| s == 0);
        assert!((c.telemetry().rtt_s - 0.05).abs() < 1e-12);
        assert_eq!(c.telemetry().rtt_samples, 1);
        assert_eq!(c.probe_seq(), None);
        // New probe; retransmitting it discards the sample (Karn).
        c.note_sent(5, 0.1, false);
        c.note_sent(5, 0.2, true);
        assert_eq!(c.probe_seq(), None);
        c.note_acked(0.3, |_| true);
        assert_eq!(c.telemetry().rtt_samples, 1);
    }

    #[test]
    fn loss_rate_needs_a_span() {
        let mut c = TelemetryCollector::new(1);
        c.on_loss(2, 1.0);
        assert_eq!(c.telemetry().loss_event_rate(), 0.0);
        c.on_loss(2, 5.0);
        assert!((c.telemetry().loss_event_rate() - 1.0).abs() < 1e-9);
        assert_eq!(c.telemetry().loss_events, 4);
    }

    #[test]
    fn telemetry_serializes() {
        let mut c = TelemetryCollector::new(9);
        c.on_goodput(1e6, 1.0);
        let json = serde_json::to_string(c.telemetry()).unwrap();
        let back: FlowTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, c.telemetry());
    }
}
