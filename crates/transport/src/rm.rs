//! The Robbins–Monro sleep-time controller (paper Eq. 1).
//!
//! At update step `t_{n+1}` the sleep (idle) time between bursts is
//!
//! ```text
//! Ts(t_{n+1}) = 1 / ( 1/Ts(t_n)  -  a / (Wc · n^α) · (g(t_n) - g*) )
//! ```
//!
//! i.e. the *burst frequency* `1/Ts` is nudged down when the measured goodput
//! `g` exceeds the target `g*` and up when it falls short, with a gain that
//! decays like `n^{-α}`.  Under the classical Robbins–Monro conditions on the
//! coefficients (`α ∈ (0.5, 1]`) the goodput converges to `g*` under random
//! losses; the original analysis is in Rao, Wu & Iyengar, IEEE Communications
//! Letters 2004, which the paper integrates.

use crate::flow::RateController;
use serde::{Deserialize, Serialize};

/// Tunable coefficients of the Robbins–Monro controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmParams {
    /// Target goodput `g*`, bytes per second.
    pub target_goodput: f64,
    /// Gain coefficient `a`.
    pub gain: f64,
    /// Decay exponent `α`; must lie in `(0.5, 1]` for the classical
    /// convergence guarantees.
    pub alpha: f64,
    /// Congestion window `Wc` (datagrams per burst).
    pub window: u32,
    /// Datagram payload size, bytes (used to sanity-bound the sleep time).
    pub mtu: usize,
    /// Lower bound on the sleep time, seconds.
    pub min_sleep: f64,
    /// Upper bound on the sleep time, seconds.
    pub max_sleep: f64,
    /// Initial sleep time `Ts(0)`, seconds.
    pub initial_sleep: f64,
}

impl RmParams {
    /// Reasonable defaults for a control channel targeting `target_goodput`
    /// bytes/second.
    pub fn for_target(target_goodput: f64) -> Self {
        RmParams {
            target_goodput,
            gain: 0.8,
            alpha: 0.8,
            window: 16,
            mtu: 1358,
            min_sleep: 1e-4,
            max_sleep: 1.0,
            initial_sleep: 0.05,
        }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_goodput <= 0.0 {
            return Err("target goodput must be positive".into());
        }
        if self.gain <= 0.0 {
            return Err("gain must be positive".into());
        }
        if !(self.alpha > 0.5 && self.alpha <= 1.0) {
            return Err(format!(
                "alpha must lie in (0.5, 1] for Robbins-Monro convergence, got {}",
                self.alpha
            ));
        }
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.min_sleep <= 0.0 || self.max_sleep <= self.min_sleep {
            return Err("sleep bounds must satisfy 0 < min < max".into());
        }
        if !(self.initial_sleep >= self.min_sleep && self.initial_sleep <= self.max_sleep) {
            return Err("initial sleep must lie within the sleep bounds".into());
        }
        Ok(())
    }
}

/// The Robbins–Monro stochastic-approximation rate controller.
#[derive(Debug, Clone)]
pub struct RmController {
    params: RmParams,
    sleep: f64,
    step: u64,
}

impl RmController {
    /// Create a controller from parameters.
    ///
    /// # Panics
    /// Panics if the parameters fail validation.
    pub fn new(params: RmParams) -> Self {
        params.validate().expect("invalid Robbins-Monro parameters");
        let sleep = params.initial_sleep;
        RmController {
            params,
            sleep,
            step: 0,
        }
    }

    /// The target goodput `g*` in bytes per second.
    pub fn target(&self) -> f64 {
        self.params.target_goodput
    }

    /// Number of goodput updates applied so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The parameters this controller was built with.
    pub fn params(&self) -> &RmParams {
        &self.params
    }

    /// Apply one Robbins–Monro update (Eq. 1) and return the new sleep time.
    pub fn update(&mut self, goodput_bps: f64) -> f64 {
        self.step += 1;
        let n = self.step as f64;
        // Normalize the error by the per-burst payload so that the gain `a`
        // is dimensionless and works across very different target rates.
        let burst_bytes = (self.params.window as f64) * self.params.mtu as f64;
        let error = goodput_bps - self.params.target_goodput;
        let step_size = self.params.gain / (burst_bytes * n.powf(self.params.alpha));
        let inv = 1.0 / self.sleep - step_size * error;
        let inv = inv.clamp(1.0 / self.params.max_sleep, 1.0 / self.params.min_sleep);
        self.sleep = 1.0 / inv;
        self.sleep
    }
}

impl RateController for RmController {
    fn on_goodput(&mut self, goodput_bps: f64, _now: f64) {
        self.update(goodput_bps);
    }

    fn sleep_time(&self) -> f64 {
        self.sleep
    }

    fn window(&self) -> u32 {
        self.params.window
    }

    fn name(&self) -> &'static str {
        "robbins-monro"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(target: f64) -> RmParams {
        RmParams::for_target(target)
    }

    #[test]
    fn validation_rules() {
        assert!(params(1e6).validate().is_ok());
        let mut p = params(1e6);
        p.alpha = 0.4;
        assert!(p.validate().is_err());
        p = params(1e6);
        p.alpha = 1.2;
        assert!(p.validate().is_err());
        p = params(0.0);
        assert!(p.validate().is_err());
        p = params(1e6);
        p.min_sleep = 0.2;
        p.max_sleep = 0.1;
        assert!(p.validate().is_err());
        p = params(1e6);
        p.initial_sleep = 10.0;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid Robbins-Monro parameters")]
    fn constructor_panics_on_bad_params() {
        let mut p = params(1e6);
        p.gain = -1.0;
        let _ = RmController::new(p);
    }

    #[test]
    fn goodput_above_target_slows_down() {
        let mut c = RmController::new(params(1e6));
        let before = c.sleep_time();
        c.update(2e6); // measured goodput twice the target
        assert!(c.sleep_time() > before, "sleep should grow when g > g*");
    }

    #[test]
    fn goodput_below_target_speeds_up() {
        let mut c = RmController::new(params(1e6));
        let before = c.sleep_time();
        c.update(0.2e6);
        assert!(c.sleep_time() < before, "sleep should shrink when g < g*");
    }

    #[test]
    fn sleep_stays_within_bounds() {
        let p = params(1e6);
        let (lo, hi) = (p.min_sleep, p.max_sleep);
        let mut c = RmController::new(p.clone());
        for _ in 0..500 {
            c.update(100e6); // persistently way above target
            assert!(c.sleep_time() <= hi + 1e-12);
        }
        let mut c = RmController::new(p);
        for _ in 0..500 {
            c.update(0.0); // persistently below target
            assert!(c.sleep_time() >= lo - 1e-12);
        }
    }

    /// Closed-loop convergence against a synthetic channel: the goodput
    /// responds proportionally to the send rate up to a capacity, with
    /// multiplicative noise.  The controller should drive the goodput to the
    /// target and the late iterates should be much less variable than the
    /// early ones (stabilization).
    #[test]
    fn converges_to_target_on_synthetic_channel() {
        let target = 2e6; // 2 MB/s
        let capacity = 10e6; // channel can do 10 MB/s
        let mut c = RmController::new(RmParams {
            initial_sleep: 0.2,
            ..params(target)
        });
        let burst_bytes = (c.window() as usize * c.params().mtu) as f64;
        let mut rng_state = 0x12345u64;
        let mut noise = || {
            // xorshift for deterministic multiplicative noise in [0.9, 1.1].
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            0.9 + 0.2 * ((rng_state % 1000) as f64 / 1000.0)
        };
        let mut goodputs = Vec::new();
        for _ in 0..4000 {
            let rate = burst_bytes / c.sleep_time();
            let goodput = rate.min(capacity) * noise();
            goodputs.push(goodput);
            c.update(goodput);
        }
        let tail = &goodputs[3000..];
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (tail_mean - target).abs() / target < 0.1,
            "tail mean {tail_mean} should approach target {target}"
        );
        // Late-stage variability should be dominated by the injected noise,
        // not by the controller hunting.
        let tail_std =
            (tail.iter().map(|g| (g - tail_mean).powi(2)).sum::<f64>() / tail.len() as f64).sqrt();
        assert!(
            tail_std / tail_mean < 0.15,
            "tail cv {}",
            tail_std / tail_mean
        );
    }

    #[test]
    fn gain_decays_with_step_count() {
        // With a large step count the same error should move the sleep time
        // less than it does at the first step.
        let mut early = RmController::new(params(1e6));
        let d_early = {
            let before = early.sleep_time();
            early.update(5e6);
            (early.sleep_time() - before).abs()
        };
        let mut late = RmController::new(params(1e6));
        for _ in 0..200 {
            late.update(1e6); // on-target updates advance the step counter only
        }
        let d_late = {
            let before = late.sleep_time();
            late.update(5e6);
            (late.sleep_time() - before).abs()
        };
        assert!(
            d_late < d_early,
            "late {d_late} should be < early {d_early}"
        );
    }

    #[test]
    fn trait_impl_reports_identity() {
        let c = RmController::new(params(1e6));
        assert_eq!(c.name(), "robbins-monro");
        assert_eq!(c.window(), 16);
        assert_eq!(c.steps(), 0);
        assert!((c.target() - 1e6).abs() < 1e-9);
    }
}
