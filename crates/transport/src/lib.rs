//! Application-level transport protocols for RICSA control and data channels.
//!
//! Section 3 of the paper integrates a window-based UDP transport whose send
//! rate is adapted with a Robbins–Monro stochastic-approximation update
//! (Eq. 1) so that the *goodput* observed by the receiver converges to a
//! target level `g*`.  Stable, low-jitter goodput is what makes interactive
//! steering over a wide-area control channel usable.
//!
//! This crate provides:
//!
//! * [`rm::RmController`] — the Robbins–Monro sleep-time controller (Eq. 1),
//! * [`aimd::AimdController`] and [`fixed::FixedController`] — baselines,
//! * [`sender::WindowSender`] / [`receiver::FlowReceiver`] — the window-based
//!   sender/receiver pair from Fig. 2 (congestion window, sleep time,
//!   ACK/NACK retransmission, datagram reordering), runnable on any
//!   `ricsa-netsim` topology,
//! * [`epb`] — active measurement and linear-regression estimation of the
//!   effective path bandwidth (Section 4.3, Eq. 3),
//! * [`harness`] — one-call helpers that wire a flow across a topology and
//!   report goodput series, convergence and message latencies,
//! * [`stats`] — time-series summaries (mean, jitter, convergence time),
//! * [`telemetry`] — passive per-flow telemetry ([`telemetry::FlowTelemetry`]:
//!   EWMA goodput, RTT, loss-event rate) feeding the adaptive re-mapping
//!   monitor without any probe traffic (DESIGN.md §8).

#![deny(missing_docs)]

pub mod aimd;
pub mod epb;
pub mod fixed;
pub mod flow;
pub mod harness;
pub mod receiver;
pub mod rm;
pub mod sender;
pub mod stats;
pub mod telemetry;

pub use aimd::{AimdController, AimdParams};
pub use epb::{EpbEstimate, EpbEstimator};
pub use fixed::FixedController;
pub use flow::{FlowConfig, FlowStats, RateController, SharedFlowStats};
pub use harness::{run_flow, FlowExperiment, FlowOutcome};
pub use receiver::FlowReceiver;
pub use rm::{RmController, RmParams};
pub use sender::WindowSender;
pub use stats::TimeSeries;
pub use telemetry::{FlowTelemetry, TelemetryCollector};
