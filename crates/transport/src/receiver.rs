//! The flow receiver: datagram reordering, ACK/NACK generation, goodput
//! measurement (the right-hand side of the paper's Fig. 2).

use crate::flow::{
    AckInfo, FlowConfig, SharedFlowStats, KIND_ACK, KIND_DATA, MAX_NACKS_PER_ACK,
    MAX_SACK_RANGES_PER_ACK, NO_CUMULATIVE,
};
use ricsa_netsim::app::{Application, Context};
use ricsa_netsim::node::NodeId;
use ricsa_netsim::packet::{Datagram, Payload};
use ricsa_netsim::time::SimTime;
use ricsa_netsim::trace::{TraceEvent, TraceKind};
use std::collections::{BTreeSet, VecDeque};

/// Receiver half of a transport flow.
///
/// The receiver buffers out-of-order datagrams, delivers in-order bytes to an
/// (accounted, not materialized) sink, estimates goodput over the interval
/// since the previous acknowledgement and reports it back to the sender in
/// every ACK, together with cumulative and selective (NACK) feedback.
pub struct FlowReceiver {
    config: FlowConfig,
    sender: NodeId,
    stats: SharedFlowStats,
    /// Highest sequence number such that all `<= cumulative` are received.
    cumulative: Option<u64>,
    /// Out-of-order datagrams above the cumulative point.
    pending: BTreeSet<u64>,
    highest_seen: Option<u64>,
    received_count: u64,
    /// Recent arrivals `(time_secs, bytes)` kept for the sliding-window
    /// goodput estimate.
    recent_arrivals: VecDeque<(f64, u64)>,
    /// First arrival time, so early estimates use the true elapsed span.
    first_arrival: Option<f64>,
    ack_timer_pending: bool,
    since_last_ack: u32,
    /// Distinct datagram count at the previous periodic-ACK tick, used to
    /// detect a quiet flow (no arrivals for a full ACK interval).
    received_at_last_tick: u64,
    /// Per-hole NACK schedule: `(earliest re-report time, current backoff)`.
    /// A hole is only reported once it has stayed missing for the reorder
    /// window (jittered links reorder heavily, and NACKing a datagram that
    /// is merely late triggers a useless retransmission).  After each
    /// report the backoff doubles: the receiver does not know the path
    /// round-trip time, and on a bufferbloated path re-asking faster than
    /// the queue drains turns every hole into a duplicate storm.
    nack_schedule: std::collections::BTreeMap<u64, (f64, f64)>,
    goodput_estimate: f64,
    finished: bool,
}

impl FlowReceiver {
    /// Create a receiver for `config`, acknowledging back to `sender`.
    pub fn new(config: FlowConfig, sender: NodeId, stats: SharedFlowStats) -> Self {
        FlowReceiver {
            config,
            sender,
            stats,
            cumulative: None,
            pending: BTreeSet::new(),
            highest_seen: None,
            received_count: 0,
            recent_arrivals: VecDeque::new(),
            first_arrival: None,
            ack_timer_pending: false,
            since_last_ack: 0,
            received_at_last_tick: 0,
            nack_schedule: std::collections::BTreeMap::new(),
            goodput_estimate: 0.0,
            finished: false,
        }
    }

    /// The sliding-window goodput estimate, bytes/second.
    pub fn goodput_estimate(&self) -> f64 {
        self.goodput_estimate
    }

    /// Width of the sliding window used for goodput estimation, seconds.
    fn goodput_window(&self) -> f64 {
        (self.config.ack_interval * 4.0).max(0.2)
    }

    /// Whether the configured finite message has been fully received.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    fn advance_cumulative(&mut self) {
        loop {
            let next = match self.cumulative {
                None => 0,
                Some(c) => c + 1,
            };
            if self.pending.remove(&next) {
                self.cumulative = Some(next);
            } else {
                break;
            }
        }
    }

    #[cfg(test)]
    fn missing_below_highest(&self) -> Vec<u64> {
        self.missing_up_to(self.highest_seen.unwrap_or(0), MAX_NACKS_PER_ACK)
    }

    /// Sequence numbers in `(cumulative, end)` that have not arrived,
    /// bounded by `cap`.
    fn missing_up_to(&self, end: u64, cap: usize) -> Vec<u64> {
        if self.highest_seen.is_none() {
            return Vec::new();
        }
        let start = self.cumulative.map(|c| c + 1).unwrap_or(0);
        let mut missing = Vec::new();
        for seq in start..end {
            if !self.pending.contains(&seq) {
                missing.push(seq);
                if missing.len() >= cap {
                    break;
                }
            }
        }
        missing
    }

    /// The NACK list for one acknowledgement.  While data is flowing the
    /// list covers holes below the highest sequence seen (anything above may
    /// simply still be in flight).  When a finite flow has gone *quiet* —
    /// a periodic ACK tick passed with no arrivals — everything in flight
    /// has either landed or died, so the missing range extends to the full
    /// message: this is what lets a lost final datagram (which no later
    /// arrival can reveal) be NACKed instead of waiting out the sender's
    /// retransmission timeout.
    ///
    /// Two timing guards keep the list honest on jittered links: a hole is
    /// reported only after it has stayed missing for the reorder window
    /// (`nack_delay` — kept even when quiet, since a long in-flight leg can
    /// outlast an ACK interval), and a reported hole is not re-reported
    /// until the retransmission had time to arrive.
    fn missing_for_ack(&mut self, now: f64, quiet: bool) -> Vec<u64> {
        let end = match (quiet, self.config.total_datagrams()) {
            (true, Some(total)) => total,
            _ => self.highest_seen.unwrap_or(0),
        };
        // Scan past the per-ACK cap so throttled low holes cannot starve
        // eligible higher ones.
        let holes = self.missing_up_to(end, 4 * MAX_NACKS_PER_ACK);
        // Forget tracked holes that have been filled in the meantime.
        let still_missing: std::collections::BTreeSet<u64> = holes.iter().copied().collect();
        self.nack_schedule
            .retain(|seq, _| still_missing.contains(seq));
        let nack_delay = self.config.nack_delay.max(0.0);
        let first_backoff = (2.0 * self.config.ack_interval).max(nack_delay);
        const MAX_BACKOFF: f64 = 2.0;
        let mut missing = Vec::new();
        for seq in holes {
            let (eligible_at, backoff) = *self
                .nack_schedule
                .entry(seq)
                .or_insert((now + nack_delay, first_backoff));
            if now >= eligible_at {
                missing.push(seq);
                self.nack_schedule
                    .insert(seq, (now + backoff, (backoff * 2.0).min(MAX_BACKOFF)));
                if missing.len() >= MAX_NACKS_PER_ACK {
                    break;
                }
            }
        }
        missing
    }

    /// Coalesce the out-of-order buffer into inclusive SACK ranges,
    /// truncated to [`MAX_SACK_RANGES_PER_ACK`] (lowest ranges first — they
    /// are the ones that let the sender clear its oldest outstanding state).
    fn sack_ranges(&self) -> Vec<(u64, u64)> {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &seq in &self.pending {
            match ranges.last_mut() {
                Some((_, hi)) if *hi + 1 == seq => *hi = seq,
                _ => {
                    if ranges.len() >= MAX_SACK_RANGES_PER_ACK {
                        break;
                    }
                    ranges.push((seq, seq));
                }
            }
        }
        ranges
    }

    fn send_ack(&mut self, ctx: &mut Context) {
        self.send_ack_inner(ctx, false)
    }

    fn send_ack_inner(&mut self, ctx: &mut Context, quiet: bool) {
        let now = ctx.now();
        let now_s = now.as_secs();
        // Goodput over a sliding window: robust to the burst/sleep pattern of
        // the sender, unlike a per-ACK-interval estimate.
        let window = self.goodput_window();
        while let Some(&(t, _)) = self.recent_arrivals.front() {
            if now_s - t > window {
                self.recent_arrivals.pop_front();
            } else {
                break;
            }
        }
        let bytes_in_window: u64 = self.recent_arrivals.iter().map(|(_, b)| b).sum();
        let span = match self.first_arrival {
            Some(first) => (now_s - first).clamp(1e-6, window),
            None => window,
        };
        self.goodput_estimate = bytes_in_window as f64 / span.max(1e-6);
        self.since_last_ack = 0;

        let missing = self.missing_for_ack(now_s, quiet);
        let ack = AckInfo {
            cumulative: self.cumulative.unwrap_or(NO_CUMULATIVE),
            highest_seen: self.highest_seen.unwrap_or(0),
            missing,
            sack: self.sack_ranges(),
            goodput_bps: self.goodput_estimate,
            received_count: self.received_count,
        };
        let payload = Payload::with_data(KIND_ACK, self.config.flow_id, 0, ack.encode());
        ctx.send(self.sender, payload);

        let mut stats = self.stats.borrow_mut();
        stats
            .goodput_samples
            .push((now.as_secs(), self.goodput_estimate));
        ctx.trace(TraceEvent::new(TraceKind::Goodput {
            flow: self.config.flow_id,
            bytes_per_sec: self.goodput_estimate,
        }));
    }

    fn check_completion(&mut self, ctx: &mut Context) {
        if self.finished {
            return;
        }
        if let Some(total) = self.config.total_datagrams() {
            let done = self
                .cumulative
                .map(|c| c + 1 >= total)
                .unwrap_or(total == 0);
            if done {
                self.finished = true;
                let now = ctx.now();
                let mut stats = self.stats.borrow_mut();
                let start = stats.start_time.unwrap_or(0.0);
                let latency = now.as_secs() - start;
                stats.completion_time = Some(latency);
                let bytes = self.config.message_bytes.unwrap_or(0);
                drop(stats);
                ctx.trace(TraceEvent::new(TraceKind::MessageDelivered {
                    flow: self.config.flow_id,
                    bytes,
                    latency,
                }));
            }
        }
    }
}

impl Application for FlowReceiver {
    fn on_start(&mut self, ctx: &mut Context) {
        self.ack_timer_pending = true;
        ctx.set_timer(SimTime::from_secs(self.config.ack_interval));
    }

    fn on_datagram(&mut self, ctx: &mut Context, dg: Datagram) {
        if dg.payload.kind != KIND_DATA || dg.payload.flow != self.config.flow_id {
            return;
        }
        let seq = dg.payload.seq;
        let already =
            self.cumulative.map(|c| seq <= c).unwrap_or(false) || self.pending.contains(&seq);
        let mut stats = self.stats.borrow_mut();
        if already {
            stats.duplicates += 1;
            drop(stats);
            // A duplicate arriving after completion means the sender missed
            // the final cumulative ACK (it is lost like any datagram) and is
            // retransmitting the tail; the periodic ACK stops once finished,
            // so re-acknowledge here or the sender retries forever.
            if self.finished {
                self.send_ack(ctx);
            }
            return;
        }
        stats.datagrams_received += 1;
        stats.bytes_delivered += dg.payload.size as u64;
        drop(stats);
        self.received_count += 1;
        let now_s = ctx.now().as_secs();
        if self.first_arrival.is_none() {
            self.first_arrival = Some(now_s);
        }
        self.recent_arrivals
            .push_back((now_s, dg.payload.size as u64));
        self.highest_seen = Some(self.highest_seen.map_or(seq, |h| h.max(seq)));
        self.pending.insert(seq);
        self.advance_cumulative();
        self.since_last_ack += 1;
        if self.since_last_ack >= self.config.ack_every {
            self.send_ack(ctx);
        }
        let was_finished = self.finished;
        self.check_completion(ctx);
        if self.finished && !was_finished {
            // Final cumulative ACK so the sender can retire the flow; without
            // it the sender would wait for the next periodic ACK that never
            // comes once the receiver stops.
            self.send_ack(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, _timer_id: u64) {
        // Periodic ACK so the sender keeps getting goodput feedback (and
        // NACKs) even when data arrival stalls.  A tick with no arrivals at
        // all strongly suggests everything in flight has landed or died, so
        // the NACK *range* extends to the end of a finite message — but the
        // per-hole reorder delay still applies, so datagrams merely sitting
        // in a deep queue are not condemned on the first quiet tick.
        if self.received_count > 0 && !self.finished {
            let quiet = self.received_count == self.received_at_last_tick;
            self.send_ack_inner(ctx, quiet);
        }
        self.received_at_last_tick = self.received_count;
        ctx.set_timer(SimTime::from_secs(self.config.ack_interval));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::shared_stats;
    use ricsa_netsim::app::Context;

    fn mk_receiver(message_bytes: Option<usize>) -> (FlowReceiver, SharedFlowStats) {
        let stats = shared_stats();
        let config = FlowConfig {
            mtu: 100,
            ack_every: 4,
            message_bytes,
            ..FlowConfig::default()
        };
        (FlowReceiver::new(config, NodeId(0), stats.clone()), stats)
    }

    fn data(seq: u64, size: usize) -> Datagram {
        Datagram {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: SimTime::ZERO,
            payload: Payload::sized(KIND_DATA, 1, seq, size),
        }
    }

    fn ctx_at(secs: f64) -> Context {
        Context::new(NodeId(1), SimTime::from_secs(secs), 0, vec![0.5])
    }

    #[test]
    fn in_order_delivery_advances_cumulative() {
        let (mut rx, stats) = mk_receiver(None);
        let mut ctx = ctx_at(0.0);
        for seq in 0..3 {
            rx.on_datagram(&mut ctx, data(seq, 100));
        }
        assert_eq!(rx.cumulative, Some(2));
        assert_eq!(stats.borrow().datagrams_received, 3);
        assert_eq!(stats.borrow().bytes_delivered, 300);
    }

    #[test]
    fn out_of_order_datagrams_are_reordered() {
        let (mut rx, _stats) = mk_receiver(None);
        let mut ctx = ctx_at(0.0);
        rx.on_datagram(&mut ctx, data(2, 100));
        rx.on_datagram(&mut ctx, data(0, 100));
        assert_eq!(rx.cumulative, Some(0));
        assert_eq!(rx.missing_below_highest(), vec![1]);
        rx.on_datagram(&mut ctx, data(1, 100));
        assert_eq!(rx.cumulative, Some(2));
        assert!(rx.missing_below_highest().is_empty());
    }

    #[test]
    fn duplicates_are_counted_not_delivered() {
        let (mut rx, stats) = mk_receiver(None);
        let mut ctx = ctx_at(0.0);
        rx.on_datagram(&mut ctx, data(0, 100));
        rx.on_datagram(&mut ctx, data(0, 100));
        assert_eq!(stats.borrow().datagrams_received, 1);
        assert_eq!(stats.borrow().duplicates, 1);
    }

    #[test]
    fn ack_emitted_every_n_datagrams_with_goodput() {
        let (mut rx, stats) = mk_receiver(None);
        let mut ctx = ctx_at(1.0);
        for seq in 0..4 {
            rx.on_datagram(&mut ctx, data(seq, 100));
        }
        // ack_every = 4, so exactly one ACK should have been queued.
        assert_eq!(ctx.outgoing().len(), 1);
        let ack = AckInfo::decode(&ctx.outgoing()[0].payload.data).unwrap();
        assert_eq!(ack.cumulative, 3);
        assert_eq!(ack.received_count, 4);
        assert!(ack.goodput_bps > 0.0);
        assert_eq!(stats.borrow().goodput_samples.len(), 1);
    }

    #[test]
    fn wrong_flow_or_kind_is_ignored() {
        let (mut rx, stats) = mk_receiver(None);
        let mut ctx = ctx_at(0.0);
        let mut other_flow = data(0, 100);
        other_flow.payload.flow = 99;
        rx.on_datagram(&mut ctx, other_flow);
        let mut ack_kind = data(0, 100);
        ack_kind.payload.kind = KIND_ACK;
        rx.on_datagram(&mut ctx, ack_kind);
        assert_eq!(stats.borrow().datagrams_received, 0);
    }

    #[test]
    fn finite_message_completion_is_recorded() {
        let (mut rx, stats) = mk_receiver(Some(250)); // 3 datagrams at mtu=100
        stats.borrow_mut().start_time = Some(1.0);
        let mut ctx = ctx_at(2.5);
        for seq in 0..3 {
            rx.on_datagram(&mut ctx, data(seq, 100));
        }
        assert!(rx.is_finished());
        let completion = stats.borrow().completion_time.unwrap();
        assert!((completion - 1.5).abs() < 1e-9);
    }

    #[test]
    fn nack_list_is_bounded() {
        let (mut rx, _stats) = mk_receiver(None);
        let mut ctx = ctx_at(0.0);
        // Receive only every other datagram over a long range: many gaps.
        for seq in (0..400).step_by(2) {
            rx.on_datagram(&mut ctx, data(seq, 10));
        }
        assert!(rx.missing_below_highest().len() <= MAX_NACKS_PER_ACK);
    }
}
