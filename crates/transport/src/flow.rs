//! Common flow types: configuration, wire format, statistics, and the rate
//! controller abstraction shared by the Robbins–Monro, AIMD and fixed-rate
//! senders.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Datagram kind carrying flow payload bytes.
pub const KIND_DATA: u16 = 0x0101;
/// Datagram kind carrying an acknowledgement.
pub const KIND_ACK: u16 = 0x0102;

/// Static configuration of a transport flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Flow identifier (must be unique per sender/receiver pair).
    pub flow_id: u64,
    /// Datagram payload size in bytes.
    pub mtu: usize,
    /// Number of datagrams sent per burst (the congestion window `Wc`).
    pub window: u32,
    /// Initial sleep time between bursts, seconds (`Ts(0)`).
    pub initial_sleep: f64,
    /// How often the receiver emits an acknowledgement, in received
    /// datagrams.
    pub ack_every: u32,
    /// Receiver-side ACK fallback interval, seconds (an ACK is sent at least
    /// this often while data is outstanding).
    pub ack_interval: f64,
    /// Maximum number of unacknowledged datagrams the sender keeps in flight
    /// before it pauses new transmissions (retransmissions still go out).
    pub max_outstanding: usize,
    /// Reorder tolerance, seconds: a hole must stay missing this long before
    /// the receiver NACKs it (jittered links reorder datagrams, and NACKing
    /// a merely-late datagram triggers a useless retransmission).
    pub nack_delay: f64,
    /// Total number of bytes to transfer; `None` means an unbounded
    /// monitoring stream (used by the stabilization experiments).
    pub message_bytes: Option<usize>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            flow_id: 1,
            mtu: 1358, // 1400-byte wire MTU minus header overhead
            window: 16,
            initial_sleep: 0.01,
            ack_every: 8,
            ack_interval: 0.05,
            max_outstanding: 4096,
            nack_delay: 0.01,
            message_bytes: None,
        }
    }
}

impl FlowConfig {
    /// Total number of data datagrams needed for a finite message, if any.
    pub fn total_datagrams(&self) -> Option<u64> {
        self.message_bytes
            .map(|bytes| (bytes as u64).div_ceil(self.mtu as u64).max(1))
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.mtu == 0 {
            return Err("mtu must be positive".into());
        }
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.initial_sleep <= 0.0 || !self.initial_sleep.is_finite() {
            return Err("initial sleep must be positive".into());
        }
        if self.ack_every == 0 {
            return Err("ack_every must be positive".into());
        }
        if self.max_outstanding == 0 {
            return Err("max_outstanding must be positive".into());
        }
        if !self.nack_delay.is_finite() || self.nack_delay < 0.0 {
            return Err("nack delay must be non-negative".into());
        }
        Ok(())
    }
}

/// A rate controller decides the sleep time and window of the sender.
///
/// The controller sees goodput observations (carried back in ACKs) and loss
/// indications, and produces the pacing parameters for the next burst.
pub trait RateController {
    /// Record a goodput observation (bytes per second) made at time `now`
    /// (seconds of virtual time).
    fn on_goodput(&mut self, goodput_bps: f64, now: f64);

    /// Record a loss indication (NACK or retransmission timeout).
    fn on_loss(&mut self, _now: f64) {}

    /// Current sleep time between bursts, seconds.
    fn sleep_time(&self) -> f64;

    /// Current congestion window (datagrams per burst).
    fn window(&self) -> u32;

    /// Short human-readable name used in traces and experiment reports.
    fn name(&self) -> &'static str;
}

/// The acknowledgement structure exchanged on the reverse channel.
///
/// It carries cumulative progress, explicit selective-acknowledgement
/// ranges (TCP-SACK style), a bounded list of missing sequence numbers
/// (negative acknowledgements) and the receiver's goodput estimate.  The
/// NACK list is deliberately partial — reorder-delayed, throttled, bounded
/// — so receipt must never be inferred from absence in it; only the
/// cumulative point and the SACK ranges confirm delivery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AckInfo {
    /// Highest sequence number such that all datagrams `<= seq` have been
    /// received (`u64::MAX` if nothing in-order has arrived yet).
    pub cumulative: u64,
    /// Highest sequence number seen so far.
    pub highest_seen: u64,
    /// Missing sequence numbers in `(cumulative, highest_seen)`, truncated.
    pub missing: Vec<u64>,
    /// Inclusive ranges of received sequence numbers above the cumulative
    /// point, truncated to [`MAX_SACK_RANGES_PER_ACK`].
    pub sack: Vec<(u64, u64)>,
    /// Receiver goodput estimate in bytes per second.
    pub goodput_bps: f64,
    /// Total distinct datagrams received so far.
    pub received_count: u64,
}

/// Sentinel for "no in-order data yet".
pub const NO_CUMULATIVE: u64 = u64::MAX;

/// Maximum number of NACKed sequence numbers carried per ACK.
pub const MAX_NACKS_PER_ACK: usize = 64;

/// Maximum number of SACK ranges carried per ACK.
pub const MAX_SACK_RANGES_PER_ACK: usize = 32;

impl AckInfo {
    /// Encode into a compact little-endian byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (5 + self.missing.len() + 2 * self.sack.len()));
        out.extend_from_slice(&self.cumulative.to_le_bytes());
        out.extend_from_slice(&self.highest_seen.to_le_bytes());
        out.extend_from_slice(&self.goodput_bps.to_le_bytes());
        out.extend_from_slice(&self.received_count.to_le_bytes());
        out.extend_from_slice(&(self.missing.len() as u64).to_le_bytes());
        for m in &self.missing {
            out.extend_from_slice(&m.to_le_bytes());
        }
        out.extend_from_slice(&(self.sack.len() as u64).to_le_bytes());
        for (lo, hi) in &self.sack {
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        out
    }

    /// Decode from the representation produced by [`AckInfo::encode`].
    pub fn decode(data: &[u8]) -> Option<AckInfo> {
        if data.len() < 40 {
            return None;
        }
        let read_u64 = |i: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i..i + 8]);
            u64::from_le_bytes(b)
        };
        let read_f64 = |i: usize| -> f64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i..i + 8]);
            f64::from_le_bytes(b)
        };
        let cumulative = read_u64(0);
        let highest_seen = read_u64(8);
        let goodput_bps = read_f64(16);
        let received_count = read_u64(24);
        let n_missing = read_u64(32) as usize;
        if n_missing > MAX_NACKS_PER_ACK || data.len() < 48 + 8 * n_missing {
            return None;
        }
        let missing = (0..n_missing).map(|k| read_u64(40 + 8 * k)).collect();
        let sack_at = 40 + 8 * n_missing;
        let n_sack = read_u64(sack_at) as usize;
        if n_sack > MAX_SACK_RANGES_PER_ACK || data.len() < sack_at + 8 + 16 * n_sack {
            return None;
        }
        let sack = (0..n_sack)
            .map(|k| {
                (
                    read_u64(sack_at + 8 + 16 * k),
                    read_u64(sack_at + 16 + 16 * k),
                )
            })
            .collect();
        Some(AckInfo {
            cumulative,
            highest_seen,
            missing,
            sack,
            goodput_bps,
            received_count,
        })
    }
}

/// Statistics of one flow, shared between the sender/receiver applications
/// and the experiment harness.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Goodput samples observed by the receiver: `(time_secs, bytes_per_sec)`.
    pub goodput_samples: Vec<(f64, f64)>,
    /// Sleep-time samples at the sender: `(time_secs, sleep_secs)`.
    pub sleep_samples: Vec<(f64, f64)>,
    /// Data datagrams transmitted (including retransmissions).
    pub datagrams_sent: u64,
    /// Retransmitted datagrams.
    pub retransmissions: u64,
    /// Distinct datagrams received.
    pub datagrams_received: u64,
    /// Duplicate datagrams received (ignored for goodput).
    pub duplicates: u64,
    /// In-order bytes delivered to the application sink.
    pub bytes_delivered: u64,
    /// Completion time of the finite message, if one was configured and it
    /// finished: seconds from flow start.
    pub completion_time: Option<f64>,
    /// Time the first datagram was sent.
    pub start_time: Option<f64>,
}

impl FlowStats {
    /// Mean goodput over all receiver samples, bytes/second.
    pub fn mean_goodput(&self) -> f64 {
        if self.goodput_samples.is_empty() {
            return 0.0;
        }
        self.goodput_samples.iter().map(|(_, g)| g).sum::<f64>() / self.goodput_samples.len() as f64
    }

    /// Mean goodput restricted to samples at or after `from_secs`.
    pub fn mean_goodput_after(&self, from_secs: f64) -> f64 {
        let tail: Vec<f64> = self
            .goodput_samples
            .iter()
            .filter(|(t, _)| *t >= from_secs)
            .map(|(_, g)| *g)
            .collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Standard deviation of goodput samples at or after `from_secs`.
    pub fn goodput_std_after(&self, from_secs: f64) -> f64 {
        let tail: Vec<f64> = self
            .goodput_samples
            .iter()
            .filter(|(t, _)| *t >= from_secs)
            .map(|(_, g)| *g)
            .collect();
        if tail.len() < 2 {
            return 0.0;
        }
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        (tail.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / tail.len() as f64).sqrt()
    }

    /// Fraction of transmitted datagrams that were retransmissions.
    pub fn retransmission_rate(&self) -> f64 {
        if self.datagrams_sent == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.datagrams_sent as f64
        }
    }
}

/// Shared handle to the statistics of a flow.
pub type SharedFlowStats = Rc<RefCell<FlowStats>>;

/// Create a fresh shared statistics handle.
pub fn shared_stats() -> SharedFlowStats {
    Rc::new(RefCell::new(FlowStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_validate() {
        let c = FlowConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_datagrams(), None);
        let finite = FlowConfig {
            message_bytes: Some(10_000),
            mtu: 1000,
            ..FlowConfig::default()
        };
        assert_eq!(finite.total_datagrams(), Some(10));
        let tiny = FlowConfig {
            message_bytes: Some(1),
            mtu: 1000,
            ..FlowConfig::default()
        };
        assert_eq!(tiny.total_datagrams(), Some(1));
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        let bad = |f: fn(&mut FlowConfig)| {
            let mut c = FlowConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.mtu = 0));
        assert!(bad(|c| c.window = 0));
        assert!(bad(|c| c.initial_sleep = 0.0));
        assert!(bad(|c| c.initial_sleep = f64::NAN));
        assert!(bad(|c| c.ack_every = 0));
        assert!(bad(|c| c.max_outstanding = 0));
    }

    #[test]
    fn ack_round_trip() {
        let ack = AckInfo {
            cumulative: 41,
            highest_seen: 64,
            missing: vec![42, 50, 63],
            sack: vec![(43, 49), (51, 62)],
            goodput_bps: 123456.78,
            received_count: 61,
        };
        let bytes = ack.encode();
        let decoded = AckInfo::decode(&bytes).unwrap();
        assert_eq!(decoded, ack);
    }

    #[test]
    fn ack_decode_rejects_garbage() {
        assert!(AckInfo::decode(&[]).is_none());
        assert!(AckInfo::decode(&[0u8; 39]).is_none());
        // Claiming more missing entries than bytes present.
        let mut bytes = AckInfo {
            cumulative: 0,
            highest_seen: 0,
            missing: vec![],
            sack: vec![],
            goodput_bps: 0.0,
            received_count: 0,
        }
        .encode();
        bytes[32] = 200; // missing count = 200 but no entries follow
        assert!(AckInfo::decode(&bytes).is_none());
    }

    #[test]
    fn stats_summaries() {
        let mut s = FlowStats::default();
        assert_eq!(s.mean_goodput(), 0.0);
        s.goodput_samples = vec![(0.0, 100.0), (1.0, 200.0), (2.0, 300.0)];
        assert!((s.mean_goodput() - 200.0).abs() < 1e-12);
        assert!((s.mean_goodput_after(1.0) - 250.0).abs() < 1e-12);
        assert_eq!(s.mean_goodput_after(5.0), 0.0);
        assert!(s.goodput_std_after(0.0) > 0.0);
        assert_eq!(s.goodput_std_after(2.0), 0.0);
        s.datagrams_sent = 100;
        s.retransmissions = 10;
        assert!((s.retransmission_rate() - 0.1).abs() < 1e-12);
    }
}
