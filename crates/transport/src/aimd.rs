//! An AIMD (TCP-like) window controller used as a baseline.
//!
//! The paper motivates the Robbins–Monro transport by noting that default
//! TCP dynamics are ill-suited for steering control channels: additive
//! increase / multiplicative decrease produces the familiar sawtooth, i.e.
//! high goodput jitter, and reacts to every loss event.  This controller
//! reproduces that behaviour within the same window/sleep sender structure so
//! the stabilization benefit can be measured (supplementary experiment for
//! Section 3).

use crate::flow::RateController;
use serde::{Deserialize, Serialize};

/// Parameters of the AIMD baseline controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AimdParams {
    /// Fixed sleep time between bursts, seconds.
    pub sleep: f64,
    /// Initial window, datagrams per burst.
    pub initial_window: u32,
    /// Additive increase per goodput report without loss, datagrams.
    pub increase: u32,
    /// Multiplicative decrease factor applied on loss (0 < factor < 1).
    pub decrease_factor: f64,
    /// Upper bound on the window.
    pub max_window: u32,
    /// Loss reports within this interval of a decrease are treated as the
    /// same loss event (TCP halves once per round trip, not once per
    /// duplicate ACK; without grouping, one queue-overflow burst collapses
    /// the window to 1).
    pub loss_event_interval: f64,
}

impl Default for AimdParams {
    fn default() -> Self {
        AimdParams {
            sleep: 0.01,
            initial_window: 4,
            increase: 1,
            decrease_factor: 0.5,
            max_window: 1024,
            loss_event_interval: 0.1,
        }
    }
}

/// The AIMD controller.
#[derive(Debug, Clone)]
pub struct AimdController {
    params: AimdParams,
    window: f64,
    losses: u64,
    updates: u64,
    /// Time of the last multiplicative decrease, for loss-event grouping.
    last_decrease: f64,
}

impl AimdController {
    /// Create a controller from parameters.
    pub fn new(params: AimdParams) -> Self {
        let window = params.initial_window.max(1) as f64;
        AimdController {
            params,
            window,
            losses: 0,
            updates: 0,
            last_decrease: f64::NEG_INFINITY,
        }
    }

    /// Loss events observed so far.
    pub fn losses(&self) -> u64 {
        self.losses
    }

    /// Goodput updates observed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

impl Default for AimdController {
    fn default() -> Self {
        AimdController::new(AimdParams::default())
    }
}

impl RateController for AimdController {
    fn on_goodput(&mut self, _goodput_bps: f64, _now: f64) {
        self.updates += 1;
        self.window =
            (self.window + self.params.increase as f64).min(self.params.max_window as f64);
    }

    fn on_loss(&mut self, now: f64) {
        self.losses += 1;
        if now - self.last_decrease >= self.params.loss_event_interval {
            self.window = (self.window * self.params.decrease_factor).max(1.0);
            self.last_decrease = now;
        }
    }

    fn sleep_time(&self) -> f64 {
        self.params.sleep
    }

    fn window(&self) -> u32 {
        self.window.round().max(1.0) as u32
    }

    fn name(&self) -> &'static str {
        "aimd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_increase() {
        let mut c = AimdController::default();
        let w0 = c.window();
        for _ in 0..10 {
            c.on_goodput(1e6, 0.0);
        }
        assert_eq!(c.window(), w0 + 10);
        assert_eq!(c.updates(), 10);
    }

    #[test]
    fn multiplicative_decrease() {
        let mut c = AimdController::new(AimdParams {
            initial_window: 64,
            ..AimdParams::default()
        });
        c.on_loss(0.0);
        assert_eq!(c.window(), 32);
        // A second report inside the same loss event is absorbed...
        c.on_loss(0.05);
        assert_eq!(c.window(), 32);
        // ...but a later event halves again.
        c.on_loss(0.5);
        assert_eq!(c.window(), 16);
        assert_eq!(c.losses(), 3);
    }

    #[test]
    fn window_bounds() {
        let mut c = AimdController::new(AimdParams {
            initial_window: 2,
            max_window: 8,
            ..AimdParams::default()
        });
        for _ in 0..100 {
            c.on_goodput(1.0, 0.0);
        }
        assert_eq!(c.window(), 8);
        for i in 0..20 {
            // Space the reports out so each is a distinct loss event.
            c.on_loss(i as f64);
        }
        assert_eq!(c.window(), 1);
    }

    #[test]
    fn sawtooth_has_higher_variability_than_steady_state() {
        // Alternate growth and loss: the resulting window sequence should
        // oscillate (coefficient of variation clearly above zero).
        let mut c = AimdController::new(AimdParams {
            initial_window: 16,
            ..AimdParams::default()
        });
        let mut windows = Vec::new();
        for i in 0..200 {
            if i % 20 == 19 {
                c.on_loss(i as f64);
            } else {
                c.on_goodput(1e6, i as f64);
            }
            windows.push(c.window() as f64);
        }
        let mean = windows.iter().sum::<f64>() / windows.len() as f64;
        let std =
            (windows.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / windows.len() as f64).sqrt();
        assert!(std / mean > 0.15, "cv {}", std / mean);
    }

    #[test]
    fn identity() {
        let c = AimdController::default();
        assert_eq!(c.name(), "aimd");
        assert!(c.sleep_time() > 0.0);
    }
}
