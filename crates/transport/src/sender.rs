//! The window-based sender (left-hand side of the paper's Fig. 2).
//!
//! The sender transmits a full congestion window of `Wc` datagrams, then
//! idles for the controller's sleep time `Ts`, repeating until the message
//! (if finite) is fully acknowledged.  Arriving ACKs update the cumulative /
//! selective acknowledgement state, trigger retransmission of NACKed
//! datagrams, and feed the goodput observation to the rate controller
//! (Robbins–Monro, AIMD or fixed-rate).

use crate::flow::{
    AckInfo, FlowConfig, RateController, SharedFlowStats, KIND_ACK, KIND_DATA, NO_CUMULATIVE,
};
use crate::telemetry::{FlowTelemetry, TelemetryCollector};
use ricsa_netsim::app::{Application, Context};
use ricsa_netsim::node::NodeId;
use ricsa_netsim::packet::{Datagram, Payload};
use ricsa_netsim::time::SimTime;
use std::collections::BTreeSet;

/// Sender half of a transport flow.
pub struct WindowSender<C: RateController> {
    config: FlowConfig,
    receiver: NodeId,
    controller: C,
    stats: SharedFlowStats,
    /// Next never-before-sent sequence number.
    next_new_seq: u64,
    /// Sequence numbers confirmed received (cumulative point).
    cumulative_acked: Option<u64>,
    /// Sequence numbers above the cumulative point the receiver explicitly
    /// confirmed via SACK ranges.
    sacked: BTreeSet<u64>,
    /// Datagrams the receiver reported missing, pending retransmission.
    nacked: BTreeSet<u64>,
    /// Datagrams sent but not yet acknowledged.
    outstanding: BTreeSet<u64>,
    finished: bool,
    /// Whether the periodic burst timer is running.
    burst_timer_armed: bool,
    /// Whether the most recent burst managed to send anything; used to back
    /// off the burst timer while the flow is blocked on acknowledgements.
    last_burst_progressed: bool,
    /// Virtual time of the last acknowledgement progress, for the
    /// retransmission timeout of last resort.
    last_ack_progress: f64,
    /// Highest receiver-reported distinct-datagram count, the progress
    /// signal that holds the retransmission timeout back while data is
    /// still landing.
    last_received_count: u64,
    /// Passive per-flow telemetry (EWMA goodput/RTT, loss events) for the
    /// adaptive re-mapping monitor; costs no extra traffic.
    telemetry: TelemetryCollector,
}

impl<C: RateController> WindowSender<C> {
    /// Create a sender for `config` toward `receiver`, paced by `controller`.
    ///
    /// # Panics
    /// Panics if the flow configuration is invalid.
    pub fn new(
        config: FlowConfig,
        receiver: NodeId,
        controller: C,
        stats: SharedFlowStats,
    ) -> Self {
        config.validate().expect("invalid flow configuration");
        let telemetry = TelemetryCollector::new(config.flow_id);
        WindowSender {
            config,
            receiver,
            controller,
            stats,
            next_new_seq: 0,
            cumulative_acked: None,
            sacked: BTreeSet::new(),
            nacked: BTreeSet::new(),
            outstanding: BTreeSet::new(),
            finished: false,
            burst_timer_armed: false,
            last_burst_progressed: true,
            last_ack_progress: 0.0,
            last_received_count: 0,
            telemetry,
        }
    }

    /// Whether every datagram of a finite message has been acknowledged.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Access the rate controller (e.g. to inspect its converged state).
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// The passive telemetry accumulated by this flow (see
    /// [`crate::telemetry`]).
    pub fn telemetry(&self) -> &FlowTelemetry {
        self.telemetry.telemetry()
    }

    fn total_datagrams(&self) -> Option<u64> {
        self.config.total_datagrams()
    }

    fn is_acked(&self, seq: u64) -> bool {
        // Only the cumulative point and explicit SACK ranges confirm
        // receipt.  The receiver's NACK lists are deliberately partial
        // (reorder-delayed, throttled, bounded), so "below highest and not
        // NACKed" must NOT be treated as received — inferring selective
        // acknowledgements from absence permanently loses real holes.
        self.cumulative_acked.map(|c| seq <= c).unwrap_or(false) || self.sacked.contains(&seq)
    }

    fn datagram_size(&self, seq: u64) -> usize {
        match (self.config.message_bytes, self.total_datagrams()) {
            (Some(bytes), Some(total)) if seq + 1 == total => {
                let rem = bytes % self.config.mtu;
                if rem == 0 {
                    self.config.mtu
                } else {
                    rem
                }
            }
            _ => self.config.mtu,
        }
    }

    fn send_seq(&mut self, ctx: &mut Context, seq: u64, retransmission: bool) {
        let size = self.datagram_size(seq);
        self.telemetry
            .note_sent(seq, ctx.now().as_secs(), retransmission);
        ctx.send(
            self.receiver,
            Payload::sized(KIND_DATA, self.config.flow_id, seq, size),
        );
        self.outstanding.insert(seq);
        let mut stats = self.stats.borrow_mut();
        stats.datagrams_sent += 1;
        if retransmission {
            stats.retransmissions += 1;
        }
        if stats.start_time.is_none() {
            stats.start_time = Some(ctx.now().as_secs());
        }
    }

    fn send_burst(&mut self, ctx: &mut Context) {
        if self.finished {
            return;
        }
        // Retransmission timeout of last resort: if the receiver has made no
        // progress of any kind for a while and no NACKs are pending, the
        // feedback channel itself has gone silent (every ACK lost, or the
        // whole in-flight window died).  Re-queue one window's worth of the
        // oldest outstanding datagrams.  Only finite messages time out;
        // monitoring streams rely on NACKs alone.
        let now = ctx.now().as_secs();
        let finite = self.total_datagrams().is_some();
        let rto = (self.config.ack_interval * 4.0).max(0.2);
        if finite
            && self.nacked.is_empty()
            && !self.outstanding.is_empty()
            && now - self.last_ack_progress > rto
        {
            let window = self.controller.window().max(1) as usize;
            self.nacked
                .extend(self.outstanding.iter().copied().take(window));
            self.last_ack_progress = now;
        }
        let window = self.controller.window().max(1) as usize;
        let mut sent = 0usize;

        // Retransmissions take priority over new data.
        let retrans: Vec<u64> = self.nacked.iter().copied().take(window).collect();
        for seq in retrans {
            self.nacked.remove(&seq);
            if self.is_acked(seq) {
                continue;
            }
            self.send_seq(ctx, seq, true);
            sent += 1;
            if sent >= window {
                break;
            }
        }

        // New datagrams, subject to the outstanding cap and message bound.
        while sent < window {
            if self.outstanding.len() >= self.config.max_outstanding {
                break;
            }
            if let Some(total) = self.total_datagrams() {
                if self.next_new_seq >= total {
                    break;
                }
            }
            let seq = self.next_new_seq;
            self.next_new_seq += 1;
            self.send_seq(ctx, seq, false);
            sent += 1;
        }

        self.last_burst_progressed = sent > 0;
        // Record the controller state for the experiment harness (only on
        // productive bursts, and bounded so week-long runs stay cheap).
        if sent > 0 {
            let now = ctx.now().as_secs();
            let mut stats = self.stats.borrow_mut();
            if stats.sleep_samples.len() < 100_000 {
                stats
                    .sleep_samples
                    .push((now, self.controller.sleep_time()));
            }
        }
    }

    fn arm_burst_timer(&mut self, ctx: &mut Context) {
        self.burst_timer_armed = true;
        // While the flow is blocked on acknowledgements (nothing could be
        // sent), waking up at the raw sleep interval would just spin; back
        // off to a fraction of the ACK interval instead.
        let mut delay = self.controller.sleep_time().max(1e-6);
        if !self.last_burst_progressed {
            delay = delay.max(self.config.ack_interval * 0.5).max(1e-3);
        }
        ctx.set_timer(SimTime::from_secs(delay));
    }

    fn handle_ack(&mut self, ctx: &mut Context, ack: AckInfo) {
        let now = ctx.now().as_secs();
        let outstanding_before = self.outstanding.len();
        // Cumulative acknowledgement.
        if ack.cumulative != NO_CUMULATIVE {
            let newly_cumulative = ack.cumulative;
            self.cumulative_acked = Some(
                self.cumulative_acked
                    .map_or(newly_cumulative, |c| c.max(newly_cumulative)),
            );
            let acked: Vec<u64> = self
                .outstanding
                .iter()
                .copied()
                .take_while(|s| *s <= newly_cumulative)
                .collect();
            for seq in acked {
                self.outstanding.remove(&seq);
            }
            self.sacked.retain(|s| *s > newly_cumulative);
        }
        // Explicit selective acknowledgements: the receiver vouches for
        // these exact ranges, so the sender may retire them.
        for &(lo, hi) in &ack.sack {
            let in_range: Vec<u64> = self.outstanding.range(lo..=hi).copied().collect();
            for seq in in_range {
                self.outstanding.remove(&seq);
                self.sacked.insert(seq);
            }
        }
        // Later feedback supersedes stale NACK state: anything now covered
        // by the cumulative point or a SACK range must not be retransmitted.
        let cum = self.cumulative_acked;
        let sacked = &self.sacked;
        self.nacked
            .retain(|s| !(cum.map(|c| *s <= c).unwrap_or(false) || sacked.contains(s)));
        // NACK-driven retransmission + loss signal to the controller.  Only
        // NACKs that survive the filters count as losses: entries for
        // never-sent sequences (a quiet receiver NACKs up to the full
        // message length) or already-confirmed data must not shrink the
        // window, and a hole already queued for retransmission is one loss
        // event, not one per repeated report.
        let mut fresh_losses = 0u32;
        for &seq in &ack.missing {
            if seq < self.next_new_seq && !self.is_acked(seq) && self.nacked.insert(seq) {
                fresh_losses += 1;
            }
        }
        if fresh_losses > 0 {
            self.controller.on_loss(now);
            self.telemetry.on_loss(fresh_losses as u64, now);
        }
        // Goodput observation drives the Robbins-Monro / AIMD update.
        if ack.goodput_bps > 0.0 {
            self.controller.on_goodput(ack.goodput_bps, now);
            self.telemetry.on_goodput(ack.goodput_bps, now);
        }
        // Resolve the passive RTT probe against the updated ACK state
        // (cumulative point + SACK only, mirroring `is_acked`).
        {
            let cum = self.cumulative_acked;
            let sacked = &self.sacked;
            self.telemetry.note_acked(now, |s| {
                cum.map(|c| s <= c).unwrap_or(false) || sacked.contains(&s)
            });
        }
        // Progress = the receiver confirmed something new: the cumulative
        // point advanced (outstanding shrank) or its distinct-datagram count
        // grew.  Either resets the retransmission timeout.
        if self.outstanding.len() < outstanding_before
            || ack.received_count > self.last_received_count
        {
            self.last_ack_progress = now;
        }
        self.last_received_count = self.last_received_count.max(ack.received_count);
        // Completion check for finite messages: the cumulative point covers
        // the whole message exactly when every datagram arrived.
        if let Some(total) = self.total_datagrams() {
            if self
                .cumulative_acked
                .map(|c| c + 1 >= total)
                .unwrap_or(false)
            {
                self.finished = true;
            }
        }
    }
}

impl<C: RateController> Application for WindowSender<C> {
    fn on_start(&mut self, ctx: &mut Context) {
        self.send_burst(ctx);
        self.arm_burst_timer(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context, _timer_id: u64) {
        if self.finished {
            self.burst_timer_armed = false;
            return;
        }
        self.send_burst(ctx);
        self.arm_burst_timer(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Context, dg: Datagram) {
        if dg.payload.kind != KIND_ACK || dg.payload.flow != self.config.flow_id {
            return;
        }
        if let Some(ack) = AckInfo::decode(&dg.payload.data) {
            self.handle_ack(ctx, ack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedController;
    use crate::flow::shared_stats;

    fn mk_sender(
        message_bytes: Option<usize>,
        window: u32,
    ) -> (WindowSender<FixedController>, SharedFlowStats) {
        let stats = shared_stats();
        let config = FlowConfig {
            mtu: 100,
            window,
            message_bytes,
            max_outstanding: 1000,
            ..FlowConfig::default()
        };
        let sender = WindowSender::new(
            config,
            NodeId(1),
            FixedController::new(0.01, window),
            stats.clone(),
        );
        (sender, stats)
    }

    fn ctx_at(secs: f64) -> Context {
        Context::new(NodeId(0), SimTime::from_secs(secs), 0, vec![0.5])
    }

    fn ack_payload(ack: &AckInfo) -> Datagram {
        Datagram {
            src: NodeId(1),
            dst: NodeId(0),
            sent_at: SimTime::ZERO,
            payload: Payload::with_data(KIND_ACK, 1, 0, ack.encode()),
        }
    }

    #[test]
    fn first_burst_sends_window_datagrams() {
        let (mut tx, stats) = mk_sender(None, 8);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx);
        let data_sends = ctx
            .outgoing()
            .iter()
            .filter(|s| s.payload.kind == KIND_DATA)
            .count();
        assert_eq!(data_sends, 8);
        assert_eq!(stats.borrow().datagrams_sent, 8);
        assert_eq!(ctx.scheduled_timers().len(), 1);
    }

    #[test]
    fn finite_message_sends_exact_datagram_count_and_sizes() {
        let (mut tx, _stats) = mk_sender(Some(250), 16);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx);
        let sizes: Vec<usize> = ctx
            .outgoing()
            .iter()
            .filter(|s| s.payload.kind == KIND_DATA)
            .map(|s| s.payload.size)
            .collect();
        assert_eq!(sizes, vec![100, 100, 50]);
    }

    #[test]
    fn cumulative_ack_clears_outstanding_and_finishes() {
        let (mut tx, _stats) = mk_sender(Some(300), 16);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx);
        assert!(!tx.is_finished());
        let ack = AckInfo {
            cumulative: 2,
            highest_seen: 2,
            missing: vec![],
            sack: vec![],
            goodput_bps: 1e5,
            received_count: 3,
        };
        tx.on_datagram(&mut ctx, ack_payload(&ack));
        assert!(tx.is_finished());
        assert!(tx.outstanding.is_empty());
    }

    #[test]
    fn nacks_trigger_retransmission_before_new_data() {
        let (mut tx, stats) = mk_sender(None, 4);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx); // seqs 0..4 sent
        let ack = AckInfo {
            cumulative: 0,
            highest_seen: 3,
            missing: vec![1, 2],
            sack: vec![],
            goodput_bps: 1e5,
            received_count: 2,
        };
        tx.on_datagram(&mut ctx, ack_payload(&ack));
        let mut ctx2 = ctx_at(0.01);
        tx.on_timer(&mut ctx2, 0);
        let sent_seqs: Vec<u64> = ctx2
            .outgoing()
            .iter()
            .filter(|s| s.payload.kind == KIND_DATA)
            .map(|s| s.payload.seq)
            .collect();
        assert!(sent_seqs.starts_with(&[1, 2]), "got {sent_seqs:?}");
        assert_eq!(stats.borrow().retransmissions, 2);
    }

    #[test]
    fn sack_prevents_redundant_retransmission() {
        let (mut tx, _stats) = mk_sender(None, 4);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx); // 0..4 outstanding
        let ack = AckInfo {
            cumulative: NO_CUMULATIVE,
            highest_seen: 3,
            missing: vec![0],
            sack: vec![(1, 3)],
            goodput_bps: 0.0,
            received_count: 3,
        };
        tx.on_datagram(&mut ctx, ack_payload(&ack));
        // 1,2,3 are explicitly sacked; only 0 should be pending
        // retransmission.
        assert_eq!(tx.nacked.iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(tx.outstanding.iter().copied().collect::<Vec<_>>(), vec![0]);
        // A NACK without SACK coverage leaves unconfirmed datagrams alone.
        let ack2 = AckInfo {
            cumulative: NO_CUMULATIVE,
            highest_seen: 3,
            missing: vec![0],
            sack: vec![],
            goodput_bps: 0.0,
            received_count: 3,
        };
        tx.on_datagram(&mut ctx, ack_payload(&ack2));
        assert_eq!(tx.outstanding.iter().copied().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn outstanding_cap_limits_new_data() {
        let stats = shared_stats();
        let config = FlowConfig {
            mtu: 100,
            window: 16,
            max_outstanding: 10,
            ..FlowConfig::default()
        };
        let mut tx = WindowSender::new(config, NodeId(1), FixedController::new(0.01, 16), stats);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx);
        assert_eq!(ctx.outgoing().len(), 10);
    }

    #[test]
    fn timer_after_finish_stops_sending() {
        let (mut tx, _stats) = mk_sender(Some(100), 4);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx);
        let ack = AckInfo {
            cumulative: 0,
            highest_seen: 0,
            missing: vec![],
            sack: vec![],
            goodput_bps: 1e5,
            received_count: 1,
        };
        tx.on_datagram(&mut ctx, ack_payload(&ack));
        assert!(tx.is_finished());
        let mut ctx2 = ctx_at(1.0);
        tx.on_timer(&mut ctx2, 0);
        assert!(ctx2.outgoing().is_empty());
        assert!(ctx2.scheduled_timers().is_empty());
    }

    #[test]
    fn telemetry_accumulates_from_ack_signals_alone() {
        let (mut tx, _stats) = mk_sender(None, 4);
        let mut ctx = ctx_at(0.0);
        tx.on_start(&mut ctx); // sends 0..4; probe = seq 0 at t=0
        assert!(!tx.telemetry().has_signal());
        let ack = AckInfo {
            cumulative: 1,
            highest_seen: 3,
            missing: vec![2],
            sack: vec![],
            goodput_bps: 5e5,
            received_count: 3,
        };
        let mut ctx2 = ctx_at(0.04);
        tx.on_datagram(&mut ctx2, ack_payload(&ack));
        let t = tx.telemetry();
        assert!((t.goodput_bps - 5e5).abs() < 1e-6);
        assert_eq!(t.goodput_samples, 1);
        assert_eq!(t.loss_events, 1, "one fresh NACK group");
        assert!((t.rtt_s - 0.04).abs() < 1e-9, "probe 0 resolved by cum=1");
        assert_eq!(t.rtt_samples, 1);
        // Retransmitting the new probe (seq 2, queued by the NACK) after it
        // becomes the probe must not corrupt RTT (Karn's rule) — exercised
        // through a real retransmission burst.
        let mut ctx3 = ctx_at(0.05);
        tx.on_timer(&mut ctx3, 0); // retransmits 2 (fresh probe candidates skipped)
        assert_eq!(tx.telemetry().rtt_samples, 1);
    }

    #[test]
    #[should_panic(expected = "invalid flow configuration")]
    fn invalid_config_panics() {
        let stats = shared_stats();
        let config = FlowConfig {
            mtu: 0,
            ..FlowConfig::default()
        };
        let _ = WindowSender::new(config, NodeId(1), FixedController::new(0.01, 4), stats);
    }
}
