//! Criterion benches for the Ajax serving layer.
//!
//! `encode_cache` is the headline: serving N pollers from the hub's
//! encode-once cache costs N lookups (+ Arc clones) regardless of frame
//! size, while the per-client-encode alternative pays the full base64/JSON
//! encode N times.  The cached column must stay essentially flat as the
//! frame grows and must scale only linearly (lookup-sized steps) in the
//! poller count — encode work is independent of the number of pollers.
//! `delta` prices the publish-side tile diff and the client-side patch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ricsa_bench::{
    serve_pollers_cached, serve_pollers_encoding, synth_web_frame, ENCODE_CACHE_POLLERS,
};
use ricsa_viz::image::Image;
use ricsa_webfront::hub::{apply_delta, diff_images, SessionHub, DELTA_TILE};

fn bench_encode_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_cache");
    group.sample_size(10);
    for &pollers in ENCODE_CACHE_POLLERS {
        let hub = SessionHub::new(4);
        hub.publish(synth_web_frame(1, 128, 128));
        group.bench_with_input(
            BenchmarkId::new("cached", pollers),
            &pollers,
            |b, &pollers| b.iter(|| serve_pollers_cached(&hub, pollers)),
        );
        let mut frame = synth_web_frame(1, 128, 128);
        frame.sequence = 1;
        group.bench_with_input(
            BenchmarkId::new("per_client", pollers),
            &pollers,
            |b, &pollers| b.iter(|| serve_pollers_encoding(&frame, pollers)),
        );
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta");
    group.sample_size(10);
    let prev = Image::decode_raw(&synth_web_frame(1, 256, 256).image).unwrap();
    let cur = Image::decode_raw(&synth_web_frame(2, 256, 256).image).unwrap();
    group.bench_function("diff_256", |b| {
        b.iter(|| black_box(diff_images(&prev, &cur, DELTA_TILE)))
    });
    let delta = diff_images(&prev, &cur, DELTA_TILE).unwrap();
    group.bench_function("apply_256", |b| {
        b.iter(|| black_box(apply_delta(&prev, &delta)))
    });
    // The whole publish path: encode full + diff + encode delta, once.
    let hub = SessionHub::new(8);
    hub.publish(synth_web_frame(1, 256, 256));
    let mut step = 2u64;
    group.bench_function("publish_256", |b| {
        b.iter(|| {
            step += 1;
            black_box(hub.publish(synth_web_frame(step, 256, 256)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode_cache, bench_delta);
criterion_main!(benches);
