//! Criterion benches for the scenario-sweep subsystem: DP scaling (pruned
//! vs unpruned, relay semantics) on generated Waxman WANs, topology
//! generation itself, and parallel batch solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricsa_netsim::generators::{transit_stub, waxman, TransitStubParams, WaxmanParams};
use ricsa_pipemap::dp::{optimize_with, DpOptions};
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::Pipeline;
use ricsa_pipemap::sweep::{solve_batch, Scenario};

fn pipeline() -> Pipeline {
    Pipeline::isosurface(16e6, 2e-9, 2.5e-8, 0.35, 6e-9, 1e6)
}

fn bench_dp_on_generated_wans(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_generated");
    group.sample_size(10);
    for &nodes in &[50usize, 150, 400] {
        let wan = waxman(&WaxmanParams::sized(nodes), 7);
        let graph = NetGraph::from_topology(&wan.topology);
        let p = pipeline();
        let (src, dst) = (wan.source.0, wan.client.0);
        group.bench_with_input(
            BenchmarkId::new("pruned", nodes),
            &(&p, &graph),
            |b, (p, g)| {
                b.iter(|| optimize_with(p, g, src, dst, &DpOptions::relayed()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unpruned", nodes),
            &(&p, &graph),
            |b, (p, g)| {
                b.iter(|| {
                    optimize_with(
                        p,
                        g,
                        src,
                        dst,
                        &DpOptions {
                            prune: false,
                            relay: true,
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for &nodes in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("waxman", nodes), &nodes, |b, &n| {
            b.iter(|| waxman(&WaxmanParams::sized(n), 11));
        });
        group.bench_with_input(BenchmarkId::new("transit_stub", nodes), &nodes, |b, &n| {
            b.iter(|| transit_stub(&TransitStubParams::sized(n), 11));
        });
    }
    group.finish();
}

fn bench_batch_solving(c: &mut Criterion) {
    let scenarios: Vec<Scenario> = (0..16u64)
        .map(|id| {
            let wan = waxman(&WaxmanParams::sized(24), id);
            Scenario {
                id,
                label: wan.label.clone(),
                seed: id,
                pipeline: pipeline(),
                graph: NetGraph::from_topology(&wan.topology),
                source: wan.source.0,
                destination: wan.client.0,
            }
        })
        .collect();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("solve_batch/16x24nodes", |b| {
        b.iter(|| solve_batch(&scenarios));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dp_on_generated_wans,
    bench_generators,
    bench_batch_solving
);
criterion_main!(benches);
