//! Criterion bench for the transport stabilization ablation (Section 3):
//! Robbins–Monro vs AIMD vs fixed-rate senders on a lossy WAN link, and the
//! pure controller update cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricsa_netsim::link::LinkSpec;
use ricsa_netsim::loss::LossModel;
use ricsa_netsim::node::NodeSpec;
use ricsa_netsim::time::SimTime;
use ricsa_netsim::topology::Topology;
use ricsa_transport::flow::FlowConfig;
use ricsa_transport::harness::{run_flow, ControllerChoice, FlowExperiment};
use ricsa_transport::rm::{RmController, RmParams};

fn bench_controller_update(c: &mut Criterion) {
    c.bench_function("transport/rm-update", |b| {
        let mut controller = RmController::new(RmParams::for_target(1e6));
        let mut g = 0.5e6;
        b.iter(|| {
            g = 0.9e6 + (g * 7.0) % 0.2e6;
            controller.update(g)
        })
    });
}

fn bench_flows(c: &mut Criterion) {
    let build = || {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        t.connect(
            a,
            b,
            LinkSpec::from_mbps(45.0, 0.02)
                .with_loss(LossModel::Bernoulli { p: 0.005 })
                .with_queue_delay(0.5),
        );
        (t, a, b)
    };
    let mut group = c.benchmark_group("transport/2MB-transfer");
    group.sample_size(10);
    for (label, choice) in [
        (
            "robbins-monro",
            ControllerChoice::RobbinsMonro { target_bps: 3e6 },
        ),
        ("aimd", ControllerChoice::Aimd),
        ("fixed-rate", ControllerChoice::FixedRate { rate_bps: 3e6 }),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let (t, src, dst) = build();
                run_flow(FlowExperiment {
                    topology: t,
                    src,
                    dst,
                    config: FlowConfig {
                        message_bytes: Some(2 << 20),
                        ..FlowConfig::default()
                    },
                    controller: choice.clone(),
                    duration: SimTime::from_secs(30.0),
                    seed: 3,
                })
                .completion_time
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller_update, bench_flows);
criterion_main!(benches);
