//! Criterion bench for the visualization algorithms and their cost-model
//! ablations: block size for isosurface extraction, sequential vs parallel
//! extraction, ray casting and streamline tracing throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricsa_viz::camera::Camera;
use ricsa_viz::isosurface::{extract_block, extract_isosurface};
use ricsa_viz::raycast::{raycast, RaycastConfig};
use ricsa_viz::streamline::{grid_seeds, trace_streamlines, StreamlineConfig};
use ricsa_viz::transfer::TransferFunction;
use ricsa_vizdata::field::Dims;
use ricsa_vizdata::octree::Octree;
use ricsa_vizdata::synth::{SyntheticVolume, VolumeKind};

fn bench_isosurface_block_size(c: &mut Criterion) {
    let field = SyntheticVolume::new(VolumeKind::BlastWave, Dims::cube(48), 9).generate();
    let mut group = c.benchmark_group("viz/isosurface-block-size");
    for &block in &[4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            b.iter(|| extract_isosurface(&field, 0.6, block).mesh.triangle_count())
        });
    }
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let field = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(48), 10).generate();
    let octree = Octree::build(&field, 8);
    let iso = 0.5;
    let mut group = c.benchmark_group("viz/extraction-parallelism");
    group.bench_function("rayon-parallel", |b| {
        b.iter(|| extract_isosurface(&field, iso, 8).mesh.triangle_count())
    });
    group.bench_function("sequential-blocks", |b| {
        b.iter(|| {
            octree
                .active_blocks(iso)
                .iter()
                .map(|blk| extract_block(&field, blk, iso).0.triangle_count())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_raycast_and_streamlines(c: &mut Criterion) {
    let field = SyntheticVolume::new(VolumeKind::RadialRamp, Dims::cube(32), 2).generate();
    let tf = TransferFunction::grayscale_ramp(-1.0, 1.0);
    c.bench_function("viz/raycast-96px", |b| {
        let cam = Camera::with_viewport(96, 96);
        b.iter(|| {
            raycast(&field, &cam, &tf, &RaycastConfig::default())
                .1
                .samples
        })
    });
    let vec_field = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(32), 3).generate_vector();
    c.bench_function("viz/streamlines-64-seeds", |b| {
        let seeds = grid_seeds(&vec_field, 8, 1.0);
        b.iter(|| trace_streamlines(&vec_field, &seeds, &StreamlineConfig::default()).total_steps())
    });
}

criterion_group!(
    benches,
    bench_isosurface_block_size,
    bench_parallel_vs_sequential,
    bench_raycast_and_streamlines
);
criterion_main!(benches);
