//! Criterion bench for the Fig. 10 reproduction: RICSA's optimal loop vs the
//! ParaView-style deployment at reduced dataset scale (the full-scale table
//! comes from the `fig10_paraview` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricsa_bench::bench_scale_options;
use ricsa_core::experiment::{run_loop_experiment, LoopSpec};
use ricsa_vizdata::dataset::DatasetKind;

fn bench_fig10(c: &mut Criterion) {
    let options = bench_scale_options();
    let loops = LoopSpec::fig10_loops(1.35);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for (spec, label) in loops.iter().zip(["ricsa-optimal", "paraview-crs"]) {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| run_loop_experiment(spec, DatasetKind::Jet, &options).measured_delay)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
