//! Criterion bench for the pipeline-mapping optimizer (Section 4.5):
//! DP optimization cost as the network and pipeline grow, compared against
//! exhaustive search and the greedy/fixed baselines on the Fig. 8 instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricsa_core::catalog::{standard_pipeline, SimulationCatalog};
use ricsa_netsim::presets::{fig8_topology, Fig8Site};
use ricsa_pipemap::baselines::{client_server_mapping, greedy_mapping};
use ricsa_pipemap::dp::optimize;
use ricsa_pipemap::exhaustive::exhaustive_optimal;
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::{ModuleSpec, Pipeline};

fn random_instance(seed: u64, n_nodes: usize, n_modules: usize) -> (Pipeline, NetGraph) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut g = NetGraph::new();
    for i in 0..n_nodes {
        g.add_node(format!("n{i}"), 0.5 + 6.0 * next(), true);
    }
    for a in 0..n_nodes {
        for b in (a + 1)..n_nodes {
            if b == a + 1 || next() < 0.3 {
                g.add_bidirectional(a, b, 1e6 + 20e6 * next(), 0.002 + 0.03 * next());
            }
        }
    }
    let modules = (0..n_modules)
        .map(|k| ModuleSpec::new(format!("m{k}"), 1e-9 + 1e-7 * next(), 1e4 + 4e6 * next()))
        .collect();
    (Pipeline::new("random", 1e6 + 60e6 * next(), modules), g)
}

fn bench_dp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipemap/dp-scaling");
    for &n_nodes in &[8usize, 16, 32, 64] {
        let (p, g) = random_instance(11, n_nodes, 6);
        group.bench_with_input(BenchmarkId::from_parameter(n_nodes), &n_nodes, |b, _| {
            b.iter(|| optimize(&p, &g, 0, n_nodes - 1))
        });
    }
    group.finish();
}

fn bench_dp_vs_exhaustive(c: &mut Criterion) {
    let (p, g) = random_instance(5, 5, 4);
    let mut group = c.benchmark_group("pipemap/optimizers");
    group.bench_function("dp", |b| b.iter(|| optimize(&p, &g, 0, 4)));
    group.bench_function("exhaustive", |b| {
        b.iter(|| exhaustive_optimal(&p, &g, 0, 4, 8))
    });
    group.bench_function("greedy", |b| b.iter(|| greedy_mapping(&p, &g, 0, 4)));
    group.finish();
}

fn bench_fig8_planning(c: &mut Criterion) {
    let fig8 = fig8_topology();
    let graph = NetGraph::from_topology(&fig8.topology);
    let catalog = SimulationCatalog::default();
    let pipeline = standard_pipeline(
        catalog
            .datasets
            .get(ricsa_vizdata::dataset::DatasetKind::Rage)
            .nominal_bytes(),
        &catalog.costs,
    );
    let src = graph.index_of(fig8.node(Fig8Site::GaTech));
    let dst = graph.index_of(fig8.node(Fig8Site::Ornl));
    let mut group = c.benchmark_group("pipemap/fig8");
    group.bench_function("dp-optimal", |b| {
        b.iter(|| optimize(&pipeline, &graph, src, dst))
    });
    group.bench_function("client-server", |b| {
        b.iter(|| client_server_mapping(&pipeline, &graph, src, dst))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dp_scaling,
    bench_dp_vs_exhaustive,
    bench_fig8_planning
);
criterion_main!(benches);
