//! Criterion bench for the Fig. 9 reproduction.
//!
//! Benchmarks (a) the CM-side planning step (pipeline construction + DP
//! optimization) for every dataset, and (b) the end-to-end simulated loop at
//! reduced dataset scale so `cargo bench` stays fast; the full-scale figure
//! is produced by the `fig9_loops` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricsa_bench::bench_scale_options;
use ricsa_core::catalog::{standard_pipeline, SimulationCatalog};
use ricsa_core::experiment::{run_loop_experiment, LoopSpec};
use ricsa_netsim::presets::{fig8_topology, Fig8Site};
use ricsa_pipemap::dp::optimize;
use ricsa_pipemap::network::NetGraph;
use ricsa_vizdata::dataset::DatasetKind;

fn bench_planning(c: &mut Criterion) {
    let fig8 = fig8_topology();
    let graph = NetGraph::from_topology(&fig8.topology);
    let catalog = SimulationCatalog::default();
    let src = graph.index_of(fig8.node(Fig8Site::GaTech));
    let dst = graph.index_of(fig8.node(Fig8Site::Ornl));
    let mut group = c.benchmark_group("fig9/planning");
    for kind in DatasetKind::ALL {
        let bytes = catalog.datasets.get(kind).nominal_bytes();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &bytes,
            |b, &bytes| {
                b.iter(|| {
                    let pipeline = standard_pipeline(bytes, &catalog.costs);
                    optimize(&pipeline, &graph, src, dst).unwrap().delay.total
                })
            },
        );
    }
    group.finish();
}

fn bench_simulated_loops(c: &mut Criterion) {
    let options = bench_scale_options();
    let loops = LoopSpec::fig9_loops();
    let mut group = c.benchmark_group("fig9/simulated-loop");
    group.sample_size(10);
    for (index, label) in [(0usize, "optimal"), (4usize, "pc-pc")] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| run_loop_experiment(&loops[index], DatasetKind::Jet, &options).measured_delay)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning, bench_simulated_loops);
criterion_main!(benches);
