//! Shared helpers for the RICSA benchmark harness.
//!
//! The benches and binaries in this crate regenerate the paper's evaluation:
//! the Fig. 9 loop comparison, the Fig. 10 ParaView comparison, and the
//! supplementary transport-stabilization, optimizer-scaling and cost-model
//! experiments listed in DESIGN.md §4.

use ricsa_core::experiment::ExperimentOptions;
use ricsa_netsim::time::SimTime;

/// Experiment options for full-scale (paper-size) runs, used by the
/// binaries that regenerate the figures.
pub fn full_scale_options() -> ExperimentOptions {
    ExperimentOptions::default()
}

/// Experiment options for reduced-scale runs, used inside Criterion
/// iteration loops so that `cargo bench` completes in minutes: dataset
/// sizes are 1/64th of the paper's, which keeps the simulated loop structure
/// identical while shrinking the event count.
pub fn bench_scale_options() -> ExperimentOptions {
    ExperimentOptions {
        size_scale: 1.0 / 64.0,
        max_virtual_time: SimTime::from_secs(120.0),
        ..ExperimentOptions::default()
    }
}

/// Render a labelled series (the paper's bar charts) as aligned text rows.
pub fn format_series(title: &str, rows: &[(String, f64)]) -> String {
    let mut out = format!("{title}\n");
    for (label, value) in rows {
        out.push_str(&format!("  {label:<56}{value:>12.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_presets_differ_in_scale_only() {
        let full = full_scale_options();
        let quick = bench_scale_options();
        assert_eq!(full.size_scale, 1.0);
        assert!(quick.size_scale < 0.05);
        assert_eq!(full.iterations, quick.iterations);
    }

    #[test]
    fn series_formatting_includes_labels_and_values() {
        let s = format_series("t", &[("a".into(), 1.0), ("b".into(), 2.5)]);
        assert!(s.contains("a"));
        assert!(s.contains("2.500"));
    }
}
