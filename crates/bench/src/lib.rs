//! Shared helpers for the RICSA benchmark harness.
//!
//! The benches and binaries in this crate regenerate the paper's evaluation:
//! the Fig. 9 loop comparison, the Fig. 10 ParaView comparison, and the
//! supplementary transport-stabilization, optimizer-scaling and cost-model
//! experiments listed in DESIGN.md §4.

#![deny(missing_docs)]

use ricsa_core::experiment::ExperimentOptions;
use ricsa_netsim::time::SimTime;
use ricsa_viz::image::Image;
use ricsa_webfront::hub::{encode_frame_full, Frame, PollMode, SessionHub};

/// Experiment options for full-scale (paper-size) runs, used by the
/// binaries that regenerate the figures.
pub fn full_scale_options() -> ExperimentOptions {
    ExperimentOptions::default()
}

/// Experiment options for reduced-scale runs, used inside Criterion
/// iteration loops so that `cargo bench` completes in minutes: dataset
/// sizes are 1/64th of the paper's, which keeps the simulated loop structure
/// identical while shrinking the event count.
pub fn bench_scale_options() -> ExperimentOptions {
    ExperimentOptions {
        size_scale: 1.0 / 64.0,
        max_virtual_time: SimTime::from_secs(120.0),
        ..ExperimentOptions::default()
    }
}

/// The synthetic frame for serving-layer benchmarks at publish step
/// `step`: a static gradient background with a bright square blob walking
/// across it, so consecutive frames differ only around the blob and delta
/// encodings are genuinely sparse.  Shared by the `webfront_load` binary
/// and the `webfront_bench` criterion bench so both measure the same
/// workload.
pub fn synth_web_frame(step: u64, width: usize, height: usize) -> Frame {
    const BLOB: usize = 24;
    let mut img = Image::new(width, height);
    for y in 0..height {
        for x in 0..width {
            img.set(x, y, [(x ^ y) as u8, (x / 2) as u8, (y / 2) as u8, 255]);
        }
    }
    let bx = (step as usize * 2) % width.saturating_sub(BLOB).max(1);
    let by = (step as usize) % height.saturating_sub(BLOB).max(1);
    for y in by..(by + BLOB).min(height) {
        for x in bx..(bx + BLOB).min(width) {
            img.set(x, y, [255, 240, 40, 255]);
        }
    }
    Frame {
        sequence: 0,
        cycle: step,
        time: step as f64 * 0.01,
        image: img.encode_raw(),
        monitors: vec![("step".into(), step as f64)],
    }
}

/// Poller counts priced by the encode-cache comparison — one list shared
/// by the `webfront_bench` criterion bench and the `webfront_load` BENCH
/// json so both always measure the same workload.
pub const ENCODE_CACHE_POLLERS: &[usize] = &[1, 16, 128];

/// The cached side of the encode-cache comparison: serve `pollers` clients
/// from the hub's encode-once cache (a lookup plus an `Arc` clone each).
pub fn serve_pollers_cached(hub: &SessionHub, pollers: usize) {
    for _ in 0..pollers {
        std::hint::black_box(hub.try_payload(0, PollMode::Full));
    }
}

/// The per-client side of the comparison: re-encode the frame once per
/// client instead of hitting the cache.
pub fn serve_pollers_encoding(frame: &Frame, pollers: usize) {
    for _ in 0..pollers {
        std::hint::black_box(encode_frame_full(frame, 1));
    }
}

/// Render a labelled series (the paper's bar charts) as aligned text rows.
pub fn format_series(title: &str, rows: &[(String, f64)]) -> String {
    let mut out = format!("{title}\n");
    for (label, value) in rows {
        out.push_str(&format!("  {label:<56}{value:>12.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_presets_differ_in_scale_only() {
        let full = full_scale_options();
        let quick = bench_scale_options();
        assert_eq!(full.size_scale, 1.0);
        assert!(quick.size_scale < 0.05);
        assert_eq!(full.iterations, quick.iterations);
    }

    #[test]
    fn series_formatting_includes_labels_and_values() {
        let s = format_series("t", &[("a".into(), 1.0), ("b".into(), 2.5)]);
        assert!(s.contains("a"));
        assert!(s.contains("2.500"));
    }
}
