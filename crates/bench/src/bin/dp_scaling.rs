//! Supplementary experiment for Section 4.5: the dynamic-programming
//! optimizer matches exhaustive search on small instances and scales as
//! `O(n · |E|)` on large ones; dominance pruning (DESIGN.md §6.3) trims the
//! constant without changing the optimum.
//!
//! Usage: `cargo run --release -p ricsa-bench --bin dp_scaling`
//!
//! Timing goes through the bench-harness timer (`criterion::time_per_call`,
//! warm-up + calibrated sampling, median-of-samples) so the numbers printed
//! here are comparable with `cargo bench` output across runs.

use criterion::time_per_call;
use ricsa_pipemap::dp::{optimize, optimize_with, DpOptions};
use ricsa_pipemap::exhaustive::exhaustive_optimal;
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::{ModuleSpec, Pipeline};

fn random_instance(seed: u64, n_nodes: usize, n_modules: usize) -> (Pipeline, NetGraph) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut g = NetGraph::new();
    for i in 0..n_nodes {
        g.add_node(format!("n{i}"), 0.5 + 6.0 * next(), true);
    }
    for a in 0..n_nodes {
        for b in (a + 1)..n_nodes {
            if b == a + 1 || next() < 0.35 {
                g.add_bidirectional(a, b, 0.5e6 + 20e6 * next(), 0.002 + 0.04 * next());
            }
        }
    }
    let modules = (0..n_modules)
        .map(|k| ModuleSpec::new(format!("m{k}"), 1e-9 + 1e-7 * next(), 1e4 + 4e6 * next()))
        .collect();
    (Pipeline::new("random", 1e6 + 60e6 * next(), modules), g)
}

fn main() {
    println!("Optimality check against exhaustive search (small instances):");
    let mut agreements = 0;
    let total = 30;
    for seed in 0..total {
        let (p, g) = random_instance(seed, 5, 4);
        let dp = optimize(&p, &g, 0, 4);
        let ex = exhaustive_optimal(&p, &g, 0, 4, 8);
        if let (Some(dp), Some(ex)) = (dp, ex) {
            if (dp.delay.total - ex.delay.total).abs() < 1e-6 * ex.delay.total {
                agreements += 1;
            }
        }
    }
    println!("  DP == exhaustive on {agreements}/{total} random instances\n");

    println!("Scaling of the dynamic program (median time per optimization call):");
    println!(
        "{:>8}{:>10}{:>12}{:>16}{:>16}{:>18}",
        "nodes", "edges", "modules", "pruned (µs)", "unpruned (µs)", "µs / (n·|E|)"
    );
    for &(n_nodes, n_modules) in &[
        (8usize, 4usize),
        (16, 4),
        (32, 4),
        (64, 4),
        (32, 8),
        (32, 16),
        (32, 32),
        (128, 8),
    ] {
        let (p, g) = random_instance(99, n_nodes, n_modules);
        let pruned = time_per_call(10, || optimize(&p, &g, 0, n_nodes - 1)).as_secs_f64() * 1e6;
        let unpruned = time_per_call(10, || {
            optimize_with(
                &p,
                &g,
                0,
                n_nodes - 1,
                &DpOptions {
                    prune: false,
                    relay: false,
                },
            )
        })
        .as_secs_f64()
            * 1e6;
        let work = (n_modules * g.link_count()) as f64;
        println!(
            "{:>8}{:>10}{:>12}{:>16.1}{:>16.1}{:>18.4}",
            n_nodes,
            g.link_count(),
            n_modules,
            pruned,
            unpruned,
            unpruned / work
        );
    }
    println!("\nThe final column should stay roughly constant: the unpruned running time");
    println!("grows linearly in n x |E|, the complexity the paper claims.  On these small,");
    println!("dense, all-feasible instances the dominance bound's setup usually costs more");
    println!("than it saves - its payoff is on large sparse relay instances, where");
    println!("scenario_sweep measures a 2x+ win (see DESIGN.md 6.3).");
}
