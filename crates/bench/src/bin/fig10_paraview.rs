//! Regenerate Fig. 10: RICSA's optimal loop versus a ParaView-style
//! client / render-server / data-server deployment on the same route.
//!
//! Usage: `cargo run --release -p ricsa-bench --bin fig10_paraview [--quick]`

use ricsa_bench::{bench_scale_options, full_scale_options};
use ricsa_core::experiment::{fig10_experiment, format_fig10_table};

/// Processing/protocol overhead factor applied to the ParaView deployment;
/// the paper attributes its measured gap to "higher processing and
/// communication overhead incurred by visualization and network transfer
/// functions used in ParaView".
const PARAVIEW_OVERHEAD: f64 = 1.35;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let options = if quick {
        bench_scale_options()
    } else {
        full_scale_options()
    };
    eprintln!(
        "running Fig. 10 reproduction ({} scale)...",
        if quick { "1/64" } else { "full" }
    );
    let (rows, results) = fig10_experiment(&options, PARAVIEW_OVERHEAD);
    println!("{}", format_fig10_table(&rows));
    println!("Configurations:");
    for r in &results {
        println!(
            "  {:<58} {:<10} measured {:>8.2} s   {}",
            r.loop_name, r.dataset, r.measured_delay, r.mapping
        );
    }
}
