//! Regenerate Fig. 9: end-to-end delay of the six visualization loops for
//! the Jet (16 MB), Rage (64 MB) and Visible Woman (108 MB) datasets.
//!
//! Usage: `cargo run --release -p ricsa-bench --bin fig9_loops [--quick]`
//!
//! `--quick` runs at 1/64th dataset scale (seconds instead of minutes) and
//! is what CI uses; the full run reproduces the paper-scale dataset sizes.

use ricsa_bench::{bench_scale_options, full_scale_options};
use ricsa_core::experiment::{fig9_experiment, format_fig9_table, LoopSpec};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let options = if quick {
        bench_scale_options()
    } else {
        full_scale_options()
    };
    eprintln!(
        "running Fig. 9 reproduction ({} scale, {} iteration(s) per loop)...",
        if quick { "1/64" } else { "full" },
        options.iterations
    );
    let (rows, results) = fig9_experiment(&options);
    println!("{}", format_fig9_table(&rows, &LoopSpec::fig9_loops()));
    println!("Chosen mappings and model predictions:");
    for r in &results {
        println!(
            "  {:<46} {:<10} measured {:>8.2} s   predicted {:>8.2} s   {}",
            r.loop_name, r.dataset, r.measured_delay, r.predicted_delay, r.mapping
        );
    }
    // The paper's headline claim: the optimal loop achieves >3x speedup over
    // the default client/server mode at ~100 MB.
    if let Some(last) = rows.last() {
        let optimal = last.loop_delays[0];
        let pc_pc = last.loop_delays[4].min(last.loop_delays[5]);
        println!(
            "\nSpeedup of the optimal loop over the best PC-PC loop on {}: {:.2}x",
            last.dataset,
            pc_pc / optimal.max(1e-9)
        );
    }
}
