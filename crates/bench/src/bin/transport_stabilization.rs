//! Supplementary experiment for Section 3: goodput stabilization of the
//! Robbins–Monro transport versus AIMD and open-loop senders on a lossy,
//! cross-traffic-laden wide-area link.
//!
//! Usage: `cargo run --release -p ricsa-bench --bin transport_stabilization`

use ricsa_netsim::crosstraffic::CrossTraffic;
use ricsa_netsim::link::LinkSpec;
use ricsa_netsim::loss::LossModel;
use ricsa_netsim::node::{NodeId, NodeSpec};
use ricsa_netsim::time::SimTime;
use ricsa_netsim::topology::Topology;
use ricsa_transport::flow::FlowConfig;
use ricsa_transport::harness::{run_flow, ControllerChoice, FlowExperiment};

fn wan(loss: f64, cross: f64) -> (Topology, NodeId, NodeId) {
    let mut t = Topology::new();
    let a = t.add_node(NodeSpec::workstation("sender", 1.0));
    let b = t.add_node(NodeSpec::workstation("receiver", 1.0));
    t.connect(
        a,
        b,
        LinkSpec::from_mbps(45.0, 0.025)
            .with_loss(LossModel::Bernoulli { p: loss })
            .with_cross_traffic(CrossTraffic::OnOff {
                low_load: cross * 0.5,
                high_load: (cross * 1.5).min(0.9),
                mean_low_duration: 2.0,
                mean_high_duration: 1.0,
            })
            .with_queue_delay(0.5),
    );
    (t, a, b)
}

fn main() {
    println!("Goodput stabilization on a 45 Mbit/s WAN link, target g* = 1 MB/s");
    println!(
        "{:<16}{:>10}{:>12}{:>18}{:>14}{:>14}",
        "controller", "loss", "cross", "steady goodput", "cv (jitter)", "converged at"
    );
    for &(loss, cross) in &[(0.001, 0.1), (0.01, 0.2), (0.03, 0.4)] {
        for choice in [
            ControllerChoice::RobbinsMonro { target_bps: 1.0e6 },
            ControllerChoice::Aimd,
            ControllerChoice::FixedRate { rate_bps: 1.0e6 },
        ] {
            let (topo, a, b) = wan(loss, cross);
            let outcome = run_flow(FlowExperiment {
                topology: topo,
                src: a,
                dst: b,
                config: FlowConfig::default(),
                controller: choice.clone(),
                duration: SimTime::from_secs(60.0),
                seed: 7,
            });
            let convergence = outcome
                .goodput
                .convergence_time(1.0e6, 0.2)
                .map(|t| format!("{t:>10.1} s"))
                .unwrap_or_else(|| "    never".to_string());
            println!(
                "{:<16}{:>10.3}{:>12.2}{:>15.0} B/s{:>14.3}{:>14}",
                outcome.controller,
                loss,
                cross,
                outcome.steady_state_goodput(),
                outcome.steady_state_cv(),
                convergence
            );
        }
    }
    println!("\nThe Robbins-Monro controller should hold the target goodput with the");
    println!("lowest coefficient of variation across all loss/cross-traffic settings.");
}
