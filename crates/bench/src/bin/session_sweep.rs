//! Multi-session sweep: contention-aware joint mapping at serving scale.
//!
//! Per cell (contention family × session count N) this binary spawns N
//! frame-paced user loops on the shared-trunk contention WAN and runs
//! them to completion under three mapping policies — N independent
//! solves, the link-pricing joint solve, and the client/server baseline
//! — then reports aggregate throughput, p99 frame latency and the Jain
//! fairness index per run, plus the per-cell joint-vs-independent
//! comparison.  Asserts the per-session frame audit on every run (zero
//! lost, zero duplicated frames) and that the joint policy beats
//! independent on throughput *and* fairness at N = 8 in at least one
//! family, then writes a BENCH json to `target/session_sweep.json`.
//!
//! Usage:
//! `cargo run --release -p ricsa-bench --bin session_sweep -- [--quick]
//!  [--frames F] [--seed S] [--json PATH]`
//!
//! `--quick` evaluates N ∈ {2, 8} across two families in seconds; the
//! default full sweep adds N = 32 and a heavy uniform family.
//! DESIGN.md §11 explains the WAN and how to read the output.

use ricsa_core::session_sweep::{
    format_session_sweep_report, run_session_sweep, SessionSweepConfig, SessionSweepRecord,
    SessionSweepReport,
};
use serde::Serialize;

/// What the BENCH json records: the configuration axes, the per-cell
/// comparisons and the full record set.
#[derive(Debug, Serialize)]
struct BenchJson {
    quick: bool,
    seed: u64,
    frames: u64,
    session_counts: Vec<usize>,
    families: Vec<String>,
    joint_double_wins: usize,
    cells: usize,
    report: SessionSweepReport,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut config = if quick {
        SessionSweepConfig::quick()
    } else {
        SessionSweepConfig::full()
    };
    if let Some(f) = flag_value("--frames").and_then(|s| s.parse().ok()) {
        config.frames = f;
    }
    if let Some(s) = flag_value("--seed").and_then(|s| s.parse().ok()) {
        config.seed = s;
    }
    let json_path = flag_value("--json").unwrap_or_else(|| "target/session_sweep.json".into());

    eprintln!(
        "running multi-session sweep: {} cells ({} families × N ∈ {:?}), \
         {} frames/session, 3 policies per cell...",
        config.cells(),
        config.families.len(),
        config.session_counts,
        config.frames,
    );
    let report = run_session_sweep(&config);
    println!("{}", format_session_sweep_report(&report));

    // Hard acceptance checks: fail loudly instead of printing nonsense.
    let expected = config.cells() * 3;
    assert_eq!(
        report.records.len(),
        expected,
        "every policy must complete on every cell ({}/{expected})",
        report.records.len()
    );
    for r in &report.records {
        assert_eq!(
            r.lost, 0,
            "{} n={} {}: lost frames — the session audit failed",
            r.family, r.n, r.policy
        );
        assert_eq!(
            r.duplicated, 0,
            "{} n={} {}: duplicated frames",
            r.family, r.n, r.policy
        );
        assert_eq!(
            r.completed,
            config.frames * r.n as u64,
            "{} n={} {}: every session must deliver every frame",
            r.family,
            r.n,
            r.policy
        );
    }
    // The tentpole claim: under contention (N = 8) the joint solve beats
    // N independent solves on aggregate throughput AND fairness in at
    // least one seeded family.
    let joint_wins_at_8 = report
        .comparisons
        .iter()
        .filter(|c| c.n == 8 && c.joint_wins_both)
        .count();
    assert!(
        joint_wins_at_8 >= 1,
        "joint must beat independent on fps and fairness at N=8 in some family: {:?}",
        report.comparisons
    );
    let mean = |f: fn(&SessionSweepRecord) -> f64, policy: &str| {
        let v: Vec<f64> = report
            .records
            .iter()
            .filter(|r| r.policy == policy)
            .map(f)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "mean aggregate fps: joint {:.3} vs independent {:.3} vs client/server {:.3}",
        mean(|r| r.aggregate_fps, "joint"),
        mean(|r| r.aggregate_fps, "independent"),
        mean(|r| r.aggregate_fps, "client-server"),
    );
    println!(
        "mean p99 frame delay: joint {:.3}s vs independent {:.3}s vs client/server {:.3}s",
        mean(|r| r.p99_delay_s, "joint"),
        mean(|r| r.p99_delay_s, "independent"),
        mean(|r| r.p99_delay_s, "client-server"),
    );

    let bench = BenchJson {
        quick,
        seed: config.seed,
        frames: config.frames,
        session_counts: config.session_counts.clone(),
        families: config.families.iter().map(|f| f.label.clone()).collect(),
        joint_double_wins: report.joint_double_wins(),
        cells: config.cells(),
        report,
    };
    match serde_json::to_string(&bench) {
        Ok(json) => {
            if let Some(parent) = std::path::Path::new(&json_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&json_path, json) {
                Ok(()) => eprintln!("BENCH json written to {json_path}"),
                Err(e) => eprintln!("could not write {json_path}: {e}"),
            }
        }
        Err(e) => eprintln!("could not serialize BENCH json: {e}"),
    }
}
