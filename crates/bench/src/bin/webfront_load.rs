//! Load-test the Ajax serving layer across its two scheduling backends:
//! the portable rotation pool and the epoll readiness reactor.
//!
//! Each phase starts a [`FrontEndServer`] on one backend, a publisher
//! thread pushing synthetic frames (a small blob moving across a static
//! background, so delta frames are genuinely sparse), N long-polling
//! clients on keep-alive connections, and a few steering clients POSTing
//! parameter updates.  The client side is a *multiplexed* epoll load
//! generator — one thread drives every poller connection as a small state
//! machine — so poller counts in the thousands do not need thousands of
//! OS threads (falling back to thread-per-poller where epoll is absent).
//!
//! The phase matrix crosses backend × mode at the base poller count, then
//! holds `mode=delta` and scales to 1 000 connections on both backends
//! (and 10 000 on readiness in the full run, raising `RLIMIT_NOFILE`
//! first).  Every delivered frame is audited on the wire: sequences must
//! never regress or repeat, and a delta's `base_sequence` must equal the
//! last frame this client applied — composed delta chains and full-frame
//! resyncs are counted separately.  The report gives requests/s,
//! delivery-latency percentiles (receive time minus publish time),
//! bytes on wire per delivered frame (after the RLE pass), and the hub's
//! encode count per published frame, which must stay independent of the
//! poller count.  A final table prices the encode-once cache against
//! re-encoding per client.
//!
//! Usage:
//! `cargo run --release -p ricsa-bench --bin webfront_load -- [--quick]
//!  [--pollers N] [--seconds S] [--workers W] [--json PATH]`
//!
//! `--quick` runs the CI scale: the base phases at ≥100 pollers plus both
//! 1 000-connection phases, ~2.5 s each.  The default base is 300 pollers
//! for 8 s per phase plus the 10 000-connection readiness phase.  The
//! BENCH json goes to `target/webfront_load.json` unless `--json PATH`
//! overrides it.  The process exits non-zero if the sequence audit finds
//! a violation.

use criterion::time_per_call;
use epoll::{Interest, Poller};
use ricsa_bench::{
    serve_pollers_cached, serve_pollers_encoding, synth_web_frame, ENCODE_CACHE_POLLERS,
};
use ricsa_webfront::http::{read_blocking_response, HttpServerConfig};
use ricsa_webfront::hub::SessionHub;
use ricsa_webfront::server::{FrontEndConfig, FrontEndServer};
use ricsa_webfront::Backend;
use serde::Serialize;
use std::collections::HashMap;
use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Everything one phase is configured with.
#[derive(Clone)]
struct PhaseConfig {
    backend: Backend,
    mode: &'static str,
    pollers: usize,
    steerers: usize,
    seconds: f64,
    publish_interval: Duration,
    width: usize,
    height: usize,
    workers: usize,
}

/// Wire-level sequence audit, summed over all pollers of a phase.
#[derive(Debug, Default, Serialize)]
struct Audit {
    /// Deliveries whose sequence did not advance (duplicate or
    /// regression).  Must be zero.
    duplicates: u64,
    /// Delta deliveries whose `base_sequence` was not the last frame this
    /// client applied.  Must be zero — a mismatched delta would corrupt
    /// the client's retained pixels.
    delta_base_mismatches: u64,
    /// Full-mode deliveries that skipped a sequence number.  Must be zero
    /// in full-mode phases (the hub replays the retained backlog in
    /// order).
    full_mode_gaps: u64,
    /// Full-frame deliveries in delta mode that skipped ahead: the
    /// by-design resync for clients lagging beyond the composition
    /// horizon.  Informational.
    resyncs: u64,
    /// Delta deliveries that jumped more than one step in a single
    /// response: composed delta chains at work.  Informational.
    chained_deliveries: u64,
}

impl Audit {
    fn violations(&self) -> u64 {
        self.duplicates + self.delta_base_mismatches + self.full_mode_gaps
    }
}

/// Aggregated results of one phase, serialized into the BENCH json.
#[derive(Debug, Serialize)]
struct PhaseStats {
    backend: String,
    mode: String,
    pollers: usize,
    seconds: f64,
    /// Poll requests completed (including empty timeouts).
    poll_requests: u64,
    /// Steering POSTs completed.
    steer_requests: u64,
    requests_per_sec: f64,
    frames_published: u64,
    /// Frame deliveries summed over all pollers.
    frames_delivered: u64,
    /// Deliveries that used the delta encoding.
    delta_deliveries: u64,
    /// Wire bytes of all poll responses (headers + body).
    poll_bytes: u64,
    bytes_per_delivery: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    /// Hub encodes (full + delta + composed chains) per published frame;
    /// flat across poller counts because payloads are encoded once and
    /// shared.
    encodes_per_frame: f64,
    /// Poller connections that failed to open or died mid-phase.
    disconnects: u64,
    audit: Audit,
    /// Server-side backpressure snapshot (`/api/stats`) taken at the end
    /// of the phase, while the full poller load is still connected.
    server: Option<ricsa_webfront::http::PoolMetricsSnapshot>,
}

/// One row of the encode-cache pricing table.
#[derive(Debug, Serialize)]
struct EncodeTiming {
    pollers: usize,
    /// Serving `pollers` clients from the encode-once cache (lookup + Arc
    /// clone each).
    cached_us: f64,
    /// Re-encoding the frame for each of the `pollers` clients.
    per_client_us: f64,
}

#[derive(Debug, Serialize)]
struct BenchJson {
    quick: bool,
    workers: usize,
    /// bytes-per-delivery(full) / bytes-per-delivery(delta) at the base
    /// scale on the readiness backend.
    wire_reduction: f64,
    pool_delta_p99_at_base_ms: f64,
    pool_delta_p99_at_1k_ms: f64,
    readiness_delta_p99_at_base_ms: f64,
    readiness_delta_p99_at_1k_ms: f64,
    /// Readiness beats the rotation pool at the 1k scale: its p99 must
    /// not exceed the pool's at the same connection count.
    readiness_p99_flat: bool,
    /// Encodes per published frame at 1k vs the base poller count on the
    /// readiness backend — staying within 3x means encoding is
    /// O(publishes), not O(pollers).
    encode_independent: bool,
    phases: Vec<PhaseStats>,
    encode_cache: Vec<EncodeTiming>,
}

/// What one load generator (mux loop or fallback thread) accumulated.
#[derive(Debug, Default)]
struct GenResult {
    polls: u64,
    frames: u64,
    delta_frames: u64,
    wire_bytes: u64,
    /// Delivery latencies in microseconds (receive minus publish).
    latencies_us: Vec<u64>,
    disconnects: u64,
    audit: Audit,
}

impl GenResult {
    fn merge(&mut self, other: GenResult) {
        self.polls += other.polls;
        self.frames += other.frames;
        self.delta_frames += other.delta_frames;
        self.wire_bytes += other.wire_bytes;
        self.latencies_us.extend(other.latencies_us);
        self.disconnects += other.disconnects;
        self.audit.duplicates += other.audit.duplicates;
        self.audit.delta_base_mismatches += other.audit.delta_base_mismatches;
        self.audit.full_mode_gaps += other.audit.full_mode_gaps;
        self.audit.resyncs += other.audit.resyncs;
        self.audit.chained_deliveries += other.audit.chained_deliveries;
    }
}

/// Pull `"field":<u64>` out of a JSON body without a full parse — the load
/// generator must stay far cheaper than the server it is measuring.
fn scan_u64_field(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Audit one 200-status poll body against this client's cursor; returns
/// the delivered sequence (and advances the cursor) when the body carried
/// a frame.
fn audit_delivery(
    body: &str,
    mode: &'static str,
    last_delivered: &mut u64,
    result: &mut GenResult,
) -> Option<u64> {
    let seq = scan_u64_field(body, "sequence")?;
    result.frames += 1;
    if seq <= *last_delivered {
        result.audit.duplicates += 1;
    }
    if body.contains("\"mode\":\"delta\"") {
        result.delta_frames += 1;
        match scan_u64_field(body, "base_sequence") {
            Some(base) if base == *last_delivered => {
                if seq > base + 1 {
                    result.audit.chained_deliveries += 1;
                }
            }
            _ => result.audit.delta_base_mismatches += 1,
        }
    } else if seq != *last_delivered + 1 {
        if mode == "full" {
            result.audit.full_mode_gaps += 1;
        } else {
            result.audit.resyncs += 1;
        }
    }
    *last_delivered = seq;
    Some(seq)
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

fn raw_fd(stream: &TcpStream) -> epoll::RawFd {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

/// One poller connection inside the multiplexed generator.
struct MuxConn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into a response.
    inbuf: Vec<u8>,
    /// Request bytes not yet accepted by the socket.
    out: Vec<u8>,
    since: u64,
    last_delivered: u64,
    registered: bool,
    dead: bool,
    /// Disconnect already counted and the registration dropped.
    retired: bool,
}

impl MuxConn {
    fn queue_poll(&mut self, mode: &str) {
        let since = self.since;
        self.out.extend_from_slice(
            format!(
                "GET /api/poll?since={since}&timeout_ms=1000&mode={mode} HTTP/1.1\r\n\
                 Host: l\r\n\r\n"
            )
            .as_bytes(),
        );
    }

    fn flush(&mut self) {
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn read_available(&mut self) {
        let mut tmp = [0u8; 16384];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&tmp[..n]);
                    if n < tmp.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// Parse one complete HTTP response off the front of `buf`, if present:
/// `(status, wire bytes consumed, body)`.  The server always frames
/// responses with `Content-Length`.
fn take_response(buf: &mut Vec<u8>) -> Option<(u16, u64, String)> {
    let hdr_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..hdr_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let mut content_len = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_len = value.trim().parse().ok()?;
            }
        }
    }
    let total = hdr_end + 4 + content_len;
    if buf.len() < total {
        return None;
    }
    let body = String::from_utf8_lossy(&buf[hdr_end + 4..total]).into_owned();
    buf.drain(..total);
    Some((status, total as u64, body))
}

/// Drive `count` poller connections through one epoll instance on one
/// thread: each connection is a tiny state machine (write poll request →
/// parse the Content-Length-framed response → audit → next request), so
/// the generator scales to thousands of connections without thousands of
/// threads.  `ready` fires once every connection is open and armed, so
/// the caller can start the publisher with the full load attached.
fn run_mux_generator(
    addr: SocketAddr,
    mode: &'static str,
    count: usize,
    since0: u64,
    stop: Arc<AtomicBool>,
    publish_times: Arc<Mutex<HashMap<u64, Instant>>>,
    ready: mpsc::Sender<()>,
) -> GenResult {
    let mut result = GenResult::default();
    let Ok(poller) = Poller::new() else {
        let _ = ready.send(());
        return result;
    };
    let mut conns: Vec<MuxConn> = Vec::with_capacity(count);
    for _ in 0..count {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                conns.push(MuxConn {
                    stream,
                    inbuf: Vec::new(),
                    out: Vec::new(),
                    since: since0,
                    last_delivered: since0,
                    registered: false,
                    dead: false,
                    retired: false,
                });
            }
            Err(_) => result.disconnects += 1,
        }
    }
    for (key, conn) in conns.iter_mut().enumerate() {
        conn.queue_poll(mode);
        conn.flush();
        arm(&poller, conn, key as u64);
    }
    let _ = ready.send(());

    let mut alive = conns.iter().filter(|c| !c.dead).count();
    let mut events = Vec::new();
    while !stop.load(Ordering::Relaxed) && alive > 0 {
        let _ = poller.wait(&mut events, 4096, Some(Duration::from_millis(25)));
        let now = Instant::now();
        for event in &events {
            let Some(conn) = conns.get_mut(event.key as usize) else {
                continue;
            };
            if conn.retired {
                continue;
            }
            if !conn.out.is_empty() {
                conn.flush();
            }
            if event.readable {
                conn.read_available();
                while let Some((status, wire, body)) = take_response(&mut conn.inbuf) {
                    result.polls += 1;
                    result.wire_bytes += wire;
                    if status == 200 {
                        if let Some(seq) =
                            audit_delivery(&body, mode, &mut conn.last_delivered, &mut result)
                        {
                            if let Some(published) = publish_times.lock().get(&seq) {
                                result
                                    .latencies_us
                                    .push(now.duration_since(*published).as_micros() as u64);
                            }
                            conn.since = seq;
                        }
                    }
                    conn.queue_poll(mode);
                }
                conn.flush();
            }
            if conn.dead {
                let _ = poller.delete(raw_fd(&conn.stream));
                conn.retired = true;
                result.disconnects += 1;
                alive -= 1;
            } else {
                arm(&poller, conn, event.key);
            }
        }
    }
    result
}

/// (Re-)register a connection with the poller: always readable, writable
/// only while request bytes are backed up, one-shot so a woken connection
/// stays quiet until it is re-armed after servicing.
fn arm(poller: &Poller, conn: &mut MuxConn, key: u64) {
    let interest = Interest {
        readable: true,
        writable: !conn.out.is_empty(),
        oneshot: true,
    };
    let fd = raw_fd(&conn.stream);
    let armed = if conn.registered {
        poller.modify(fd, key, interest)
    } else {
        poller.add(fd, key, interest)
    };
    match armed {
        Ok(()) => conn.registered = true,
        Err(_) => conn.dead = true,
    }
}

/// Thread-per-poller fallback for platforms without epoll: one blocking
/// keep-alive connection per thread, same audit as the mux generator.
fn poller_thread(
    addr: SocketAddr,
    mode: &'static str,
    since0: u64,
    stop: Arc<AtomicBool>,
    publish_times: Arc<Mutex<HashMap<u64, Instant>>>,
) -> GenResult {
    let mut result = GenResult::default();
    let Ok(stream) = TcpStream::connect(addr) else {
        result.disconnects += 1;
        return result;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        result.disconnects += 1;
        return result;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut since = since0;
    let mut last_delivered = since0;

    while !stop.load(Ordering::Relaxed) {
        let request = format!(
            "GET /api/poll?since={since}&timeout_ms=1000&mode={mode} HTTP/1.1\r\nHost: l\r\n\r\n"
        );
        if writer.write_all(request.as_bytes()).is_err() {
            break;
        }
        let Ok((status, wire, body)) = read_blocking_response(&mut reader) else {
            break;
        };
        let received = Instant::now();
        result.polls += 1;
        result.wire_bytes += wire;
        if status != 200 {
            continue;
        }
        let body = String::from_utf8_lossy(&body);
        if let Some(seq) = audit_delivery(&body, mode, &mut last_delivered, &mut result) {
            if let Some(published) = publish_times.lock().get(&seq) {
                result
                    .latencies_us
                    .push(received.duration_since(*published).as_micros() as u64);
            }
            since = seq;
        }
    }
    result
}

fn steerer_thread(addr: SocketAddr, stop: Arc<AtomicBool>) -> u64 {
    let mut sent = 0;
    let Ok(stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return 0;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let body =
        r#"{"gamma":1.4,"cfl":0.4,"drive_strength":1.0,"inflow_velocity":2.0,"end_cycle":1000000}"#;
    while !stop.load(Ordering::Relaxed) {
        let request = format!(
            "POST /api/steer HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if writer.write_all(request.as_bytes()).is_err() {
            break;
        }
        if read_blocking_response(&mut reader).is_err() {
            break;
        }
        sent += 1;
        std::thread::sleep(Duration::from_millis(50));
    }
    sent
}

fn backend_name(backend: Backend) -> &'static str {
    match backend {
        Backend::Pool => "pool",
        Backend::Readiness => "readiness",
    }
}

fn run_phase(config: &PhaseConfig) -> PhaseStats {
    let server = FrontEndServer::start_with(
        "127.0.0.1:0",
        FrontEndConfig {
            http: HttpServerConfig {
                workers: config.workers,
                max_connections: config.pollers + config.steerers + 64,
                backend: config.backend,
                ..HttpServerConfig::default()
            },
            hub_capacity: 64,
            max_clients: config.pollers + 16,
        },
    )
    .expect("bind the front end");
    let addr = server.addr();
    let hub = server.hub();
    let stop = Arc::new(AtomicBool::new(false));
    let publish_times: Arc<Mutex<HashMap<u64, Instant>>> = Arc::default();
    // Every poller's cursor starts at the current head, so backlog frames
    // never pollute the delivery-latency measurement.
    let since0 = hub.latest_sequence();

    let (ready_tx, ready_rx) = mpsc::channel();
    let generator = {
        let stop = stop.clone();
        let publish_times = publish_times.clone();
        let (mode, count) = (config.mode, config.pollers);
        std::thread::spawn(move || {
            if epoll::is_supported() {
                run_mux_generator(addr, mode, count, since0, stop, publish_times, ready_tx)
            } else {
                let _ = ready_tx.send(());
                let threads: Vec<_> = (0..count)
                    .map(|_| {
                        let stop = stop.clone();
                        let publish_times = publish_times.clone();
                        std::thread::spawn(move || {
                            poller_thread(addr, mode, since0, stop, publish_times)
                        })
                    })
                    .collect();
                let mut merged = GenResult::default();
                for handle in threads {
                    merged.merge(handle.join().unwrap());
                }
                merged
            }
        })
    };
    let steerers: Vec<_> = (0..config.steerers)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || steerer_thread(addr, stop))
        })
        .collect();

    // Publish only once the full poller load is connected and armed, so
    // every phase measures the same steady state regardless of how long
    // the connection ramp took.
    let _ = ready_rx.recv_timeout(Duration::from_secs(120));
    let publisher = {
        let hub = hub.clone();
        let stop = stop.clone();
        let publish_times = publish_times.clone();
        let config = config.clone();
        std::thread::spawn(move || {
            let mut step = 0u64;
            let mut next_seq = hub.latest_sequence() + 1;
            while !stop.load(Ordering::Relaxed) {
                let frame = synth_web_frame(step, config.width, config.height);
                // Timestamp *before* publish, registered under the
                // expected sequence number (single publisher), so pollers
                // woken inside publish() find it and the latency sample
                // includes the encode time.
                publish_times.lock().insert(next_seq, Instant::now());
                let seq = hub.publish(frame);
                assert_eq!(seq, next_seq, "single publisher owns the sequence");
                next_seq = seq + 1;
                step += 1;
                std::thread::sleep(config.publish_interval);
            }
            step
        })
    };

    std::thread::sleep(Duration::from_secs_f64(config.seconds));
    // Sample the server's own backpressure metrics while the load is
    // still attached — queue depth, parked connections, and rotation
    // latency at full load are the overload early-warning signals.
    let server_stats = fetch_server_stats(addr);
    stop.store(true, Ordering::Relaxed);
    let frames_published = publisher.join().unwrap();
    let result = generator.join().unwrap();
    let steer_requests: u64 = steerers.into_iter().map(|h| h.join().unwrap()).sum();
    let encode_count = hub.encode_count();
    server.shutdown();

    let mut latencies = result.latencies_us;
    latencies.sort_unstable();
    PhaseStats {
        backend: backend_name(config.backend).to_string(),
        mode: config.mode.to_string(),
        pollers: config.pollers,
        seconds: config.seconds,
        poll_requests: result.polls,
        steer_requests,
        requests_per_sec: (result.polls + steer_requests) as f64 / config.seconds,
        frames_published,
        frames_delivered: result.frames,
        delta_deliveries: result.delta_frames,
        poll_bytes: result.wire_bytes,
        bytes_per_delivery: if result.frames > 0 {
            result.wire_bytes as f64 / result.frames as f64
        } else {
            f64::NAN
        },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().map_or(f64::NAN, |&l| l as f64 / 1e3),
        encodes_per_frame: encode_count as f64 / frames_published.max(1) as f64,
        disconnects: result.disconnects,
        audit: result.audit,
        server: server_stats,
    }
}

/// One `/api/stats` fetch over a fresh connection, parsed into the typed
/// snapshot (extra hub fields in the body are ignored by deserialization).
fn fetch_server_stats(addr: SocketAddr) -> Option<ricsa_webfront::http::PoolMetricsSnapshot> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = stream;
    writer
        .write_all(b"GET /api/stats HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n")
        .ok()?;
    let (status, _, body) = read_blocking_response(&mut reader).ok()?;
    if status != 200 {
        return None;
    }
    serde_json::from_slice(&body).ok()
}

/// Price the encode-once cache against per-client re-encoding for a range
/// of poller counts: the cached column should stay within the cost of
/// `pollers` lookups, independent of the encode cost.  The workload
/// (`serve_pollers_cached`/`serve_pollers_encoding`, `ENCODE_CACHE_POLLERS`)
/// is shared with the `webfront_bench` criterion bench.
fn encode_cache_timings(width: usize, height: usize) -> Vec<EncodeTiming> {
    let mut rows = Vec::new();
    let frame = synth_web_frame(3, width, height);
    for &pollers in ENCODE_CACHE_POLLERS {
        let hub = SessionHub::new(4);
        hub.publish(frame.clone());
        let cached_us =
            time_per_call(5, || serve_pollers_cached(&hub, pollers)).as_secs_f64() * 1e6;
        let mut numbered = frame.clone();
        numbered.sequence = 1;
        let per_client_us =
            time_per_call(5, || serve_pollers_encoding(&numbered, pollers)).as_secs_f64() * 1e6;
        rows.push(EncodeTiming {
            pollers,
            cached_us,
            per_client_us,
        });
    }
    rows
}

fn print_phase(stats: &PhaseStats) {
    println!(
        "{:>10}{:>6}{:>8}{:>10}{:>10}{:>9}{:>9}{:>9.0}{:>9.2}{:>9.2}{:>9.2}",
        stats.backend,
        stats.mode,
        stats.pollers,
        stats.poll_requests,
        format!("{:.0}/s", stats.requests_per_sec),
        stats.frames_delivered,
        stats.delta_deliveries,
        stats.bytes_per_delivery,
        stats.p50_ms,
        stats.p95_ms,
        stats.p99_ms,
    );
    println!(
        "       audit: {} violations ({} dup, {} base-mismatch, {} full-gap), \
         {} resyncs, {} chained, {} disconnects, {:.2} encodes/frame",
        stats.audit.violations(),
        stats.audit.duplicates,
        stats.audit.delta_base_mismatches,
        stats.audit.full_mode_gaps,
        stats.audit.resyncs,
        stats.audit.chained_deliveries,
        stats.disconnects,
        stats.encodes_per_frame,
    );
    if let Some(s) = &stats.server {
        println!(
            "       server@load: {} conns, run-queue {}, {} pending long-polls, \
             {} parked, rotation mean {:.0} µs (max {} µs), visit mean {:.0} µs (max {} µs)",
            s.active_connections,
            s.queue_depth,
            s.pending_responses,
            s.parked_connections,
            s.mean_rotation_us,
            s.max_rotation_us,
            s.mean_visit_us,
            s.max_visit_us,
        );
    }
}

/// `phases` lookup by (backend, mode, pollers); panics if the phase was
/// not run (programming error in the matrix below).
fn find<'a>(phases: &'a [PhaseStats], backend: &str, mode: &str, pollers: usize) -> &'a PhaseStats {
    phases
        .iter()
        .find(|p| p.backend == backend && p.mode == mode && p.pollers == pollers)
        .expect("phase present in the matrix")
}

/// NaN-safe "no deliveries means unboundedly late" for comparisons.
fn or_inf(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let base_pollers: usize = flag_value("--pollers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 110 } else { 300 });
    let seconds: f64 = flag_value("--seconds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 2.5 } else { 8.0 });
    let workers: usize = flag_value("--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let json_path = flag_value("--json").unwrap_or_else(|| "target/webfront_load.json".into());
    let (width, height) = if quick { (128, 128) } else { (192, 192) };
    let kilo = 1000usize;
    let ten_k = 10_000usize;
    let run_ten_k = !quick && epoll::is_supported();

    // Client and server sockets live in this one process: two descriptors
    // per poller plus headroom.
    let fd_target = 2 * (if run_ten_k { ten_k } else { kilo }).max(base_pollers) + 4096;
    match epoll::raise_nofile_limit(fd_target as u64) {
        Ok(limit) => {
            if (limit as usize) < fd_target {
                eprintln!("warning: NOFILE limit {limit} below the {fd_target} target");
            }
        }
        Err(e) => eprintln!("warning: could not raise NOFILE limit: {e}"),
    }

    let base = PhaseConfig {
        backend: Backend::Pool,
        mode: "full",
        pollers: base_pollers,
        steerers: 4,
        seconds,
        publish_interval: Duration::from_millis(30),
        width,
        height,
        workers,
    };
    // The matrix: backend × mode at the base scale, then delta mode scaled
    // to 1k connections on both backends (and 10k on readiness in the full
    // run).  Publishing slows as connections grow so a phase measures
    // steady-state delivery, not an ever-deepening backlog.
    let mut matrix = vec![
        base.clone(),
        PhaseConfig {
            mode: "delta",
            ..base.clone()
        },
        PhaseConfig {
            backend: Backend::Readiness,
            ..base.clone()
        },
        PhaseConfig {
            backend: Backend::Readiness,
            mode: "delta",
            ..base.clone()
        },
        PhaseConfig {
            mode: "delta",
            pollers: kilo,
            publish_interval: Duration::from_millis(150),
            ..base.clone()
        },
        PhaseConfig {
            backend: Backend::Readiness,
            mode: "delta",
            pollers: kilo,
            publish_interval: Duration::from_millis(150),
            ..base.clone()
        },
    ];
    if run_ten_k {
        matrix.push(PhaseConfig {
            backend: Backend::Readiness,
            mode: "delta",
            pollers: ten_k,
            publish_interval: Duration::from_millis(500),
            ..base.clone()
        });
    }

    eprintln!(
        "webfront load: backends {{pool, readiness}}, base {base_pollers} pollers \
         + {} steerers, {workers} workers, {width}x{height} frames, {seconds} s per phase...",
        base.steerers
    );
    println!(
        "{:>10}{:>6}{:>8}{:>10}{:>10}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "backend",
        "mode",
        "pollers",
        "polls",
        "req/s",
        "frames",
        "delta",
        "B/frame",
        "p50 ms",
        "p95 ms",
        "p99 ms"
    );
    let mut phases = Vec::new();
    for config in &matrix {
        let stats = run_phase(config);
        print_phase(&stats);
        phases.push(stats);
    }

    let full_base = find(&phases, "readiness", "full", base_pollers);
    let delta_base = find(&phases, "readiness", "delta", base_pollers);
    let wire_reduction = full_base.bytes_per_delivery / delta_base.bytes_per_delivery;
    println!(
        "bytes on wire per delivered frame: full {:.0} vs delta {:.0}  \
         ({wire_reduction:.2}x reduction)",
        full_base.bytes_per_delivery, delta_base.bytes_per_delivery
    );

    let pool_base = find(&phases, "pool", "delta", base_pollers);
    let pool_1k = find(&phases, "pool", "delta", kilo);
    let ready_1k = find(&phases, "readiness", "delta", kilo);
    let readiness_p99_flat = or_inf(ready_1k.p99_ms) <= or_inf(pool_1k.p99_ms);
    let encode_independent =
        ready_1k.encodes_per_frame <= 3.0 * delta_base.encodes_per_frame.max(1.0);
    println!(
        "delta p99 @{base_pollers}: pool {:.2} ms vs readiness {:.2} ms; \
         @{kilo}: pool {:.2} ms vs readiness {:.2} ms ({})",
        pool_base.p99_ms,
        delta_base.p99_ms,
        pool_1k.p99_ms,
        ready_1k.p99_ms,
        if readiness_p99_flat {
            "readiness stays flat"
        } else {
            "readiness NOT flat"
        }
    );
    println!(
        "encodes per published frame: {:.2} @{base_pollers} pollers vs {:.2} @{kilo} \
         ({}dependent of poller count)",
        delta_base.encodes_per_frame,
        ready_1k.encodes_per_frame,
        if encode_independent { "in" } else { "NOT in" }
    );

    eprintln!("pricing the encode-once cache against per-client encoding...");
    let encode_cache = encode_cache_timings(width, height);
    println!(
        "{:>9}{:>15}{:>17}{:>9}",
        "pollers", "cached (µs)", "per-client (µs)", "ratio"
    );
    for row in &encode_cache {
        println!(
            "{:>9}{:>15.1}{:>17.1}{:>9.1}",
            row.pollers,
            row.cached_us,
            row.per_client_us,
            row.per_client_us / row.cached_us.max(1e-9)
        );
    }

    let total_violations: u64 = phases.iter().map(|p| p.audit.violations()).sum();
    let bench = BenchJson {
        quick,
        workers,
        wire_reduction,
        pool_delta_p99_at_base_ms: pool_base.p99_ms,
        pool_delta_p99_at_1k_ms: pool_1k.p99_ms,
        readiness_delta_p99_at_base_ms: delta_base.p99_ms,
        readiness_delta_p99_at_1k_ms: ready_1k.p99_ms,
        readiness_p99_flat,
        encode_independent,
        phases,
        encode_cache,
    };
    match serde_json::to_string(&bench) {
        Ok(json) => {
            if let Some(parent) = std::path::Path::new(&json_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&json_path, json) {
                Ok(()) => eprintln!("BENCH json written to {json_path}"),
                Err(e) => eprintln!("could not write {json_path}: {e}"),
            }
        }
        Err(e) => eprintln!("could not serialize BENCH json: {e}"),
    }
    if total_violations > 0 {
        eprintln!("sequence audit FAILED: {total_violations} violations (see per-phase lines)");
        std::process::exit(1);
    }
    eprintln!("sequence audit clean: no duplicates, no base mismatches, no full-mode gaps");
}
