//! Load-test the Ajax serving layer: many concurrent long-pollers and
//! steerers against an in-process front end over real TCP sockets.
//!
//! One phase starts a [`FrontEndServer`], a publisher thread pushing
//! synthetic frames (a small blob moving across a static background, so
//! delta frames are genuinely sparse), `--pollers` long-polling clients on
//! keep-alive connections, and a few steering clients POSTing parameter
//! updates.  The run is executed twice — `mode=full` then `mode=delta` —
//! and reports requests/s, frame-delivery latency percentiles
//! (receive time minus publish time), and bytes on wire per delivered
//! frame, whose ratio is the measured delta-mode saving.  A final table
//! prices the hub's encode-once cache against re-encoding per client.
//!
//! Usage:
//! `cargo run --release -p ricsa-bench --bin webfront_load -- [--quick]
//!  [--pollers N] [--seconds S] [--workers W] [--json PATH]`
//!
//! `--quick` runs the CI scale: ≥100 pollers for ~2.5 s per phase,
//! finishing in a few seconds.  The default is 300 pollers for 8 s per
//! phase.  The BENCH json goes to `target/webfront_load.json` unless
//! `--json PATH` overrides it.

use criterion::time_per_call;
use ricsa_bench::{
    serve_pollers_cached, serve_pollers_encoding, synth_web_frame, ENCODE_CACHE_POLLERS,
};
use ricsa_webfront::http::{read_blocking_response, HttpServerConfig};
use ricsa_webfront::hub::SessionHub;
use ricsa_webfront::server::{FrontEndConfig, FrontEndServer};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Everything one phase (full or delta) is configured with.
#[derive(Clone)]
struct PhaseConfig {
    mode: &'static str,
    pollers: usize,
    steerers: usize,
    seconds: f64,
    publish_interval: Duration,
    width: usize,
    height: usize,
    workers: usize,
}

/// Aggregated results of one phase, serialized into the BENCH json.
#[derive(Debug, Serialize)]
struct PhaseStats {
    mode: String,
    pollers: usize,
    seconds: f64,
    /// Poll requests completed (including empty timeouts).
    poll_requests: u64,
    /// Steering POSTs completed.
    steer_requests: u64,
    requests_per_sec: f64,
    frames_published: u64,
    /// Frame deliveries summed over all pollers.
    frames_delivered: u64,
    /// Deliveries that used the delta encoding.
    delta_deliveries: u64,
    /// Wire bytes of all poll responses (headers + body).
    poll_bytes: u64,
    bytes_per_delivery: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    /// Server-side backpressure snapshot (`/api/stats`) taken at the end
    /// of the phase, while the full poller load is still connected.
    server: Option<ricsa_webfront::http::PoolMetricsSnapshot>,
}

/// One row of the encode-cache pricing table.
#[derive(Debug, Serialize)]
struct EncodeTiming {
    pollers: usize,
    /// Serving `pollers` clients from the encode-once cache (lookup + Arc
    /// clone each).
    cached_us: f64,
    /// Re-encoding the frame for each of the `pollers` clients.
    per_client_us: f64,
}

#[derive(Debug, Serialize)]
struct BenchJson {
    quick: bool,
    pollers: usize,
    workers: usize,
    full: PhaseStats,
    delta: PhaseStats,
    /// bytes-per-delivery(full) / bytes-per-delivery(delta).
    wire_reduction: f64,
    encode_cache: Vec<EncodeTiming>,
}

/// One response off a blocking stream via the shared client-side reader,
/// with the body as a string for field scanning.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, u64, String)> {
    let (status, wire, body) = read_blocking_response(reader)?;
    Ok((status, wire, String::from_utf8_lossy(&body).into_owned()))
}

/// Pull `"field":<u64>` out of a JSON body without a full parse — the load
/// generator must stay far cheaper than the server it is measuring.
fn scan_u64_field(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

struct PollerResult {
    polls: u64,
    frames: u64,
    delta_frames: u64,
    wire_bytes: u64,
    /// Delivery latencies in microseconds (receive minus publish).
    latencies_us: Vec<u64>,
}

fn poller_thread(
    addr: std::net::SocketAddr,
    mode: &'static str,
    stop: Arc<AtomicBool>,
    publish_times: Arc<Mutex<HashMap<u64, Instant>>>,
) -> PollerResult {
    let mut result = PollerResult {
        polls: 0,
        frames: 0,
        delta_frames: 0,
        wire_bytes: 0,
        latencies_us: Vec::new(),
    };
    let Ok(stream) = TcpStream::connect(addr) else {
        return result;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return result;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    // Start from the current head so backlog frames do not pollute the
    // delivery-latency measurement.
    let mut since = (|| {
        writer
            .write_all(b"GET /api/state HTTP/1.1\r\nHost: l\r\n\r\n")
            .ok()?;
        let (_, _, body) = read_response(&mut reader).ok()?;
        scan_u64_field(&body, "latest_sequence")
    })()
    .unwrap_or(0);

    while !stop.load(Ordering::Relaxed) {
        let request = format!(
            "GET /api/poll?since={since}&timeout_ms=1000&mode={mode} HTTP/1.1\r\nHost: l\r\n\r\n"
        );
        if writer.write_all(request.as_bytes()).is_err() {
            break;
        }
        let Ok((status, wire, body)) = read_response(&mut reader) else {
            break;
        };
        let received = Instant::now();
        result.polls += 1;
        result.wire_bytes += wire;
        if status != 200 {
            continue;
        }
        if let Some(seq) = scan_u64_field(&body, "sequence") {
            result.frames += 1;
            if body.contains("\"mode\":\"delta\"") {
                result.delta_frames += 1;
            }
            if let Some(published) = publish_times.lock().get(&seq) {
                result
                    .latencies_us
                    .push(received.duration_since(*published).as_micros() as u64);
            }
            since = seq;
        }
    }
    result
}

fn steerer_thread(addr: std::net::SocketAddr, stop: Arc<AtomicBool>) -> u64 {
    let mut sent = 0;
    let Ok(stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return 0;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let body =
        r#"{"gamma":1.4,"cfl":0.4,"drive_strength":1.0,"inflow_velocity":2.0,"end_cycle":1000000}"#;
    while !stop.load(Ordering::Relaxed) {
        let request = format!(
            "POST /api/steer HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if writer.write_all(request.as_bytes()).is_err() {
            break;
        }
        if read_response(&mut reader).is_err() {
            break;
        }
        sent += 1;
        std::thread::sleep(Duration::from_millis(50));
    }
    sent
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

fn run_phase(config: &PhaseConfig) -> PhaseStats {
    let server = FrontEndServer::start_with(
        "127.0.0.1:0",
        FrontEndConfig {
            http: HttpServerConfig {
                workers: config.workers,
                max_connections: config.pollers + config.steerers + 16,
                ..HttpServerConfig::default()
            },
            hub_capacity: 32,
            max_clients: config.pollers + 16,
        },
    )
    .expect("bind the front end");
    let addr = server.addr();
    let hub = server.hub();
    let stop = Arc::new(AtomicBool::new(false));
    let publish_times: Arc<Mutex<HashMap<u64, Instant>>> = Arc::default();

    let publisher = {
        let hub = hub.clone();
        let stop = stop.clone();
        let publish_times = publish_times.clone();
        let config = config.clone();
        std::thread::spawn(move || {
            let mut step = 0u64;
            let mut next_seq = hub.latest_sequence() + 1;
            while !stop.load(Ordering::Relaxed) {
                let frame = synth_web_frame(step, config.width, config.height);
                // Timestamp *before* publish, registered under the
                // expected sequence number (single publisher), so pollers
                // woken inside publish() find it and the latency sample
                // includes the encode time.
                publish_times.lock().insert(next_seq, Instant::now());
                let seq = hub.publish(frame);
                assert_eq!(seq, next_seq, "single publisher owns the sequence");
                next_seq = seq + 1;
                step += 1;
                std::thread::sleep(config.publish_interval);
            }
            step
        })
    };

    let pollers: Vec<_> = (0..config.pollers)
        .map(|_| {
            let stop = stop.clone();
            let publish_times = publish_times.clone();
            let mode = config.mode;
            std::thread::spawn(move || poller_thread(addr, mode, stop, publish_times))
        })
        .collect();
    let steerers: Vec<_> = (0..config.steerers)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || steerer_thread(addr, stop))
        })
        .collect();

    std::thread::sleep(Duration::from_secs_f64(config.seconds));
    // Sample the server's own backpressure metrics while the load is
    // still attached — queue depth and rotation latency at full load are
    // the overload early-warning signals (ROADMAP item).
    let server_stats = fetch_server_stats(addr);
    stop.store(true, Ordering::Relaxed);
    let frames_published = publisher.join().unwrap();

    let mut polls = 0;
    let mut frames = 0;
    let mut delta_frames = 0;
    let mut wire_bytes = 0;
    let mut latencies: Vec<u64> = Vec::new();
    for handle in pollers {
        let r = handle.join().unwrap();
        polls += r.polls;
        frames += r.frames;
        delta_frames += r.delta_frames;
        wire_bytes += r.wire_bytes;
        latencies.extend(r.latencies_us);
    }
    let steer_requests: u64 = steerers.into_iter().map(|h| h.join().unwrap()).sum();
    server.shutdown();

    latencies.sort_unstable();
    PhaseStats {
        mode: config.mode.to_string(),
        pollers: config.pollers,
        seconds: config.seconds,
        poll_requests: polls,
        steer_requests,
        requests_per_sec: (polls + steer_requests) as f64 / config.seconds,
        frames_published,
        frames_delivered: frames,
        delta_deliveries: delta_frames,
        poll_bytes: wire_bytes,
        bytes_per_delivery: if frames > 0 {
            wire_bytes as f64 / frames as f64
        } else {
            f64::NAN
        },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().map_or(f64::NAN, |&l| l as f64 / 1e3),
        server: server_stats,
    }
}

/// One `/api/stats` fetch over a fresh connection, parsed into the typed
/// snapshot (extra hub fields in the body are ignored by deserialization).
fn fetch_server_stats(
    addr: std::net::SocketAddr,
) -> Option<ricsa_webfront::http::PoolMetricsSnapshot> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = stream;
    writer
        .write_all(b"GET /api/stats HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n")
        .ok()?;
    let (status, _, body) = read_blocking_response(&mut reader).ok()?;
    if status != 200 {
        return None;
    }
    serde_json::from_slice(&body).ok()
}

/// Price the encode-once cache against per-client re-encoding for a range
/// of poller counts: the cached column should stay within the cost of
/// `pollers` lookups, independent of the encode cost.  The workload
/// (`serve_pollers_cached`/`serve_pollers_encoding`, `ENCODE_CACHE_POLLERS`)
/// is shared with the `webfront_bench` criterion bench.
fn encode_cache_timings(width: usize, height: usize) -> Vec<EncodeTiming> {
    let mut rows = Vec::new();
    let frame = synth_web_frame(3, width, height);
    for &pollers in ENCODE_CACHE_POLLERS {
        let hub = SessionHub::new(4);
        hub.publish(frame.clone());
        let cached_us =
            time_per_call(5, || serve_pollers_cached(&hub, pollers)).as_secs_f64() * 1e6;
        let mut numbered = frame.clone();
        numbered.sequence = 1;
        let per_client_us =
            time_per_call(5, || serve_pollers_encoding(&numbered, pollers)).as_secs_f64() * 1e6;
        rows.push(EncodeTiming {
            pollers,
            cached_us,
            per_client_us,
        });
    }
    rows
}

fn print_phase(stats: &PhaseStats) {
    println!(
        "{:>6}{:>9}{:>10}{:>11}{:>11}{:>13}{:>11.0}{:>10.2}{:>10.2}{:>10.2}",
        stats.mode,
        stats.pollers,
        stats.poll_requests,
        format!("{:.0}/s", stats.requests_per_sec),
        stats.frames_delivered,
        stats.delta_deliveries,
        stats.bytes_per_delivery,
        stats.p50_ms,
        stats.p95_ms,
        stats.p99_ms,
    );
    if let Some(s) = &stats.server {
        println!(
            "       server@load: {} conns, run-queue {}, {} parked long-polls, \
             rotation mean {:.0} µs (max {} µs), visit mean {:.0} µs (max {} µs)",
            s.active_connections,
            s.queue_depth,
            s.pending_responses,
            s.mean_rotation_us,
            s.max_rotation_us,
            s.mean_visit_us,
            s.max_visit_us,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let pollers: usize = flag_value("--pollers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 110 } else { 300 });
    let seconds: f64 = flag_value("--seconds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 2.5 } else { 8.0 });
    let workers: usize = flag_value("--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let json_path = flag_value("--json").unwrap_or_else(|| "target/webfront_load.json".into());
    let (width, height) = if quick { (128, 128) } else { (192, 192) };

    let base = PhaseConfig {
        mode: "full",
        pollers,
        steerers: 4,
        seconds,
        publish_interval: Duration::from_millis(30),
        width,
        height,
        workers,
    };
    eprintln!(
        "webfront load: {pollers} pollers + {} steerers, {workers} workers, \
         {width}x{height} frames every {:?}, {seconds} s per phase...",
        base.steerers, base.publish_interval
    );

    println!(
        "{:>6}{:>9}{:>10}{:>11}{:>11}{:>13}{:>11}{:>10}{:>10}{:>10}",
        "mode",
        "pollers",
        "polls",
        "req/s",
        "frames",
        "delta-frames",
        "B/frame",
        "p50 ms",
        "p95 ms",
        "p99 ms"
    );
    let full = run_phase(&base);
    print_phase(&full);
    let delta = run_phase(&PhaseConfig {
        mode: "delta",
        ..base.clone()
    });
    print_phase(&delta);

    let wire_reduction = full.bytes_per_delivery / delta.bytes_per_delivery;
    println!(
        "bytes on wire per delivered frame: full {:.0} vs delta {:.0}  ({wire_reduction:.2}x reduction)",
        full.bytes_per_delivery, delta.bytes_per_delivery
    );

    eprintln!("pricing the encode-once cache against per-client encoding...");
    let encode_cache = encode_cache_timings(width, height);
    println!(
        "{:>9}{:>15}{:>17}{:>9}",
        "pollers", "cached (µs)", "per-client (µs)", "ratio"
    );
    for row in &encode_cache {
        println!(
            "{:>9}{:>15.1}{:>17.1}{:>9.1}",
            row.pollers,
            row.cached_us,
            row.per_client_us,
            row.per_client_us / row.cached_us.max(1e-9)
        );
    }

    let bench = BenchJson {
        quick,
        pollers,
        workers,
        full,
        delta,
        wire_reduction,
        encode_cache,
    };
    match serde_json::to_string(&bench) {
        Ok(json) => {
            if let Some(parent) = std::path::Path::new(&json_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&json_path, json) {
                Ok(()) => eprintln!("BENCH json written to {json_path}"),
                Err(e) => eprintln!("could not write {json_path}: {e}"),
            }
        }
        Err(e) => eprintln!("could not serialize BENCH json: {e}"),
    }
}
