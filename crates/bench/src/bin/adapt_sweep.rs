//! Dynamic-scenario sweep: adaptation win rates across seeded schedules.
//!
//! Where `scenario_sweep` quantifies the *optimizer's* win rate across
//! generated static WANs (the paper's §6 methodology), this binary
//! quantifies the *adaptive controller's*: per scenario it generates a
//! WAN, derives a member of a seeded dynamic-schedule family, and runs
//! the frame-paced steering loop under static, adaptive and oracle
//! policies — plus a goodput-only adaptive run that measures how much
//! earlier the passive-RTT signal detects degradations.  Prints the
//! per-scenario table and the aggregate win-rate / oracle-gap /
//! detection statistics, asserts the frame audit (zero lost, zero
//! duplicated frames across every migration of every scenario), and
//! writes a BENCH json to `target/adapt_sweep.json`.
//!
//! Usage:
//! `cargo run --release -p ricsa-bench --bin adapt_sweep -- [--quick]
//!  [--wans N] [--schedules K] [--frames F] [--seed S] [--route-bias B]
//!  [--json PATH]`
//!
//! `--quick` evaluates 36 dynamic scenarios (12 WANs × 3 schedules) in a
//! few seconds; the default full sweep evaluates 240 (40 × 6) on larger
//! WANs.  DESIGN.md §9 explains how to read the output.

use ricsa_core::adapt_sweep::{
    format_adapt_sweep_report, run_adapt_sweep, AdaptSweepConfig, AdaptSweepReport,
};
use ricsa_pipemap::sweep::{AdaptSweepRecord, AdaptSweepSummary};
use serde::Serialize;

/// What the BENCH json records: the configuration axes, the aggregate
/// statistics and the full per-scenario record set.
#[derive(Debug, Serialize)]
struct BenchJson {
    quick: bool,
    seed: u64,
    scenarios: usize,
    wans: usize,
    schedules_per_wan: usize,
    frames: u64,
    route_bias: f64,
    /// Mean wall-clock µs per warm (adaptive) re-solve across scenarios.
    warm_solve_us_mean: f64,
    /// Mean wall-clock µs per cold (oracle) re-solve across scenarios.
    cold_solve_us_mean: f64,
    summary: AdaptSweepSummary,
    records: Vec<AdaptSweepRecord>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut config = if quick {
        AdaptSweepConfig::quick()
    } else {
        AdaptSweepConfig::full()
    };
    if let Some(n) = flag_value("--wans").and_then(|s| s.parse().ok()) {
        config.wans = n;
    }
    if let Some(k) = flag_value("--schedules").and_then(|s| s.parse().ok()) {
        config.schedules_per_wan = k;
    }
    if let Some(f) = flag_value("--frames").and_then(|s| s.parse().ok()) {
        config.frames = f;
    }
    if let Some(s) = flag_value("--seed").and_then(|s| s.parse().ok()) {
        config.seed = s;
    }
    if let Some(b) = flag_value("--route-bias").and_then(|s| s.parse().ok()) {
        config.route_bias = b;
    }
    let json_path = flag_value("--json").unwrap_or_else(|| "target/adapt_sweep.json".into());

    eprintln!(
        "running adaptation sweep: {} dynamic scenarios ({} WANs × {} schedules), \
         {}-{} nodes, {} frames/run, {} KiB dataset, route bias {:.0}%...",
        config.scenarios(),
        config.wans,
        config.schedules_per_wan,
        config.min_nodes,
        config.max_nodes,
        config.frames,
        config.dataset_bytes >> 10,
        100.0 * config.route_bias,
    );
    let report: AdaptSweepReport = run_adapt_sweep(&config);
    println!("{}", format_adapt_sweep_report(&report));

    // Hard acceptance checks: fail loudly instead of printing nonsense.
    for r in &report.records {
        assert_eq!(
            r.frames_lost, 0,
            "scenario {}: lost frames across a migration",
            r.id
        );
        assert_eq!(
            r.frames_duplicated, 0,
            "scenario {}: duplicated frames",
            r.id
        );
    }
    let s = &report.summary;
    assert!(
        s.compared >= report.records.len() / 2,
        "most scenarios must be comparable ({}/{})",
        s.compared,
        report.records.len()
    );

    // Mean per-solve cost over records whose runs actually re-solved
    // (a record reports 0 when no change ever confirmed — averaging
    // those in would understate the real per-solve price).
    let mean = |f: fn(&AdaptSweepRecord) -> f64| {
        let solved: Vec<f64> = report
            .records
            .iter()
            .map(f)
            .filter(|us| *us > 0.0)
            .collect();
        if solved.is_empty() {
            0.0
        } else {
            solved.iter().sum::<f64>() / solved.len() as f64
        }
    };
    let warm_solve_us_mean = mean(|r| r.warm_solve_us);
    let cold_solve_us_mean = mean(|r| r.cold_solve_us);
    println!(
        "re-solve cost across the sweep: warm (adaptive) {warm_solve_us_mean:.1} µs/solve \
         vs cold (oracle) {cold_solve_us_mean:.1} µs/solve"
    );

    let bench = BenchJson {
        quick,
        seed: config.seed,
        scenarios: config.scenarios(),
        wans: config.wans,
        schedules_per_wan: config.schedules_per_wan,
        frames: config.frames,
        route_bias: config.route_bias,
        warm_solve_us_mean,
        cold_solve_us_mean,
        summary: report.summary.clone(),
        records: report.records,
    };
    match serde_json::to_string(&bench) {
        Ok(json) => {
            if let Some(parent) = std::path::Path::new(&json_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&json_path, json) {
                Ok(()) => eprintln!("BENCH json written to {json_path}"),
                Err(e) => eprintln!("could not write {json_path}: {e}"),
            }
        }
        Err(e) => eprintln!("could not serialize BENCH json: {e}"),
    }
}
