//! Live adaptive re-mapping under a seeded link-degradation scenario.
//!
//! Runs the same frame-paced steering loop on the two-route demo WAN
//! (`ricsa_core::adapt::demo_wan`) under three control policies — static
//! (the paper's measure-once-map-once), adaptive (passive telemetry +
//! change-point detection + warm re-solve + frame-boundary migration),
//! and oracle (re-solved from ground truth before every frame) — while a
//! scheduled event collapses the initially-optimal route to a fraction of
//! its bandwidth.  Prints per-policy loop delays before the event, after
//! it, and in steady state, the adaptive controller's re-map decision
//! latency, the warm-vs-cold re-solve cost, and the frame audit (zero
//! lost / zero duplicated frames across the migration).  A BENCH json
//! lands in `target/adapt_live.json`.
//!
//! Usage:
//! `cargo run --release -p ricsa-bench --bin adapt_live -- [--quick]
//!  [--frames N] [--seed S] [--json PATH]`
//!
//! `--quick` runs a smaller dataset and fewer frames (finishes in a few
//! seconds); the default run uses a Jet-scale dataset.  DESIGN.md §8
//! explains how to read the output.

use ricsa_adapt::monitor::AdaptConfig;
use ricsa_core::adapt::{demo_wan, run_adaptive_loop, AdaptPolicy, AdaptiveLoopSpec, AdaptiveRun};
use ricsa_netsim::time::SimTime;
use ricsa_pipemap::pipeline::{ModuleSpec, Pipeline};
use serde::Serialize;

/// Per-policy summary row of the printed table and the BENCH json.
#[derive(Debug, Serialize)]
struct PolicyStats {
    policy: String,
    frames: u64,
    pre_event_mean_s: Option<f64>,
    post_event_mean_s: Option<f64>,
    steady_mean_s: Option<f64>,
    remaps: usize,
    frames_lost: u64,
    frames_duplicated: u64,
    solve_us_total: f64,
    solves: u64,
}

#[derive(Debug, Serialize)]
struct BenchJson {
    quick: bool,
    seed: u64,
    frames: u64,
    event_at_s: f64,
    degrade_factor: f64,
    stats: Vec<PolicyStats>,
    /// Virtual seconds from the event to the adaptive migration commit.
    remap_latency_s: Option<f64>,
    /// adaptive steady-state mean / oracle steady-state mean (≤ 1.10 is
    /// the acceptance bar).
    adaptive_vs_oracle: Option<f64>,
    /// static post-event mean / adaptive post-event mean (the win).
    static_vs_adaptive_post: Option<f64>,
    /// Mean microseconds per re-solve: adaptive (warm) vs oracle (cold).
    warm_solve_us_mean: Option<f64>,
    cold_solve_us_mean: Option<f64>,
    /// The adaptive run's deterministic decision trace.
    decisions: Vec<ricsa_adapt::monitor::DecisionRecord>,
}

fn summarize(run: &AdaptiveRun, event_at: f64) -> PolicyStats {
    PolicyStats {
        policy: run.policy.clone(),
        frames: run.frames_completed,
        pre_event_mean_s: run.mean_delay_where(|s| s < event_at),
        post_event_mean_s: run.mean_delay_where(|s| s >= event_at),
        steady_mean_s: run.steady_state_mean(STEADY_TAIL),
        remaps: run.migrations.len(),
        frames_lost: run.frames_lost,
        frames_duplicated: run.frames_duplicated,
        solve_us_total: run.solve_us_total,
        solves: run.solves,
    }
}

/// Frames averaged for the steady-state column (well past detection and
/// migration for every policy).
const STEADY_TAIL: usize = 5;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.4}"),
        None => "-".into(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let frames: u64 = flag_value("--frames")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 16 } else { 24 });
    let seed: u64 = flag_value("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let json_path = flag_value("--json").unwrap_or_else(|| "target/adapt_live.json".into());

    // Quick: a 2 MB dataset keeps the three runs inside a few seconds of
    // wall clock.  Full: the paper's Jet dataset (16 MB).
    let dataset_bytes = if quick { 2e6 } else { 16e6 };
    let event_at = if quick { 1.5 } else { 4.0 };
    let degrade_factor = 0.08;

    let wan = demo_wan();
    let pipeline = Pipeline::new(
        "adapt-live",
        dataset_bytes,
        vec![
            ModuleSpec::new("filter", 2e-9, dataset_bytes),
            ModuleSpec::new("extract", 1e-8, dataset_bytes / 4.0),
            ModuleSpec::new("render", 5e-9, 2e5).requiring_graphics(),
        ],
    );
    let spec = AdaptiveLoopSpec {
        schedule: wan.degradation(event_at, degrade_factor),
        pipeline,
        source: wan.source,
        client: wan.client,
        cm: wan.cm,
        iterations: frames,
        seed,
        target_goodput: 200e6,
        adapt: AdaptConfig::default(),
        session: 1,
        max_virtual_time: SimTime::from_secs(600.0),
        topology: wan.topology.clone(),
    };

    eprintln!(
        "adapt_live: {frames} frames, {:.0} kB dataset, src–midA × {degrade_factor} at {event_at}s, seed {seed}...",
        dataset_bytes / 1e3
    );

    let run = |policy| run_adaptive_loop(&spec, policy).expect("demo WAN always admits a mapping");
    let static_run = run(AdaptPolicy::Static);
    let adaptive = run(AdaptPolicy::Adaptive);
    let oracle = run(AdaptPolicy::Oracle);

    // Determinism spot check: the decision trace must reproduce per seed.
    let adaptive2 = run(AdaptPolicy::Adaptive);
    assert_eq!(
        adaptive.decisions, adaptive2.decisions,
        "decision trace must be deterministic per seed"
    );

    let stats: Vec<PolicyStats> = [&static_run, &adaptive, &oracle]
        .iter()
        .map(|r| summarize(r, event_at))
        .collect();

    println!(
        "{:<10}{:>8}{:>14}{:>15}{:>13}{:>8}{:>6}{:>5}",
        "policy", "frames", "pre-event(s)", "post-event(s)", "steady(s)", "remaps", "lost", "dup"
    );
    for s in &stats {
        println!(
            "{:<10}{:>8}{:>14}{:>15}{:>13}{:>8}{:>6}{:>5}",
            s.policy,
            s.frames,
            fmt_opt(s.pre_event_mean_s),
            fmt_opt(s.post_event_mean_s),
            fmt_opt(s.steady_mean_s),
            s.remaps,
            s.frames_lost,
            s.frames_duplicated,
        );
    }

    let adaptive_vs_oracle = match (
        adaptive.steady_state_mean(STEADY_TAIL),
        oracle.steady_state_mean(STEADY_TAIL),
    ) {
        (Some(a), Some(o)) if o > 0.0 => Some(a / o),
        _ => None,
    };
    let static_vs_adaptive_post = match (
        static_run.mean_delay_where(|s| s >= event_at),
        adaptive.mean_delay_where(|s| s >= event_at),
    ) {
        (Some(st), Some(a)) if a > 0.0 => Some(st / a),
        _ => None,
    };
    let warm_solve_us_mean =
        (adaptive.solves > 0).then(|| adaptive.solve_us_total / adaptive.solves as f64);
    let cold_solve_us_mean =
        (oracle.solves > 0).then(|| oracle.solve_us_total / oracle.solves as f64);

    if let Some(mig) = adaptive.migrations.first() {
        // The decision record carries the old mapping re-priced on the
        // *updated* estimate (the migration record keeps plan-time values).
        let decided = adaptive.decisions.iter().find(|d| d.remapped);
        println!(
            "adaptive re-map: {:?} -> {:?} at t={:.2}s (decision latency {:.2}s after the event), predicted {} -> {:.3}s",
            mig.old_path,
            mig.new_path,
            mig.at,
            adaptive.remap_latency_s.unwrap_or(f64::NAN),
            fmt_opt(decided.map(|d| d.current_predicted)),
            mig.predicted_new,
        );
    } else {
        println!("adaptive re-map: none (no confirmed change cleared the margin)");
    }
    println!(
        "steady state: adaptive/oracle = {}  |  post-event win: static/adaptive = {}x",
        fmt_opt(adaptive_vs_oracle),
        fmt_opt(static_vs_adaptive_post),
    );
    println!(
        "re-solve cost: warm (adaptive) {} µs/solve vs cold (oracle) {} µs/solve",
        fmt_opt(warm_solve_us_mean),
        fmt_opt(cold_solve_us_mean),
    );

    // Hard acceptance checks: fail loudly instead of printing nonsense.
    for s in &stats {
        assert_eq!(
            s.frames_lost, 0,
            "{}: lost frames across migration",
            s.policy
        );
        assert_eq!(s.frames_duplicated, 0, "{}: duplicated frames", s.policy);
    }
    if let (Some(st), Some(a)) = (
        static_run.mean_delay_where(|s| s >= event_at),
        adaptive.mean_delay_where(|s| s >= event_at),
    ) {
        assert!(a < st, "adaptive post-event mean {a} must beat static {st}");
    }
    if let Some(ratio) = adaptive_vs_oracle {
        assert!(
            ratio <= 1.10,
            "adaptive steady state must be within 10% of the oracle (got {ratio:.3})"
        );
    }

    let bench = BenchJson {
        quick,
        seed,
        frames,
        event_at_s: event_at,
        degrade_factor,
        stats,
        remap_latency_s: adaptive.remap_latency_s,
        adaptive_vs_oracle,
        static_vs_adaptive_post,
        warm_solve_us_mean,
        cold_solve_us_mean,
        decisions: adaptive.decisions.clone(),
    };
    match serde_json::to_string(&bench) {
        Ok(json) => {
            if let Some(parent) = std::path::Path::new(&json_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&json_path, json) {
                Ok(()) => eprintln!("BENCH json written to {json_path}"),
                Err(e) => eprintln!("could not write {json_path}: {e}"),
            }
        }
        Err(e) => eprintln!("could not serialize BENCH json: {e}"),
    }
}
