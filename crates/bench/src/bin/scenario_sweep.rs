//! Scenario sweep: evaluate the optimizer across generated WAN families.
//!
//! Generates Waxman and transit-stub topologies, maps the standard
//! isosurface pipeline onto each (relay-extended DP versus the
//! default-route baseline), simulates both loops on the discrete-event WAN,
//! and prints the win-rate / speedup distribution — the scenario-diversity
//! axis the paper's single six-site deployment (Fig. 8) cannot cover.
//! It also times the DP (pruned and unpruned) on large generated
//! topologies and writes everything as a BENCH json for trend tracking.
//!
//! Usage:
//! `cargo run --release -p ricsa-bench --bin scenario_sweep -- [--quick]
//!  [--scenarios N] [--no-sim] [--json PATH]`
//!
//! `--quick` runs 50 small simulated scenarios (CI scale, finishes in
//! seconds); the default is the full sweep (120 scenarios, up to 64 nodes,
//! Jet-sized dataset).  `--json PATH` overrides where the BENCH json goes
//! (default `target/scenario_sweep.json`).

use criterion::time_per_call;
use ricsa_core::sweep::{format_sweep_report, run_sweep, SweepConfig, SweepReport};
use ricsa_netsim::generators::{waxman, WaxmanParams};
use ricsa_pipemap::dp::{optimize_with, DpOptions};
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::Pipeline;
use serde::Serialize;

/// One row of the DP-scaling timing table.
#[derive(Debug, Serialize)]
struct DpTiming {
    nodes: usize,
    links: usize,
    pruned_us: f64,
    unpruned_us: f64,
    states_expanded_pruned: u64,
    states_expanded_unpruned: u64,
}

/// What the BENCH json records: the sweep statistics plus the DP timings.
#[derive(Debug, Serialize)]
struct BenchJson {
    quick: bool,
    scenarios: usize,
    analytic: ricsa_pipemap::sweep::SweepSummary,
    simulated: ricsa_pipemap::sweep::SweepSummary,
    dp_timings: Vec<DpTiming>,
    /// Mean cold solve time across the sweep's scenarios, microseconds.
    dp_cold_us_mean: f64,
    /// Mean warm re-solve time (cold optimum as incumbent) — the re-map
    /// cost adaptive control pays per decision (DESIGN.md §8).
    dp_warm_us_mean: f64,
}

fn dp_timings(quick: bool) -> Vec<DpTiming> {
    let sizes: &[usize] = if quick {
        &[50, 100, 200]
    } else {
        &[50, 100, 200, 400]
    };
    let mut rows = Vec::new();
    for &nodes in sizes {
        let wan = waxman(&WaxmanParams::sized(nodes), 7);
        let graph = NetGraph::from_topology(&wan.topology);
        let pipeline = Pipeline::isosurface(16e6, 2e-9, 2.5e-8, 0.35, 6e-9, 1e6);
        let (src, dst) = (wan.source.0, wan.client.0);
        let pruned_opts = DpOptions::relayed();
        let unpruned_opts = DpOptions {
            prune: false,
            relay: true,
        };
        let pruned_us = time_per_call(10, || {
            optimize_with(&pipeline, &graph, src, dst, &pruned_opts)
        })
        .as_secs_f64()
            * 1e6;
        let unpruned_us = time_per_call(10, || {
            optimize_with(&pipeline, &graph, src, dst, &unpruned_opts)
        })
        .as_secs_f64()
            * 1e6;
        let (_, ps) = optimize_with(&pipeline, &graph, src, dst, &pruned_opts);
        let (_, us) = optimize_with(&pipeline, &graph, src, dst, &unpruned_opts);
        rows.push(DpTiming {
            nodes: graph.node_count(),
            links: graph.link_count(),
            pruned_us,
            unpruned_us,
            states_expanded_pruned: ps.states_expanded,
            states_expanded_unpruned: us.states_expanded,
        });
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_sim = args.iter().any(|a| a == "--no-sim");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    if let Some(n) = flag_value("--scenarios").and_then(|s| s.parse().ok()) {
        config.scenarios = n;
    }
    if no_sim {
        config.simulate = false;
    }
    let json_path = flag_value("--json").unwrap_or_else(|| "target/scenario_sweep.json".into());

    eprintln!(
        "running scenario sweep: {} scenarios, {}-{} nodes, {} KiB dataset, simulation {}...",
        config.scenarios,
        config.min_nodes,
        config.max_nodes,
        config.dataset_bytes >> 10,
        if config.simulate { "on" } else { "off" }
    );
    let report: SweepReport = run_sweep(&config);
    println!("{}", format_sweep_report(&report));

    eprintln!("timing the DP on large generated topologies...");
    let timings = dp_timings(quick);
    println!("DP scaling on generated Waxman WANs (median per call):");
    println!(
        "{:>8}{:>8}{:>14}{:>16}{:>12}{:>14}",
        "nodes", "links", "pruned (µs)", "unpruned (µs)", "expanded", "vs unpruned"
    );
    for t in &timings {
        println!(
            "{:>8}{:>8}{:>14.1}{:>16.1}{:>12}{:>14}",
            t.nodes,
            t.links,
            t.pruned_us,
            t.unpruned_us,
            t.states_expanded_pruned,
            t.states_expanded_unpruned
        );
    }

    let solved: Vec<&ricsa_pipemap::sweep::SweepRecord> = report
        .outcomes
        .iter()
        .map(|o| &o.record)
        .filter(|r| r.optimal_delay.is_some())
        .collect();
    let mean = |f: fn(&ricsa_pipemap::sweep::SweepRecord) -> f64| {
        if solved.is_empty() {
            0.0
        } else {
            solved.iter().map(|r| f(r)).sum::<f64>() / solved.len() as f64
        }
    };
    let (dp_cold_us_mean, dp_warm_us_mean) = (mean(|r| r.dp_cold_us), mean(|r| r.dp_warm_us));
    println!(
        "DP re-solve cost over the sweep: cold {dp_cold_us_mean:.1} µs vs warm-started {dp_warm_us_mean:.1} µs per scenario"
    );

    let bench = BenchJson {
        quick,
        scenarios: config.scenarios,
        analytic: report.analytic.clone(),
        simulated: report.simulated.clone(),
        dp_timings: timings,
        dp_cold_us_mean,
        dp_warm_us_mean,
    };
    match serde_json::to_string(&bench) {
        Ok(json) => {
            if let Some(parent) = std::path::Path::new(&json_path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&json_path, json) {
                Ok(()) => eprintln!("BENCH json written to {json_path}"),
                Err(e) => eprintln!("could not write {json_path}: {e}"),
            }
        }
        Err(e) => eprintln!("could not serialize BENCH json: {e}"),
    }
}
