//! Supplementary experiment for Sections 4.3–4.4: accuracy of the
//! cost models that feed the optimizer — the EPB linear-regression
//! bandwidth estimate and the isosurface / ray-casting / streamline
//! processing-time models.
//!
//! Usage: `cargo run --release -p ricsa-bench --bin cost_models`

use ricsa_netsim::link::LinkSpec;
use ricsa_netsim::node::NodeSpec;
use ricsa_netsim::topology::Topology;
use ricsa_transport::epb::{measure_path, ActiveMeasurementConfig};
use ricsa_viz::camera::Camera;
use ricsa_viz::cost::{IsosurfaceCostModel, RaycastCostModel, StreamlineCostModel};
use ricsa_viz::isosurface::extract_isosurface;
use ricsa_viz::raycast::{raycast, RaycastConfig};
use ricsa_viz::streamline::{grid_seeds, trace_streamlines, StreamlineConfig};
use ricsa_viz::transfer::TransferFunction;
use ricsa_vizdata::field::Dims;
use ricsa_vizdata::octree::Octree;
use ricsa_vizdata::synth::{SyntheticVolume, VolumeKind};
use std::time::Instant;

fn main() {
    // --- Effective path bandwidth regression (Section 4.3). ---
    println!("EPB active-measurement regression vs configured link bandwidth:");
    println!(
        "{:>14}{:>18}{:>18}{:>10}",
        "link (MB/s)", "estimated (MB/s)", "min delay (ms)", "R^2"
    );
    for &mbps in &[10.0, 40.0, 100.0] {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        t.connect(a, b, LinkSpec::from_mbps(mbps, 0.02).with_queue_delay(2.0));
        let est = measure_path(&t, a, b, &ActiveMeasurementConfig::default(), 5)
            .expect("measurement succeeds");
        println!(
            "{:>14.2}{:>18.2}{:>18.2}{:>10.3}",
            mbps / 8.0,
            est.epb_bps / 1e6,
            est.min_delay * 1e3,
            est.r_squared
        );
    }

    // --- Isosurface extraction model (Section 4.4.1). ---
    println!("\nIsosurface extraction: predicted vs measured (fresh volumes):");
    let iso_model = IsosurfaceCostModel::calibrate(28, 4, 8);
    println!(
        "{:>12}{:>12}{:>16}{:>16}{:>10}",
        "volume", "isovalue", "predicted (ms)", "measured (ms)", "ratio"
    );
    for (kind, frac) in [
        (VolumeKind::BlastWave, 0.5),
        (VolumeKind::Jet, 0.4),
        (VolumeKind::NestedShells, 0.6),
    ] {
        let field = SyntheticVolume::new(kind, Dims::cube(48), 77).generate();
        let octree = Octree::build(&field, 8);
        let (lo, hi) = field.value_range();
        let iso = lo + frac * (hi - lo);
        let active = octree.active_block_count(iso);
        let predicted = iso_model.predict_extraction(active, octree.cells_per_block(), 1.0);
        let start = Instant::now();
        let _ = extract_isosurface(&field, iso, 8);
        let measured = start.elapsed().as_secs_f64();
        println!(
            "{:>12}{:>12.3}{:>16.2}{:>16.2}{:>10.2}",
            format!("{kind:?}"),
            iso,
            predicted * 1e3,
            measured * 1e3,
            predicted / measured.max(1e-9)
        );
    }

    // --- Ray casting model (Section 4.4.2). ---
    let rc_model = RaycastCostModel::calibrate(24);
    let field = SyntheticVolume::new(VolumeKind::RadialRamp, Dims::cube(40), 3).generate();
    let cam = Camera::with_viewport(96, 96);
    let tf = TransferFunction::grayscale_ramp(-1.0, 1.0);
    let start = Instant::now();
    let (_, stats) = raycast(
        &field,
        &cam,
        &tf,
        &RaycastConfig::without_early_termination(),
    );
    let measured = start.elapsed().as_secs_f64();
    let predicted = rc_model.predict(
        1,
        stats.rays,
        (stats.samples / stats.rays as u64) as usize,
        1.0,
    );
    println!(
        "\nRay casting:   predicted {:.2} ms, measured {:.2} ms (t_sample = {:.2} ns)",
        predicted * 1e3,
        measured * 1e3,
        rc_model.t_sample * 1e9
    );

    // --- Streamline model (Section 4.4.3). ---
    let sl_model = StreamlineCostModel::calibrate(24);
    let vec_field = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(32), 4).generate_vector();
    let seeds = grid_seeds(&vec_field, 12, 1.0);
    let config = StreamlineConfig::default();
    let start = Instant::now();
    let set = trace_streamlines(&vec_field, &seeds, &config);
    let measured = start.elapsed().as_secs_f64();
    let predicted = sl_model.predict(seeds.len(), set.total_steps() / seeds.len().max(1), 1.0);
    println!(
        "Streamlines:   predicted {:.2} ms, measured {:.2} ms (T_advection = {:.2} ns)",
        predicted * 1e3,
        measured * 1e3,
        sl_model.t_advection * 1e9
    );
}
