//! The adaptive re-mapping driver: monitor → decide → migrate, live.
//!
//! [`run_adaptive_loop`] executes a steering loop on a time-varying WAN
//! ([`ricsa_netsim::dynamics`]) under one of three control policies:
//!
//! * [`AdaptPolicy::Static`] — the paper's behaviour: measure once, map
//!   once, never look again;
//! * [`AdaptPolicy::Adaptive`] — the `ricsa-adapt` monitor ingests the
//!   passive per-link telemetry each frame produces, and when a confirmed
//!   change clears the re-map margin the driver migrates the pipeline at
//!   the next frame boundary;
//! * [`AdaptPolicy::Oracle`] — re-solves from scratch before every frame
//!   with the *true* current link parameters (maintained by replaying the
//!   event schedule onto a topology copy).  This is the unachievable
//!   upper bound the adaptive controller is measured against.
//!
//! # Migration protocol (and its no-loss / no-duplication invariant)
//!
//! The loop is frame-paced: the driver requests frame `k` only after frame
//! `k-1` reached the client, so a *frame boundary* is a natural quiescent
//! point — no application payload is in flight except stale
//! final-ACK handshakes.  A migration then performs, in order:
//!
//! 1. **Quiesce**: run the simulator a short drain window so outstanding
//!    final-ACK exchanges of the completed frame settle.
//! 2. **Teardown**: remove the old stage applications.  Anything still
//!    addressed to them is, by construction, a retransmission of data the
//!    loop already consumed.
//! 3. **Handoff over the control channel**: the CM redistributes the new
//!    visualization routing table to every node of the new mapping
//!    (redundant control datagrams over the simulated WAN — the handoff
//!    is paid for, not teleported).
//! 4. **Resume**: install the new stages with `first_iteration = k`, so a
//!    straggler datagram from a pre-migration flow (iteration `< k`) is
//!    re-acknowledged and *never* opens a receiver — the hazard that
//!    would otherwise wedge the new loop.
//!
//! Because frames are only requested after their predecessor completed,
//! and replacement stages refuse pre-migration iterations, every frame
//! index is delivered **exactly once**: the run audit counts
//! `IterationCompleted` trace records per index and reports any loss or
//! duplication (the `adapt_live` bench asserts both are zero).
//!
//! DESIGN.md §8 documents the full control plane.

use crate::message::{ControlMessage, CONTROL_REDUNDANCY};
use crate::stage::{LinkTelemetrySink, StageApp, StageConfig};
use ricsa_adapt::monitor::{AdaptConfig, AdaptMonitor, Decision, DecisionRecord};
use ricsa_netsim::dynamics::{apply_event_to_topology, DynamicScenario, LinkChange, LinkEvent};
use ricsa_netsim::link::{LinkId, LinkSpec};
use ricsa_netsim::node::{NodeId, NodeSpec};
use ricsa_netsim::sim::Simulator;
use ricsa_netsim::time::SimTime;
use ricsa_netsim::topology::Topology;
use ricsa_netsim::trace::TraceKind;
use ricsa_pipemap::dp::{optimize_with, OptimizedMapping};
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::Pipeline;
use ricsa_pipemap::vrt::VisualizationRoutingTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the loop reacts to network change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdaptPolicy {
    /// Measure once, map once (the paper's behaviour).
    Static,
    /// Passive monitoring + change-point detection + warm re-solve +
    /// frame-boundary migration.
    Adaptive,
    /// Re-solve from scratch with ground-truth link state before every
    /// frame (upper bound; unrealizable outside a simulator).
    Oracle,
}

impl AdaptPolicy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            AdaptPolicy::Static => "static",
            AdaptPolicy::Adaptive => "adaptive",
            AdaptPolicy::Oracle => "oracle",
        }
    }
}

/// Everything one adaptive-loop run is configured with.
#[derive(Debug, Clone)]
pub struct AdaptiveLoopSpec {
    /// The WAN the loop runs on.
    pub topology: Topology,
    /// The time-varying scenario applied to it.
    pub schedule: DynamicScenario,
    /// The visualization pipeline being mapped.
    pub pipeline: Pipeline,
    /// Data-source node.
    pub source: NodeId,
    /// Client node.
    pub client: NodeId,
    /// Central-management node (must not be the data source).
    pub cm: NodeId,
    /// Frames to pull through the loop.
    pub iterations: u64,
    /// Simulator seed.
    pub seed: u64,
    /// Target goodput of the stage-to-stage flows, bytes/second.
    pub target_goodput: f64,
    /// Monitor configuration (thresholds, hysteresis, margin, cooldown).
    pub adapt: AdaptConfig,
    /// Session identifier (flow-id namespace).
    pub session: u64,
    /// Virtual-time budget for the whole run.
    pub max_virtual_time: SimTime,
}

/// One executed migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// Virtual time the migration committed, seconds.
    pub at: f64,
    /// The first frame served by the new mapping.
    pub first_iteration: u64,
    /// Data path before.
    pub old_path: Vec<usize>,
    /// Data path after.
    pub new_path: Vec<usize>,
    /// Predicted delay of the old mapping at decision time.
    pub predicted_old: f64,
    /// Predicted delay of the new mapping.
    pub predicted_new: f64,
    /// Control datagrams injected for the VRT handoff.
    pub handoff_messages: u64,
}

/// The outcome of one adaptive-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveRun {
    /// Which policy ran.
    pub policy: String,
    /// Measured end-to-end delay of each completed frame, frame order.
    pub delays: Vec<f64>,
    /// Virtual start time of each frame (the data source's
    /// `iteration-start` trace note), frame order.
    pub starts: Vec<f64>,
    /// The data path each frame travelled, frame order.
    pub paths: Vec<Vec<usize>>,
    /// The monitor's deterministic decision trace (empty for
    /// static/oracle).
    pub decisions: Vec<DecisionRecord>,
    /// Executed migrations.
    pub migrations: Vec<MigrationRecord>,
    /// Frames requested.
    pub frames_requested: u64,
    /// Distinct frames delivered to the client.
    pub frames_completed: u64,
    /// Requested frames never delivered (must be 0 on a healthy run).
    pub frames_lost: u64,
    /// Extra deliveries of an already-delivered frame (must be 0).
    pub frames_duplicated: u64,
    /// Virtual seconds from the schedule's first event to the first
    /// migration commit (`None` when either never happened).
    pub remap_latency_s: Option<f64>,
    /// Wall-clock microseconds spent in re-solves, and how many ran
    /// (warm solves for adaptive, cold solves for oracle).
    pub solve_us_total: f64,
    /// Number of re-solves behind `solve_us_total`.
    pub solves: u64,
}

impl AdaptiveRun {
    /// Mean delay of the frames whose start time satisfies `pred`
    /// (`None` when no frame qualifies).
    pub fn mean_delay_where(&self, pred: impl Fn(f64) -> bool) -> Option<f64> {
        let picked: Vec<f64> = self
            .delays
            .iter()
            .zip(&self.starts)
            .filter(|(_, s)| pred(**s))
            .map(|(d, _)| *d)
            .collect();
        if picked.is_empty() {
            None
        } else {
            Some(picked.iter().sum::<f64>() / picked.len() as f64)
        }
    }

    /// Mean delay of the last `n` completed frames.
    pub fn steady_state_mean(&self, n: usize) -> Option<f64> {
        if self.delays.is_empty() {
            return None;
        }
        let tail = &self.delays[self.delays.len().saturating_sub(n)..];
        Some(tail.iter().sum::<f64>() / tail.len() as f64)
    }
}

/// Drain window run before tearing the old stages down, seconds of
/// virtual time: long enough for the completed frame's final-ACK
/// handshakes to settle, short against any frame time.
const QUIESCE_S: f64 = 0.25;

/// Virtual time the migration waits after injecting the VRT handoff so
/// the control datagrams actually cross the WAN before the new loop is
/// declared live — the handoff is paid for, not teleported.  Must exceed
/// the one-way control latency of any supported topology.
const HANDOFF_SETTLE_S: f64 = 0.05;

/// Polling granularity of the frame-completion wait, virtual seconds.
const STEP_S: f64 = 0.25;

/// Run one policy over the spec.  Errors only on structurally impossible
/// inputs (no feasible initial mapping, a self-revisiting data path, or
/// the CM placed on the data source).
pub fn run_adaptive_loop(
    spec: &AdaptiveLoopSpec,
    policy: AdaptPolicy,
) -> Result<AdaptiveRun, String> {
    if spec.cm == spec.source {
        return Err("the CM node must differ from the data source".into());
    }
    let base_graph = NetGraph::from_topology(&spec.topology);
    let (initial, _) = optimize_with(
        &spec.pipeline,
        &base_graph,
        spec.source.0,
        spec.client.0,
        &spec.adapt.options,
    );
    let initial = initial.ok_or_else(|| "no feasible initial mapping".to_string())?;

    let mut sim = Simulator::new(spec.topology.clone(), spec.seed);
    sim.apply_scenario(&spec.schedule);

    let telemetry: LinkTelemetrySink = LinkTelemetrySink::default();
    let mut monitor = (policy == AdaptPolicy::Adaptive).then(|| {
        AdaptMonitor::with_initial(
            spec.pipeline.clone(),
            base_graph.clone(),
            spec.source.0,
            spec.client.0,
            spec.adapt.clone(),
            initial.clone(),
        )
    });

    // Oracle ground truth: the schedule replayed onto a topology copy.
    let mut oracle_live = spec.topology.clone();
    let mut oracle_cursor = 0usize;

    let mut current = initial;
    let mut installed =
        install_stages(&mut sim, spec, &current, 0, &telemetry).map_err(|e| e.to_string())?;
    let mut migrations: Vec<MigrationRecord> = Vec::new();
    let mut paths: Vec<Vec<usize>> = Vec::new();
    let mut pending_remap: Option<Box<OptimizedMapping>> = None;
    let mut solve_us_total = 0.0;
    let mut solves = 0u64;
    let mut frames_requested = 0u64;
    let mut audit = TraceAudit::default();

    'frames: for k in 0..spec.iterations {
        // Policy hook: decide the mapping frame k runs on.
        let switch_to: Option<OptimizedMapping> = match policy {
            AdaptPolicy::Static => None,
            AdaptPolicy::Adaptive => pending_remap.take().map(|b| *b),
            AdaptPolicy::Oracle => {
                let now = sim.now();
                while oracle_cursor < spec.schedule.events.len()
                    && spec.schedule.events[oracle_cursor].at.as_secs() <= now.as_secs()
                {
                    apply_event_to_topology(
                        &mut oracle_live,
                        &spec.topology,
                        &spec.schedule.events[oracle_cursor],
                    );
                    oracle_cursor += 1;
                }
                let g = NetGraph::from_topology(&oracle_live);
                let started = std::time::Instant::now();
                let (opt, _) = optimize_with(
                    &spec.pipeline,
                    &g,
                    spec.source.0,
                    spec.client.0,
                    &spec.adapt.options,
                );
                solve_us_total += started.elapsed().as_secs_f64() * 1e6;
                solves += 1;
                // Any mapping change counts — a shifted module grouping on
                // the same path is still a different (better) deployment,
                // and the oracle exists to be the true re-solved optimum.
                opt.filter(|o| o.mapping != current.mapping)
            }
        };
        if let Some(next) = switch_to {
            let record = migrate(
                &mut sim,
                spec,
                &mut installed,
                &current,
                &next,
                k,
                &telemetry,
            )
            .map_err(|e| e.to_string())?;
            migrations.push(record);
            current = next;
        }

        // Request frame k from the data source, CM-relayed semantics:
        // the Begin crosses the WAN from the CM node.
        let begin = ControlMessage::BeginIteration {
            session: spec.session,
            iteration: k,
        };
        let source_node = NodeId(current.mapping.path[0]);
        for _ in 0..CONTROL_REDUNDANCY {
            sim.inject(spec.cm, source_node, begin.to_payload());
        }
        frames_requested += 1;

        // Drive the simulator until the client reports frame k.
        let mut retries = 0u32;
        loop {
            if sim.now() >= spec.max_virtual_time {
                break 'frames;
            }
            let target = SimTime::from_secs(sim.now().as_secs() + STEP_S);
            let reached = sim.run_until(target.min(spec.max_virtual_time));
            audit.update(&sim);
            if audit.completions.contains_key(&k) {
                break;
            }
            // Event queue drained without the frame completing: every
            // redundant Begin copy was lost before reaching the source
            // (nothing else leaves the loop idle).  Re-inject a fresh
            // request a bounded number of times.
            if reached.as_secs() + 1e-9 < target.as_secs() {
                retries += 1;
                if retries > 16 {
                    break 'frames;
                }
                for _ in 0..CONTROL_REDUNDANCY {
                    sim.inject(spec.cm, source_node, begin.to_payload());
                }
            }
        }
        paths.push(current.mapping.path.clone());

        // Feed the monitor the telemetry this frame produced, in
        // deterministic (sorted) link order, and collect its decision.
        if let Some(monitor) = monitor.as_mut() {
            let snapshot: BTreeMap<(usize, usize), _> = telemetry
                .borrow()
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect();
            for ((from, to), t) in snapshot {
                monitor.ingest(from, to, &t);
            }
            if let Decision::Remap(opt) = monitor.evaluate(sim.now().as_secs()) {
                pending_remap = Some(opt);
            }
        }
    }

    // Audit the trace: every requested frame delivered exactly once?
    audit.update(&sim);
    let per_frame = &audit.completions;
    let starts_by_frame = &audit.starts;
    let frames_completed = per_frame.len() as u64;
    let frames_duplicated: u64 = per_frame
        .values()
        .map(|(count, _)| (count - 1) as u64)
        .sum();
    let frames_lost = (0..frames_requested)
        .filter(|k| !per_frame.contains_key(k))
        .count() as u64;
    let mut delays = Vec::new();
    let mut starts = Vec::new();
    for k in 0..frames_requested {
        if let (Some((_, finished_at)), Some(start)) = (per_frame.get(&k), starts_by_frame.get(&k))
        {
            // Loop delay = image at client minus dataset served at source
            // (the paper's Fig. 9 quantity), not the client-local duration
            // the trace record carries.
            delays.push(*finished_at - *start);
            starts.push(*start);
        }
    }
    let (monitor_us, monitor_solves) = monitor
        .as_ref()
        .map(|m| m.solve_timing())
        .unwrap_or((0.0, 0));
    let remap_latency_s = match (spec.schedule.first_event_at(), migrations.first()) {
        (Some(event), Some(mig)) => Some(mig.at - event.as_secs()),
        _ => None,
    };
    Ok(AdaptiveRun {
        policy: policy.name().to_string(),
        delays,
        starts,
        paths,
        decisions: monitor.map(|m| m.decisions().to_vec()).unwrap_or_default(),
        migrations,
        frames_requested,
        frames_completed,
        frames_lost,
        frames_duplicated,
        remap_latency_s,
        solve_us_total: solve_us_total + monitor_us,
        solves: solves + monitor_solves,
    })
}

/// Incremental trace audit: the frame-wait loop polls the trace every
/// [`STEP_S`], so scanning from the start each time would be quadratic in
/// trace length — this cursor only ever reads events once.
#[derive(Default)]
struct TraceAudit {
    /// Trace events consumed so far.
    pos: usize,
    /// `IterationCompleted` per frame: `(count, first completion time)`.
    completions: BTreeMap<u64, (u32, f64)>,
    /// First `iteration-start:<k>` note per frame.
    starts: BTreeMap<u64, f64>,
}

impl TraceAudit {
    fn update(&mut self, sim: &Simulator) {
        let events = &sim.trace().events;
        for event in &events[self.pos..] {
            match &event.kind {
                TraceKind::IterationCompleted { iteration, .. } => {
                    let entry = self
                        .completions
                        .entry(*iteration)
                        .or_insert((0, event.at.as_secs()));
                    entry.0 += 1;
                }
                TraceKind::Note { label, .. } => {
                    if let Some(k) = label.strip_prefix("iteration-start:") {
                        if let Ok(k) = k.parse::<u64>() {
                            self.starts.entry(k).or_insert(event.at.as_secs());
                        }
                    }
                }
                _ => {}
            }
        }
        self.pos = events.len();
    }
}

/// Install one [`StageApp`] per node of `mapping`, paced externally (no
/// client drive), starting at `first_iteration`.
fn install_stages(
    sim: &mut Simulator,
    spec: &AdaptiveLoopSpec,
    mapping: &OptimizedMapping,
    first_iteration: u64,
    telemetry: &LinkTelemetrySink,
) -> Result<Vec<NodeId>, String> {
    let path = &mapping.mapping.path;
    for (i, node) in path.iter().enumerate() {
        if path[i + 1..].contains(node) {
            return Err(format!("data path revisits node {node}: {path:?}"));
        }
    }
    let graph = NetGraph::from_topology(sim.topology());
    let vrt = VisualizationRoutingTable::from_mapping(
        &spec.pipeline,
        &graph,
        &mapping.mapping,
        mapping.delay.total,
    );
    let hop_count = path.len();
    let mut installed = Vec::with_capacity(hop_count);
    for (i, &node_idx) in path.iter().enumerate() {
        let node = NodeId(node_idx);
        let entry = &vrt.entries[i];
        let power = graph.node(node_idx).power;
        let processing: f64 = mapping.mapping.groups[i]
            .iter()
            .map(|&m| spec.pipeline.processing_time(m, power))
            .sum();
        let incoming_bytes = if i == 0 {
            0
        } else {
            vrt.entries[i - 1].forward_bytes as usize
        };
        let config = StageConfig {
            session: spec.session,
            hop_index: i,
            hop_count,
            previous: (i > 0).then(|| NodeId(path[i - 1])),
            next: (i + 1 < hop_count).then(|| NodeId(path[i + 1])),
            incoming_bytes,
            outgoing_bytes: entry.forward_bytes as usize,
            processing_seconds: processing,
            target_goodput: spec.target_goodput,
            stage_label: format!("{}[{}]", entry.node_name, entry.modules.join(",")),
            drive: None,
            first_iteration,
            telemetry: Some(telemetry.clone()),
        };
        sim.install(node, Box::new(StageApp::new(config)));
        installed.push(node);
    }
    Ok(installed)
}

/// Execute one migration at the current frame boundary; see the module
/// docs for the protocol and its invariant.
fn migrate(
    sim: &mut Simulator,
    spec: &AdaptiveLoopSpec,
    installed: &mut Vec<NodeId>,
    old: &OptimizedMapping,
    new: &OptimizedMapping,
    first_iteration: u64,
    telemetry: &LinkTelemetrySink,
) -> Result<MigrationRecord, String> {
    // 1. Quiesce: let the completed frame's final-ACK handshakes settle.
    let drain_until = SimTime::from_secs(sim.now().as_secs() + QUIESCE_S);
    sim.run_until(drain_until);
    // 2. Teardown.
    for node in installed.drain(..) {
        sim.take_app(node);
    }
    // 3. Handoff: the CM redistributes the routing table over the control
    //    channel (paid for on the simulated WAN like any control message).
    let graph = NetGraph::from_topology(sim.topology());
    let vrt = VisualizationRoutingTable::from_mapping(
        &spec.pipeline,
        &graph,
        &new.mapping,
        new.delay.total,
    );
    let delivery = ControlMessage::VrtDelivery {
        session: spec.session,
        table: vrt,
    };
    let mut handoff_messages = 0u64;
    for &node_idx in &new.mapping.path {
        let node = NodeId(node_idx);
        if node == spec.cm {
            continue; // the CM already holds the table
        }
        for _ in 0..CONTROL_REDUNDANCY {
            sim.inject(spec.cm, node, delivery.to_payload());
            handoff_messages += 1;
        }
    }
    // 4. Resume: fresh stages that refuse pre-migration iterations,
    //    installed before the handoff datagrams land, then a settle window
    //    so the migration commits only after the control channel actually
    //    delivered the table — its latency is part of the adaptation cost.
    *installed = install_stages(sim, spec, new, first_iteration, telemetry)?;
    let settle_until = SimTime::from_secs(sim.now().as_secs() + HANDOFF_SETTLE_S);
    sim.run_until(settle_until);
    Ok(MigrationRecord {
        at: sim.now().as_secs(),
        first_iteration,
        old_path: old.mapping.path.clone(),
        new_path: new.mapping.path.clone(),
        predicted_old: old.delay.total,
        predicted_new: new.delay.total,
        handoff_messages,
    })
}

// ---------------------------------------------------------------- demo WAN

/// The two-route demonstration WAN used by the `adapt_live` bench and the
/// adaptive-loop tests, plus the link ids its degradation scenario
/// targets.
#[derive(Debug, Clone)]
pub struct DemoWan {
    /// The topology: src, midA, midB, client, cm.
    pub topology: Topology,
    /// Headless data source.
    pub source: NodeId,
    /// The fast intermediate (initially optimal route).
    pub mid_a: NodeId,
    /// The alternative intermediate.
    pub mid_b: NodeId,
    /// Graphics-capable client.
    pub client: NodeId,
    /// Central-management node, off the data path.
    pub cm: NodeId,
    /// Both directions of the src–midA link (the degradation target).
    pub src_mid_a: (LinkId, LinkId),
}

/// Build the demo WAN: two candidate routes of different quality plus a
/// thin direct link, with the CM hanging off the side.  Clean links (no
/// loss/jitter) keep the bench exactly reproducible; the dynamics come
/// from the scheduled events.
pub fn demo_wan() -> DemoWan {
    let mut t = Topology::new();
    let source = t.add_node(NodeSpec::headless("src", 1.0));
    let mid_a = t.add_node(NodeSpec::cluster("midA", 6.0, 8));
    let mid_b = t.add_node(NodeSpec::cluster("midB", 5.0, 8));
    let client = t.add_node(NodeSpec::workstation("client", 1.5));
    let cm = t.add_node(NodeSpec::workstation("cm", 1.0));
    let src_mid_a = t.connect(source, mid_a, LinkSpec::from_mbps(320.0, 0.008));
    t.connect(mid_a, client, LinkSpec::from_mbps(320.0, 0.008));
    t.connect(source, mid_b, LinkSpec::from_mbps(200.0, 0.012));
    t.connect(mid_b, client, LinkSpec::from_mbps(200.0, 0.012));
    t.connect(source, client, LinkSpec::from_mbps(40.0, 0.030));
    t.connect(cm, source, LinkSpec::from_mbps(80.0, 0.010));
    t.connect(cm, client, LinkSpec::from_mbps(80.0, 0.010));
    DemoWan {
        topology: t,
        source,
        mid_a,
        mid_b,
        client,
        cm,
        src_mid_a,
    }
}

impl DemoWan {
    /// A degradation scenario for this WAN: at `at` seconds both
    /// directions of src–midA collapse to `factor` of their bandwidth
    /// (and never recover — the route must be abandoned, not waited out).
    pub fn degradation(&self, at: f64, factor: f64) -> DynamicScenario {
        let mk = |link| LinkEvent {
            at: SimTime::from_secs(at),
            link,
            change: LinkChange::ScaleBandwidth { factor },
        };
        DynamicScenario {
            label: format!("src–midA × {factor} at {at}s"),
            seed: 0,
            events: vec![mk(self.src_mid_a.0), mk(self.src_mid_a.1)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_pipemap::pipeline::ModuleSpec;

    fn demo_pipeline() -> Pipeline {
        // A light pipeline (half-MB dataset) so the loop test stays fast
        // while transfers still dominate processing.
        Pipeline::new(
            "adapt-test",
            512e3,
            vec![
                ModuleSpec::new("filter", 2e-9, 512e3),
                ModuleSpec::new("extract", 1e-8, 128e3),
                ModuleSpec::new("render", 5e-9, 64e3).requiring_graphics(),
            ],
        )
    }

    fn spec(iterations: u64, event_at: f64) -> AdaptiveLoopSpec {
        let wan = demo_wan();
        AdaptiveLoopSpec {
            schedule: wan.degradation(event_at, 0.08),
            pipeline: demo_pipeline(),
            source: wan.source,
            client: wan.client,
            cm: wan.cm,
            iterations,
            seed: 11,
            target_goodput: 200e6,
            adapt: AdaptConfig::default(),
            session: 1,
            max_virtual_time: SimTime::from_secs(600.0),
            topology: wan.topology,
        }
    }

    #[test]
    fn static_loop_completes_every_frame_exactly_once() {
        let run = run_adaptive_loop(&spec(4, 1e9), AdaptPolicy::Static).unwrap();
        assert_eq!(run.frames_requested, 4);
        assert_eq!(run.frames_completed, 4);
        assert_eq!(run.frames_lost, 0);
        assert_eq!(run.frames_duplicated, 0);
        assert_eq!(run.delays.len(), 4);
        assert!(run.migrations.is_empty());
        assert!(run.delays.iter().all(|d| *d > 0.0));
        // Initial mapping routes through midA.
        assert!(
            run.paths[0].contains(&1),
            "expected midA in {:?}",
            run.paths
        );
    }

    #[test]
    fn adaptive_loop_migrates_after_the_event_and_beats_static() {
        let event_at = 1.0;
        let s = spec(14, event_at);
        let run_static = run_adaptive_loop(&s, AdaptPolicy::Static).unwrap();
        let adaptive = run_adaptive_loop(&s, AdaptPolicy::Adaptive).unwrap();
        let oracle = run_adaptive_loop(&s, AdaptPolicy::Oracle).unwrap();

        for run in [&run_static, &adaptive, &oracle] {
            assert_eq!(run.frames_lost, 0, "{}: lost frames", run.policy);
            assert_eq!(run.frames_duplicated, 0, "{}: dup frames", run.policy);
            assert_eq!(run.frames_completed, 14, "{}", run.policy);
        }
        // The adaptive controller migrated off midA exactly once.
        assert_eq!(adaptive.migrations.len(), 1, "{:?}", adaptive.migrations);
        let mig = &adaptive.migrations[0];
        assert!(mig.old_path.contains(&1) && !mig.new_path.contains(&1));
        assert!(adaptive.remap_latency_s.unwrap() > 0.0);
        // Steady state: adaptive ≈ oracle, both beating static clearly.
        let tail = 4;
        let s_tail = run_static.steady_state_mean(tail).unwrap();
        let a_tail = adaptive.steady_state_mean(tail).unwrap();
        let o_tail = oracle.steady_state_mean(tail).unwrap();
        assert!(
            a_tail < s_tail,
            "adaptive tail {a_tail} not better than static {s_tail}"
        );
        assert!(
            a_tail <= o_tail * 1.10,
            "adaptive tail {a_tail} not within 10% of oracle {o_tail}"
        );
    }

    #[test]
    fn adaptive_runs_are_deterministic_per_seed() {
        let s = spec(8, 1.0);
        let a = run_adaptive_loop(&s, AdaptPolicy::Adaptive).unwrap();
        let b = run_adaptive_loop(&s, AdaptPolicy::Adaptive).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.paths, b.paths);
        assert_eq!(
            a.migrations
                .iter()
                .map(|m| (m.at.to_bits(), m.new_path.clone()))
                .collect::<Vec<_>>(),
            b.migrations
                .iter()
                .map(|m| (m.at.to_bits(), m.new_path.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn misconfigured_specs_error() {
        let wan = demo_wan();
        let mut s = spec(1, 1e9);
        s.cm = wan.source;
        assert!(run_adaptive_loop(&s, AdaptPolicy::Static).is_err());
    }
}
