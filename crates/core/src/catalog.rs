//! The simulation/dataset catalog and standard pipeline construction.
//!
//! The client GUI lets the user "choose from a list of available simulation
//! codes" and of archival datasets; the CM turns the chosen source plus the
//! calibrated module cost models into the [`Pipeline`] handed to the
//! optimizer.

use ricsa_hydro::problems::Problem;
use ricsa_pipemap::pipeline::Pipeline;
use ricsa_viz::cost::PipelineCostDb;
use ricsa_vizdata::dataset::{DatasetCatalog, DatasetKind};
use serde::{Deserialize, Serialize};

/// What a steering session visualizes: a live simulation or an archival
/// dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionSpec {
    /// A live simulation producing a new dataset every cycle.
    Simulation {
        /// Which simulation code to run.
        problem: Problem,
        /// Approximate bytes of one output snapshot.
        snapshot_bytes: usize,
    },
    /// An archival (pre-generated) dataset.
    Archival {
        /// Which of the paper's datasets.
        dataset: DatasetKind,
    },
}

impl SessionSpec {
    /// The size of the dataset that traverses the pipeline per iteration.
    pub fn dataset_bytes(&self, catalog: &SimulationCatalog) -> usize {
        match self {
            SessionSpec::Simulation { snapshot_bytes, .. } => *snapshot_bytes,
            SessionSpec::Archival { dataset } => catalog.datasets.get(*dataset).nominal_bytes(),
        }
    }

    /// Catalog name of the source.
    pub fn source_name(&self) -> String {
        match self {
            SessionSpec::Simulation { problem, .. } => problem.name().to_string(),
            SessionSpec::Archival { dataset } => dataset.name().to_string(),
        }
    }
}

/// The catalog of steerable sources known to the central manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationCatalog {
    /// The archival datasets of the paper's evaluation.
    pub datasets: DatasetCatalog,
    /// The available simulation codes.
    pub simulations: Vec<Problem>,
    /// Calibrated per-module costs for the standard isosurface pipeline.
    pub costs: PipelineCostDb,
}

impl Default for SimulationCatalog {
    fn default() -> Self {
        SimulationCatalog {
            datasets: DatasetCatalog::paper_datasets(),
            simulations: vec![Problem::SodShockTube, Problem::BowShock],
            costs: PipelineCostDb::representative(),
        }
    }
}

impl SimulationCatalog {
    /// Resolve a source name ("Jet", "sod-shock-tube", ...) into a session
    /// specification.
    pub fn resolve(&self, name: &str) -> Option<SessionSpec> {
        for kind in DatasetKind::ALL {
            if kind.name().eq_ignore_ascii_case(name) {
                return Some(SessionSpec::Archival { dataset: kind });
            }
        }
        Problem::from_name(name).map(|problem| SessionSpec::Simulation {
            problem,
            snapshot_bytes: 16 << 20,
        })
    }

    /// All source names a client can request.
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = DatasetKind::ALL
            .iter()
            .map(|d| d.name().to_string())
            .collect();
        names.extend(self.simulations.iter().map(|p| p.name().to_string()));
        names
    }
}

/// Build the standard RICSA isosurface pipeline (filter → isosurface →
/// render) for a dataset of `dataset_bytes` using calibrated module costs.
pub fn standard_pipeline(dataset_bytes: usize, costs: &PipelineCostDb) -> Pipeline {
    Pipeline::isosurface(
        dataset_bytes as f64,
        costs.filter.seconds_per_byte,
        costs.isosurface.seconds_per_byte,
        costs.isosurface.output_ratio,
        costs.rendering.seconds_per_byte,
        costs.image_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_resolves_datasets_and_simulations() {
        let catalog = SimulationCatalog::default();
        assert!(matches!(
            catalog.resolve("Jet"),
            Some(SessionSpec::Archival {
                dataset: DatasetKind::Jet
            })
        ));
        assert!(matches!(
            catalog.resolve("viswoman"),
            Some(SessionSpec::Archival {
                dataset: DatasetKind::VisibleWoman
            })
        ));
        assert!(matches!(
            catalog.resolve("sod-shock-tube"),
            Some(SessionSpec::Simulation { .. })
        ));
        assert!(catalog.resolve("nonexistent").is_none());
        assert!(catalog.source_names().len() >= 5);
    }

    #[test]
    fn dataset_bytes_match_the_paper_sizes() {
        let catalog = SimulationCatalog::default();
        let jet = catalog.resolve("Jet").unwrap();
        let rage = catalog.resolve("Rage").unwrap();
        let vw = catalog.resolve("VisWoman").unwrap();
        assert!((jet.dataset_bytes(&catalog) as f64 / 1e6 - 16.0).abs() < 0.5);
        assert!((rage.dataset_bytes(&catalog) as f64 / 1e6 - 64.0).abs() < 0.5);
        assert!((vw.dataset_bytes(&catalog) as f64 / 1e6 - 108.0).abs() < 0.5);
        assert_eq!(jet.source_name(), "Jet");
    }

    #[test]
    fn standard_pipeline_scales_with_dataset_size() {
        let costs = PipelineCostDb::representative();
        let small = standard_pipeline(16 << 20, &costs);
        let large = standard_pipeline(108 << 20, &costs);
        assert_eq!(small.modules.len(), 3);
        assert!(large.source_bytes > small.source_bytes);
        // The mesh produced by extraction grows with the dataset; the final
        // image does not.
        assert!(large.modules[1].output_bytes > small.modules[1].output_bytes);
        assert_eq!(large.modules[2].output_bytes, small.modules[2].output_bytes);
    }
}
