//! Assembling a steering session on a topology.
//!
//! A [`SessionPlan`] is what the central-management node produces when a
//! steering request arrives: the pipeline for the requested dataset, the
//! chosen mapping (the optimizer's, or a forced path for the comparison
//! loops of Fig. 9, or the ParaView-style fixed deployment of Fig. 10), the
//! routing table, and the predicted delay.  [`SteeringSession`] turns a plan
//! into installed applications on a `ricsa-netsim` simulator and extracts
//! the measured per-iteration delays afterwards.

use crate::catalog::{standard_pipeline, SessionSpec, SimulationCatalog};
use crate::roles::CentralManagerApp;
use crate::stage::{ClientDrive, StageApp, StageConfig};
use ricsa_netsim::node::NodeId;
use ricsa_netsim::sim::Simulator;
use ricsa_netsim::time::SimTime;
use ricsa_netsim::topology::Topology;
use ricsa_pipemap::baselines::{best_split_on_path, paraview_crs_mapping};
use ricsa_pipemap::delay::{DelayBreakdown, Mapping};
use ricsa_pipemap::dp::optimize;
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::Pipeline;
use ricsa_pipemap::vrt::VisualizationRoutingTable;
use serde::{Deserialize, Serialize};

/// How the data path of a session is chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathChoice {
    /// Let the dynamic-programming optimizer pick the path and decomposition
    /// (RICSA's normal mode).
    Optimal,
    /// Force a specific data path (nodes from data source to client); the
    /// pipeline split across the path is still chosen optimally, matching
    /// how the paper configures its comparison loops.
    ForcedPath(Vec<NodeId>),
    /// A ParaView-style `-crs` deployment: data server → render server →
    /// client, with a protocol overhead factor applied to the predicted and
    /// simulated processing times.
    ParaViewCrs {
        /// The render-server node.
        render_server: NodeId,
        /// Multiplicative protocol/processing overhead (≥ 1).
        overhead: f64,
    },
}

/// The planned configuration of one steering session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionPlan {
    /// Session identifier.
    pub session: u64,
    /// What is being visualized.
    pub spec: SessionSpec,
    /// The pipeline handed to the optimizer.
    pub pipeline: Pipeline,
    /// The chosen mapping.
    pub mapping: Mapping,
    /// The routing table distributed around the loop.
    pub vrt: VisualizationRoutingTable,
    /// The analytical delay prediction for one iteration.
    pub predicted: DelayBreakdown,
    /// Processing-time multiplier applied on every stage (1.0 except for the
    /// ParaView baseline).
    pub processing_overhead: f64,
}

/// Errors produced while planning a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// The requested source is not in the catalog.
    UnknownSource(String),
    /// No feasible mapping exists for the requested path choice.
    Infeasible(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownSource(s) => write!(f, "unknown source '{s}'"),
            PlanError::Infeasible(m) => write!(f, "no feasible mapping: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A steering session: planning plus installation on a simulator.
pub struct SteeringSession;

impl SteeringSession {
    /// Plan a session: resolve the source, build the pipeline from the
    /// calibrated costs, and choose the mapping.
    pub fn plan(
        session: u64,
        topology: &Topology,
        catalog: &SimulationCatalog,
        source_name: &str,
        data_source: NodeId,
        client: NodeId,
        choice: &PathChoice,
    ) -> Result<SessionPlan, PlanError> {
        let spec = catalog
            .resolve(source_name)
            .ok_or_else(|| PlanError::UnknownSource(source_name.to_string()))?;
        let dataset_bytes = spec.dataset_bytes(catalog);
        let mut pipeline = standard_pipeline(dataset_bytes, &catalog.costs);
        let graph = NetGraph::from_topology(topology);
        let src = graph.index_of(data_source);
        let dst = graph.index_of(client);

        let (mapping, predicted, overhead) = match choice {
            PathChoice::Optimal => {
                let opt = optimize(&pipeline, &graph, src, dst)
                    .ok_or_else(|| PlanError::Infeasible("optimizer found no placement".into()))?;
                (opt.mapping, opt.delay, 1.0)
            }
            PathChoice::ForcedPath(path) => {
                let indices: Vec<usize> = path.iter().map(|n| graph.index_of(*n)).collect();
                let (mapping, delay) = best_split_on_path(&pipeline, &graph, &indices)
                    .ok_or_else(|| PlanError::Infeasible(format!("no split on path {path:?}")))?;
                (mapping, delay, 1.0)
            }
            PathChoice::ParaViewCrs {
                render_server,
                overhead,
            } => {
                let rs = graph.index_of(*render_server);
                // ParaView's heavier stack costs both extra processing and
                // extra bytes on the wire; inflate the pipeline accordingly.
                let mut heavy = pipeline.clone();
                heavy.source_bytes *= overhead.max(1.0);
                for module in &mut heavy.modules {
                    module.output_bytes *= overhead.max(1.0);
                }
                let (mapping, delay) =
                    paraview_crs_mapping(&heavy, &graph, src, rs, dst, *overhead).ok_or_else(
                        || PlanError::Infeasible("ParaView crs deployment infeasible".into()),
                    )?;
                pipeline = heavy;
                (mapping, delay, overhead.max(1.0))
            }
        };
        let vrt =
            VisualizationRoutingTable::from_mapping(&pipeline, &graph, &mapping, predicted.total);
        Ok(SessionPlan {
            session,
            spec,
            pipeline,
            mapping,
            vrt,
            predicted,
            processing_overhead: overhead,
        })
    }

    /// Install the applications of a planned session onto a simulator:
    /// one [`StageApp`] per routing-table entry, the central manager at
    /// `cm_node`, and the client drive on the final stage.
    ///
    /// # Panics
    /// Panics if the CM node coincides with a data-path node (the Fig. 8
    /// deployment always keeps the CM at LSU, off the data path).
    pub fn install(
        plan: &SessionPlan,
        sim: &mut Simulator,
        cm_node: NodeId,
        iterations: u64,
        target_goodput: f64,
    ) {
        let graph = NetGraph::from_topology(sim.topology());
        let path = &plan.mapping.path;
        assert!(
            !path.contains(&cm_node.0),
            "the CM node must not lie on the data path"
        );
        let hop_count = path.len();
        for (i, &node_idx) in path.iter().enumerate() {
            let node = NodeId(node_idx);
            let entry = &plan.vrt.entries[i];
            let power = graph.node(node_idx).power;
            let processing: f64 = plan.mapping.groups[i]
                .iter()
                .map(|&m| plan.pipeline.processing_time(m, power))
                .sum::<f64>()
                * plan.processing_overhead;
            let incoming_bytes = if i == 0 {
                0
            } else {
                plan.vrt.entries[i - 1].forward_bytes as usize
            };
            let config = StageConfig {
                session: plan.session,
                hop_index: i,
                hop_count,
                previous: if i > 0 {
                    Some(NodeId(path[i - 1]))
                } else {
                    None
                },
                next: if i + 1 < hop_count {
                    Some(NodeId(path[i + 1]))
                } else {
                    None
                },
                incoming_bytes,
                outgoing_bytes: entry.forward_bytes as usize,
                processing_seconds: processing,
                target_goodput,
                stage_label: format!("{}[{}]", entry.node_name, entry.modules.join(",")),
                drive: if i + 1 == hop_count {
                    Some(ClientDrive {
                        cm: cm_node,
                        iterations,
                        source: plan.spec.source_name(),
                        variable: "pressure".to_string(),
                        isovalue: 0.5,
                    })
                } else {
                    None
                },
                first_iteration: 0,
                telemetry: None,
            };
            sim.install(node, Box::new(StageApp::new(config)));
        }
        let participants: Vec<NodeId> = path.iter().map(|&i| NodeId(i)).collect();
        let cm = CentralManagerApp::new(
            plan.session,
            NodeId(path[0]),
            participants,
            plan.vrt.clone(),
        );
        sim.install(cm_node, Box::new(cm));
    }

    /// Run an installed session until `iterations` images have been
    /// delivered (or `max_virtual_time` elapses) and return the measured
    /// end-to-end delay of each iteration: the time from the data source
    /// starting to serve the dataset (its `iteration-start` trace note) to
    /// the finished image arriving at the client — the quantity the paper's
    /// Fig. 9/10 report.
    pub fn run(sim: &mut Simulator, iterations: u64, max_virtual_time: SimTime) -> Vec<f64> {
        let step = SimTime::from_secs(1.0);
        let mut now = SimTime::ZERO;
        while now < max_virtual_time {
            now = sim.run_until(now + step);
            if Self::measured_delays(sim).len() as u64 >= iterations {
                break;
            }
            if sim.stats().events_processed > 0 && now == max_virtual_time {
                break;
            }
        }
        Self::measured_delays(sim)
    }

    /// Pair each iteration's start note (emitted by the data source) with the
    /// client's completion record and return the loop delays in iteration
    /// order.
    pub fn measured_delays(sim: &Simulator) -> Vec<f64> {
        use ricsa_netsim::trace::TraceKind;
        let mut starts: Vec<(u64, f64)> = Vec::new();
        let mut completions: Vec<(u64, f64)> = Vec::new();
        for event in &sim.trace().events {
            match &event.kind {
                TraceKind::Note { label, .. } => {
                    if let Some(iter) = label.strip_prefix("iteration-start:") {
                        if let Ok(iter) = iter.parse::<u64>() {
                            starts.push((iter, event.at.as_secs()));
                        }
                    }
                }
                TraceKind::IterationCompleted { iteration, .. } => {
                    completions.push((*iteration, event.at.as_secs()));
                }
                _ => {}
            }
        }
        let mut delays = Vec::new();
        for (iteration, finished_at) in completions {
            if let Some((_, started_at)) = starts.iter().find(|(i, _)| *i == iteration) {
                delays.push(finished_at - started_at);
            }
        }
        delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_netsim::presets::{fig8_topology, Fig8Site};

    fn plan_optimal(source: &str) -> (SessionPlan, ricsa_netsim::presets::Fig8Topology) {
        let fig8 = fig8_topology();
        let catalog = SimulationCatalog::default();
        let plan = SteeringSession::plan(
            1,
            &fig8.topology,
            &catalog,
            source,
            fig8.node(Fig8Site::GaTech),
            fig8.node(Fig8Site::Ornl),
            &PathChoice::Optimal,
        )
        .unwrap();
        (plan, fig8)
    }

    #[test]
    fn optimal_plan_starts_at_the_source_and_ends_at_the_client() {
        let (plan, fig8) = plan_optimal("Jet");
        assert_eq!(
            plan.mapping.path.first().copied(),
            Some(fig8.node(Fig8Site::GaTech).0)
        );
        assert_eq!(
            plan.mapping.path.last().copied(),
            Some(fig8.node(Fig8Site::Ornl).0)
        );
        assert!(plan.predicted.total > 0.0);
        assert_eq!(plan.processing_overhead, 1.0);
        assert_eq!(plan.vrt.entries.len(), plan.mapping.path.len());
    }

    #[test]
    fn forced_path_and_paraview_plans_follow_their_prescribed_routes() {
        let fig8 = fig8_topology();
        let catalog = SimulationCatalog::default();
        let gatech = fig8.node(Fig8Site::GaTech);
        let ncstate = fig8.node(Fig8Site::NcStateCluster);
        let ornl = fig8.node(Fig8Site::Ornl);
        let forced = SteeringSession::plan(
            2,
            &fig8.topology,
            &catalog,
            "Rage",
            gatech,
            ornl,
            &PathChoice::ForcedPath(vec![gatech, ncstate, ornl]),
        )
        .unwrap();
        assert_eq!(forced.mapping.path, vec![gatech.0, ncstate.0, ornl.0]);

        let ut = fig8.node(Fig8Site::UtCluster);
        let paraview = SteeringSession::plan(
            3,
            &fig8.topology,
            &catalog,
            "Rage",
            gatech,
            ornl,
            &PathChoice::ParaViewCrs {
                render_server: ut,
                overhead: 1.3,
            },
        )
        .unwrap();
        assert_eq!(paraview.mapping.path, vec![gatech.0, ut.0, ornl.0]);
        assert!((paraview.processing_overhead - 1.3).abs() < 1e-12);
        // ParaView's predicted delay on the same route is at least the
        // optimizer's.
        let optimal = SteeringSession::plan(
            4,
            &fig8.topology,
            &catalog,
            "Rage",
            gatech,
            ornl,
            &PathChoice::Optimal,
        )
        .unwrap();
        assert!(paraview.predicted.total >= optimal.predicted.total);
    }

    #[test]
    fn unknown_sources_are_rejected() {
        let fig8 = fig8_topology();
        let catalog = SimulationCatalog::default();
        let err = SteeringSession::plan(
            1,
            &fig8.topology,
            &catalog,
            "does-not-exist",
            fig8.node(Fig8Site::GaTech),
            fig8.node(Fig8Site::Ornl),
            &PathChoice::Optimal,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::UnknownSource(_)));
        assert!(err.to_string().contains("does-not-exist"));
    }

    #[test]
    fn predicted_delay_grows_with_dataset_size() {
        let jet = plan_optimal("Jet").0.predicted.total;
        let rage = plan_optimal("Rage").0.predicted.total;
        let vw = plan_optimal("VisWoman").0.predicted.total;
        assert!(jet < rage && rage < vw, "{jet} {rage} {vw}");
    }
}
