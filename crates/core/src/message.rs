//! Control-protocol messages.
//!
//! Control messages are "typically on the order of bytes or kilobytes"
//! (Section 4.2) and travel over the stabilized control channel: steering
//! requests from the client/front end to the CM and simulator, visualization
//! parameters to the data source, and the visualization routing table that
//! establishes the loop.  They are serialized as JSON (standing in for the
//! XML/JSON payloads of the paper's Ajax `XMLHttpRequest` exchanges) and
//! carried in datagram payloads.

use ricsa_hydro::steering::SteerableParams;
use ricsa_netsim::packet::Payload;
use ricsa_pipemap::vrt::VisualizationRoutingTable;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Payload kind tag for control messages.
pub const KIND_CONTROL: u16 = 0x0201;

/// Number of redundant copies each control datagram is sent with.  The
/// control channel targets loss rates well below 0.1 %, so triple redundancy
/// makes an undelivered control message practically impossible while keeping
/// the protocol one-way (the data channel retains full ACK/NACK
/// reliability).
pub const CONTROL_REDUNDANCY: usize = 3;

/// A control-plane message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMessage {
    /// Client → CM: start (or retarget) a steering session.
    SteeringRequest {
        /// Monotone request identifier.
        request_id: u64,
        /// Simulation or dataset name from the catalog.
        source: String,
        /// Variable of interest.
        variable: String,
        /// Isovalue for isosurface extraction.
        isovalue: f32,
        /// Optional octree subset selection (0..8).
        octant: Option<usize>,
    },
    /// Client → simulator: new computational steering parameters.
    SteeringUpdate {
        /// Monotone request identifier.
        request_id: u64,
        /// The new simulation parameters.
        params: SteerableParams,
    },
    /// CM → loop participants: the computed routing table.
    VrtDelivery {
        /// Session this table belongs to.
        session: u64,
        /// The routing table.
        table: VisualizationRoutingTable,
    },
    /// CM (or client, for subsequent iterations) → data source: start
    /// serving the dataset for one iteration.
    BeginIteration {
        /// Session identifier.
        session: u64,
        /// Iteration number.
        iteration: u64,
    },
    /// Client ← stage: the finished image for an iteration has arrived
    /// (sent loopback by the client stage to the client application).
    ImageReady {
        /// Session identifier.
        session: u64,
        /// Iteration number.
        iteration: u64,
        /// Image size in bytes.
        image_bytes: usize,
    },
    /// Acknowledgement of a control message (used by tests and the web
    /// front end; the wide-area control plane relies on redundancy).
    Ack {
        /// The request being acknowledged.
        request_id: u64,
    },
}

impl ControlMessage {
    /// A deduplication key: control messages are sent redundantly, so
    /// receivers drop copies whose key they have already seen.
    pub fn dedup_key(&self) -> u64 {
        match self {
            ControlMessage::SteeringRequest { request_id, .. } => 0x1000_0000_0000 | request_id,
            ControlMessage::SteeringUpdate { request_id, .. } => 0x2000_0000_0000 | request_id,
            ControlMessage::VrtDelivery { session, .. } => 0x3000_0000_0000 | session,
            ControlMessage::BeginIteration { session, iteration } => {
                0x4000_0000_0000 | (session << 20) | iteration
            }
            ControlMessage::ImageReady {
                session, iteration, ..
            } => 0x5000_0000_0000 | (session << 20) | iteration,
            ControlMessage::Ack { request_id } => 0x6000_0000_0000 | request_id,
        }
    }

    /// Serialize into a datagram payload (kind [`KIND_CONTROL`]).
    pub fn to_payload(&self) -> Payload {
        let data = serde_json::to_vec(self).expect("control messages always serialize");
        Payload::with_data(KIND_CONTROL, 0, self.dedup_key(), data)
    }

    /// Deserialize from a datagram payload; `None` if the payload is not a
    /// control message or fails to parse.
    pub fn from_payload(payload: &Payload) -> Option<ControlMessage> {
        if payload.kind != KIND_CONTROL {
            return None;
        }
        serde_json::from_slice(&payload.data).ok()
    }
}

/// Tracks which control messages have already been processed, so redundant
/// copies are ignored.
#[derive(Debug, Default, Clone)]
pub struct DedupFilter {
    seen: HashSet<u64>,
}

impl DedupFilter {
    /// An empty filter.
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Returns true exactly once per dedup key.
    pub fn accept(&mut self, msg: &ControlMessage) -> bool {
        self.seen.insert(msg.dedup_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ControlMessage {
        ControlMessage::SteeringRequest {
            request_id: 7,
            source: "sod-shock-tube".into(),
            variable: "pressure".into(),
            isovalue: 0.4,
            octant: Some(3),
        }
    }

    #[test]
    fn payload_round_trip() {
        let msg = sample();
        let payload = msg.to_payload();
        assert_eq!(payload.kind, KIND_CONTROL);
        assert!(
            payload.size > 0 && payload.size < 4096,
            "control messages stay small"
        );
        let back = ControlMessage::from_payload(&payload).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn non_control_payloads_are_rejected() {
        let mut payload = sample().to_payload();
        payload.kind = 0x0101;
        assert!(ControlMessage::from_payload(&payload).is_none());
        let garbage = Payload::with_data(KIND_CONTROL, 0, 0, vec![1, 2, 3]);
        assert!(ControlMessage::from_payload(&garbage).is_none());
    }

    #[test]
    fn dedup_keys_distinguish_message_identity() {
        let a = ControlMessage::BeginIteration {
            session: 1,
            iteration: 1,
        };
        let b = ControlMessage::BeginIteration {
            session: 1,
            iteration: 2,
        };
        let c = ControlMessage::ImageReady {
            session: 1,
            iteration: 1,
            image_bytes: 100,
        };
        assert_ne!(a.dedup_key(), b.dedup_key());
        assert_ne!(a.dedup_key(), c.dedup_key());
        let mut filter = DedupFilter::new();
        assert!(filter.accept(&a));
        assert!(!filter.accept(&a));
        assert!(filter.accept(&b));
    }

    #[test]
    fn all_variants_serialize() {
        let msgs = vec![
            sample(),
            ControlMessage::SteeringUpdate {
                request_id: 2,
                params: SteerableParams::default(),
            },
            ControlMessage::BeginIteration {
                session: 3,
                iteration: 0,
            },
            ControlMessage::ImageReady {
                session: 3,
                iteration: 0,
                image_bytes: 1 << 20,
            },
            ControlMessage::Ack { request_id: 9 },
        ];
        for m in msgs {
            let back = ControlMessage::from_payload(&m.to_payload()).unwrap();
            assert_eq!(back, m);
        }
    }
}
