//! The pipeline-stage application.
//!
//! Every node that appears in the visualization routing table — the data
//! source, each computing-service node, and the client — runs a
//! [`StageApp`].  Per iteration the stage:
//!
//! 1. receives the upstream message reliably over the Robbins–Monro
//!    transport (`ricsa-transport`),
//! 2. "executes" its assigned visualization modules by waiting for the time
//!    the calibrated cost models predict on its hardware (this is the
//!    simulated stand-in for actually running the modules on that host), and
//! 3. pushes its output downstream over a new transport flow.
//!
//! The data source reacts to `BeginIteration` control messages instead of an
//! upstream flow, and the client stage terminates the chain, emitting an
//! `IterationCompleted` trace record that the experiment driver reads.

use crate::message::{ControlMessage, DedupFilter, CONTROL_REDUNDANCY};
use ricsa_netsim::app::{Application, Context};
use ricsa_netsim::node::NodeId;
use ricsa_netsim::packet::{Datagram, Payload};
use ricsa_netsim::time::SimTime;
use ricsa_netsim::trace::{TraceEvent, TraceKind};
use ricsa_transport::flow::{shared_stats, AckInfo, FlowConfig, KIND_ACK, KIND_DATA};
use ricsa_transport::receiver::FlowReceiver;
use ricsa_transport::rm::{RmController, RmParams};
use ricsa_transport::sender::WindowSender;
use ricsa_transport::telemetry::FlowTelemetry;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Shared handle collecting per-link passive telemetry from stage
/// applications: the key is the directed link `(from, to)` in topology
/// node indices, the value the latest [`FlowTelemetry`] snapshot of the
/// most recent transfer that crossed it.  The adaptive re-mapping driver
/// ([`crate::adapt`]) owns the handle and feeds the snapshots to the
/// monitor after every frame.
pub type LinkTelemetrySink = Rc<RefCell<HashMap<(usize, usize), FlowTelemetry>>>;

/// Client-side driving behaviour: the client stage issues the initial
/// steering request and paces subsequent iterations so that "the simulation
/// does not proceed until the image from the last time step is delivered to
/// the end user".
#[derive(Debug, Clone, PartialEq)]
pub struct ClientDrive {
    /// The central-management node requests are sent to.
    pub cm: NodeId,
    /// Total number of iterations (datasets) to pull through the loop.
    pub iterations: u64,
    /// Catalog name of the requested source.
    pub source: String,
    /// Variable of interest.
    pub variable: String,
    /// Isovalue for the isosurface pipeline.
    pub isovalue: f32,
}

/// Static configuration of one stage of the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct StageConfig {
    /// Session identifier (used to derive flow ids).
    pub session: u64,
    /// Position of this stage along the data path (0 = data source).
    pub hop_index: usize,
    /// Total number of hops on the data path.
    pub hop_count: usize,
    /// Node of the upstream stage, if any.
    pub previous: Option<NodeId>,
    /// Node of the downstream stage, if any.
    pub next: Option<NodeId>,
    /// Bytes expected from upstream per iteration (0 for the data source).
    pub incoming_bytes: usize,
    /// Bytes to forward downstream per iteration (0 for the client).
    pub outgoing_bytes: usize,
    /// Seconds of module processing this stage performs per iteration
    /// (already scaled by the node's compute power by the planner).
    pub processing_seconds: f64,
    /// Target goodput for the outgoing transport flow, bytes/second.
    pub target_goodput: f64,
    /// Human-readable description of the modules run here (for traces).
    pub stage_label: String,
    /// Client driving behaviour (only set on the client stage).
    pub drive: Option<ClientDrive>,
    /// The first iteration this stage participates in (0 for a stage
    /// installed at session start).  After a migration the replacement
    /// stages start here: data for *earlier* iterations is a stale
    /// retransmission from the pre-migration flows and is re-acknowledged,
    /// never received — without this floor a stale datagram would open a
    /// receiver for a dead flow and deadlock the new loop.
    pub first_iteration: u64,
    /// Optional sink for passive per-link telemetry (see
    /// [`LinkTelemetrySink`]); the stage records its outgoing flow's
    /// telemetry under `(this node, next node)`.
    pub telemetry: Option<LinkTelemetrySink>,
}

impl StageConfig {
    /// Whether this stage is the data source.
    pub fn is_source(&self) -> bool {
        self.hop_index == 0
    }

    /// Whether this stage is the client (end of the loop).
    pub fn is_client(&self) -> bool {
        self.next.is_none()
    }

    /// The flow id used for data arriving at this stage in `iteration`.
    pub fn incoming_flow(&self, iteration: u64) -> u64 {
        flow_id(self.session, iteration, self.hop_index)
    }

    /// The flow id used for data leaving this stage in `iteration`.
    pub fn outgoing_flow(&self, iteration: u64) -> u64 {
        flow_id(self.session, iteration, self.hop_index + 1)
    }
}

/// Deterministic flow identifier for hop `hop` of `iteration` in `session`.
pub fn flow_id(session: u64, iteration: u64, hop: usize) -> u64 {
    (session << 40) | (iteration << 8) | hop as u64
}

/// Decompose a flow id produced by [`flow_id`].
pub fn parse_flow_id(flow: u64) -> (u64, u64, usize) {
    (
        flow >> 40,
        (flow >> 8) & 0xFFFF_FFFF,
        (flow & 0xFF) as usize,
    )
}

enum Phase {
    /// Waiting for an upstream message (or a BeginIteration, for the source).
    Idle,
    /// Receiving the upstream message.
    Receiving {
        iteration: u64,
        receiver: Box<FlowReceiver>,
        receiver_timers: HashSet<u64>,
    },
    /// Simulating module execution; the timer id marks completion.
    Processing { iteration: u64, timer: u64 },
    /// Pushing the output downstream.
    Sending {
        sender: Box<WindowSender<RmController>>,
        sender_timers: HashSet<u64>,
    },
}

/// The per-node pipeline stage application.
pub struct StageApp {
    config: StageConfig,
    phase: Phase,
    dedup: DedupFilter,
    /// Iterations fully handled by this stage.
    completed_iterations: u64,
    /// The next upstream iteration this stage expects to receive; data for
    /// earlier iterations is a stale retransmission (the upstream sender
    /// missed our final ACK) and is re-acknowledged, never re-received.
    next_incoming_iteration: u64,
    /// Time at which the current iteration started at this stage.
    iteration_started: SimTime,
}

impl StageApp {
    /// Create a stage application.
    pub fn new(config: StageConfig) -> Self {
        let first = config.first_iteration;
        StageApp {
            config,
            phase: Phase::Idle,
            dedup: DedupFilter::new(),
            completed_iterations: 0,
            next_incoming_iteration: first,
            iteration_started: SimTime::ZERO,
        }
    }

    /// Publish the outgoing flow's passive telemetry into the shared sink
    /// (keyed by the directed link this stage forwards over), if a sink is
    /// configured.
    fn record_sender_telemetry(&self, node: NodeId, telemetry: FlowTelemetry) {
        if let (Some(sink), Some(next)) = (&self.config.telemetry, self.config.next) {
            sink.borrow_mut().insert((node.0, next.0), telemetry);
        }
    }

    /// Number of iterations this stage has fully completed.
    pub fn completed_iterations(&self) -> u64 {
        self.completed_iterations
    }

    fn flow_config(&self, bytes: usize) -> FlowConfig {
        FlowConfig {
            message_bytes: Some(bytes.max(1)),
            window: 64,
            ack_every: 32,
            ..FlowConfig::default()
        }
    }

    fn begin_receiving(&mut self, ctx: &mut Context, iteration: u64) {
        let prev = self
            .config
            .previous
            .expect("non-source stages have an upstream node");
        let mut receiver = FlowReceiver::new(
            FlowConfig {
                flow_id: self.config.incoming_flow(iteration),
                ..self.flow_config(self.config.incoming_bytes)
            },
            prev,
            shared_stats(),
        );
        // Start the receiver so it arms its periodic-ACK timer.  Without the
        // fallback ACKs the sender can deadlock mid-message: once it fills
        // its outstanding window with datagrams that were lost, the receiver
        // sees no new arrivals (so no every-Nth-datagram ACK and no NACKs)
        // and the transfer never finishes.  Track the timers it arms so
        // stale timers from a previous phase are not misrouted into it
        // (each forwarded firing would re-arm and spawn an extra periodic
        // chain, distorting the receiver's quiet detection).
        let timers_before: HashSet<u64> =
            ctx.scheduled_timers().iter().map(|t| t.timer_id).collect();
        receiver.on_start(ctx);
        let receiver_timers: HashSet<u64> = ctx
            .scheduled_timers()
            .iter()
            .map(|t| t.timer_id)
            .filter(|id| !timers_before.contains(id))
            .collect();
        self.phase = Phase::Receiving {
            iteration,
            receiver: Box::new(receiver),
            receiver_timers,
        };
    }

    fn begin_processing(&mut self, ctx: &mut Context, iteration: u64) {
        ctx.trace(TraceEvent::new(TraceKind::StageCompleted {
            stage: format!("{}:received", self.config.stage_label),
            elapsed: (ctx.now() - self.iteration_started).as_secs(),
            output_bytes: self.config.incoming_bytes,
        }));
        if self.config.processing_seconds <= 0.0 {
            self.finish_processing(ctx, iteration);
            return;
        }
        let timer = ctx.set_timer(SimTime::from_secs(self.config.processing_seconds));
        self.phase = Phase::Processing { iteration, timer };
    }

    fn finish_processing(&mut self, ctx: &mut Context, iteration: u64) {
        ctx.trace(TraceEvent::new(TraceKind::StageCompleted {
            stage: format!("{}:processed", self.config.stage_label),
            elapsed: self.config.processing_seconds,
            output_bytes: self.config.outgoing_bytes,
        }));
        if self.config.is_client() {
            // End of the loop: report the finished image.
            self.completed_iterations += 1;
            ctx.trace(TraceEvent::new(TraceKind::IterationCompleted {
                iteration,
                end_to_end_delay: (ctx.now() - self.iteration_started).as_secs(),
            }));
            self.phase = Phase::Idle;
            // Request the next dataset only after this image arrived.
            if let Some(drive) = &self.config.drive {
                if iteration + 1 < drive.iterations {
                    send_control(
                        ctx,
                        drive.cm,
                        &ControlMessage::BeginIteration {
                            session: self.config.session,
                            iteration: iteration + 1,
                        },
                    );
                }
            }
            return;
        }
        self.begin_sending(ctx, iteration);
    }

    fn begin_sending(&mut self, ctx: &mut Context, iteration: u64) {
        let next = self
            .config
            .next
            .expect("non-client stages have a downstream node");
        let flow_config = FlowConfig {
            flow_id: self.config.outgoing_flow(iteration),
            ..self.flow_config(self.config.outgoing_bytes)
        };
        let controller = RmController::new(RmParams {
            window: flow_config.window,
            mtu: flow_config.mtu,
            // Start near 45 MB/s so short transfers are not dominated by the
            // ramp-up; the Robbins-Monro update pulls the rate toward the
            // link's sustainable goodput within a few ACKs either way.
            initial_sleep: 0.002,
            ..RmParams::for_target(self.config.target_goodput)
        });
        let mut sender = WindowSender::new(flow_config, next, controller, shared_stats());
        // Kick off the first burst immediately, tracking the timers the
        // sender registers so later firings can be routed back to it.
        let timers_before: HashSet<u64> =
            ctx.scheduled_timers().iter().map(|t| t.timer_id).collect();
        sender.on_start(ctx);
        let sender_timers: HashSet<u64> = ctx
            .scheduled_timers()
            .iter()
            .map(|t| t.timer_id)
            .filter(|id| !timers_before.contains(id))
            .collect();
        self.phase = Phase::Sending {
            sender: Box::new(sender),
            sender_timers,
        };
    }

    /// Re-acknowledge a fully received incoming flow whose final ACK the
    /// upstream sender evidently missed (it is still retransmitting).  The
    /// receiver object is long gone, but the stage knows the flow completed,
    /// so it synthesizes the full-coverage cumulative ACK that lets the
    /// upstream sender retire the flow.
    fn ack_completed_incoming(&self, ctx: &mut Context, iteration: u64) {
        let prev = match self.config.previous {
            Some(prev) => prev,
            None => return,
        };
        let flow = FlowConfig {
            flow_id: self.config.incoming_flow(iteration),
            ..self.flow_config(self.config.incoming_bytes)
        };
        let total = flow.total_datagrams().unwrap_or(1).max(1);
        let ack = AckInfo {
            cumulative: total - 1,
            highest_seen: total - 1,
            missing: vec![],
            sack: vec![],
            goodput_bps: 0.0,
            received_count: total,
        };
        ctx.send(
            prev,
            Payload::with_data(KIND_ACK, flow.flow_id, 0, ack.encode()),
        );
    }

    fn handle_control(&mut self, ctx: &mut Context, msg: ControlMessage) {
        if !self.dedup.accept(&msg) {
            return;
        }
        if let ControlMessage::BeginIteration { session, iteration } = msg {
            if session != self.config.session || !self.config.is_source() {
                return;
            }
            self.iteration_started = ctx.now();
            ctx.trace(TraceEvent::new(TraceKind::Note {
                label: format!("iteration-start:{iteration}"),
                value: ctx.now().as_secs(),
            }));
            // The data source has no upstream transfer; go straight to
            // processing (reading/serving the cached dataset plus any
            // modules assigned to it) and then push downstream.
            self.begin_processing(ctx, iteration);
        }
    }
}

impl Application for StageApp {
    fn on_start(&mut self, ctx: &mut Context) {
        if let Some(drive) = self.config.drive.clone() {
            if self.config.is_client() {
                send_control(
                    ctx,
                    drive.cm,
                    &ControlMessage::SteeringRequest {
                        request_id: self.config.session,
                        source: drive.source.clone(),
                        variable: drive.variable.clone(),
                        isovalue: drive.isovalue,
                        octant: None,
                    },
                );
            }
        }
    }

    fn on_datagram(&mut self, ctx: &mut Context, dg: Datagram) {
        // Control plane.
        if let Some(msg) = ControlMessage::from_payload(&dg.payload) {
            self.handle_control(ctx, msg);
            return;
        }
        match dg.payload.kind {
            KIND_DATA => {
                let (_, iteration, hop) = parse_flow_id(dg.payload.flow);
                if hop != self.config.hop_index {
                    return;
                }
                // A stale retransmission of an iteration this stage already
                // received in full: the upstream sender missed the final ACK
                // (it can be lost like any datagram).  Re-acknowledge so the
                // sender retires the flow — and never tear down the current
                // phase for it.
                if iteration < self.next_incoming_iteration {
                    self.ack_completed_incoming(ctx, iteration);
                    return;
                }
                // Data for a genuinely newer iteration while the previous
                // send is still waiting on its final acknowledgement: the
                // loop only starts a new iteration after the client received
                // the previous image, so the old flow is implicitly complete
                // and can be retired.
                if matches!(self.phase, Phase::Sending { .. }) {
                    self.completed_iterations += 1;
                    self.phase = Phase::Idle;
                }
                // Lazily open the receiver for a new iteration.
                if matches!(self.phase, Phase::Idle) {
                    self.iteration_started = ctx.now();
                    self.begin_receiving(ctx, iteration);
                }
                let finished = if let Phase::Receiving {
                    receiver,
                    iteration: it,
                    ..
                } = &mut self.phase
                {
                    if *it != iteration {
                        return;
                    }
                    receiver.on_datagram(ctx, dg);
                    receiver.is_finished()
                } else {
                    false
                };
                if finished {
                    self.next_incoming_iteration = iteration + 1;
                    self.begin_processing(ctx, iteration);
                }
            }
            KIND_ACK => {
                let (finished, telemetry) = if let Phase::Sending { sender, .. } = &mut self.phase {
                    sender.on_datagram(ctx, dg);
                    (sender.is_finished(), Some(sender.telemetry().clone()))
                } else {
                    (false, None)
                };
                if let Some(t) = telemetry {
                    self.record_sender_telemetry(ctx.node_id(), t);
                }
                if finished {
                    self.completed_iterations += 1;
                    self.phase = Phase::Idle;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, timer_id: u64) {
        match &mut self.phase {
            Phase::Processing { iteration, timer } if *timer == timer_id => {
                let iteration = *iteration;
                self.finish_processing(ctx, iteration);
            }
            Phase::Sending {
                sender,
                sender_timers,
                ..
            } if sender_timers.contains(&timer_id) => {
                let timers_before: HashSet<u64> =
                    ctx.scheduled_timers().iter().map(|t| t.timer_id).collect();
                sender.on_timer(ctx, timer_id);
                for t in ctx.scheduled_timers() {
                    if !timers_before.contains(&t.timer_id) {
                        sender_timers.insert(t.timer_id);
                    }
                }
                if sender.is_finished() {
                    self.completed_iterations += 1;
                    self.phase = Phase::Idle;
                }
            }
            // Route only the receiver's own periodic-ACK timers to it; stale
            // timers left over from a previous sender phase must not spawn
            // extra ACK chains.
            Phase::Receiving {
                receiver,
                receiver_timers,
                ..
            } if receiver_timers.contains(&timer_id) => {
                let timers_before: HashSet<u64> =
                    ctx.scheduled_timers().iter().map(|t| t.timer_id).collect();
                receiver.on_timer(ctx, timer_id);
                for t in ctx.scheduled_timers() {
                    if !timers_before.contains(&t.timer_id) {
                        receiver_timers.insert(t.timer_id);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Send a control message with redundancy to a destination node.
pub fn send_control(ctx: &mut Context, dst: NodeId, msg: &ControlMessage) {
    for _ in 0..CONTROL_REDUNDANCY {
        ctx.send(dst, msg.to_payload());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_ids_round_trip_and_are_unique_per_hop() {
        let f = flow_id(3, 7, 2);
        assert_eq!(parse_flow_id(f), (3, 7, 2));
        assert_ne!(flow_id(3, 7, 2), flow_id(3, 7, 3));
        assert_ne!(flow_id(3, 7, 2), flow_id(3, 8, 2));
        assert_ne!(flow_id(3, 7, 2), flow_id(4, 7, 2));
    }

    fn config(hop: usize, hops: usize) -> StageConfig {
        StageConfig {
            session: 1,
            hop_index: hop,
            hop_count: hops,
            previous: if hop > 0 { Some(NodeId(hop - 1)) } else { None },
            next: if hop + 1 < hops {
                Some(NodeId(hop + 1))
            } else {
                None
            },
            incoming_bytes: if hop > 0 { 10_000 } else { 0 },
            outgoing_bytes: if hop + 1 < hops { 5_000 } else { 0 },
            processing_seconds: 0.01,
            target_goodput: 1e6,
            stage_label: format!("stage{hop}"),
            drive: None,
            first_iteration: 0,
            telemetry: None,
        }
    }

    #[test]
    fn stage_roles_are_derived_from_position() {
        let src = config(0, 3);
        let mid = config(1, 3);
        let dst = config(2, 3);
        assert!(src.is_source() && !src.is_client());
        assert!(!mid.is_source() && !mid.is_client());
        assert!(dst.is_client() && !dst.is_source());
        assert_eq!(src.outgoing_flow(4), mid.incoming_flow(4));
        assert_eq!(mid.outgoing_flow(4), dst.incoming_flow(4));
    }

    #[test]
    fn source_stage_reacts_to_begin_iteration_and_starts_sending() {
        let mut app = StageApp::new(config(0, 2));
        let mut ctx = Context::new(NodeId(0), SimTime::from_secs(1.0), 0, vec![0.5]);
        let begin = ControlMessage::BeginIteration {
            session: 1,
            iteration: 0,
        };
        app.on_datagram(
            &mut ctx,
            Datagram {
                src: NodeId(9),
                dst: NodeId(0),
                sent_at: SimTime::ZERO,
                payload: begin.to_payload(),
            },
        );
        // Processing timer scheduled (0.01 s) but no data yet.
        assert_eq!(ctx.scheduled_timers().len(), 1);
        assert!(matches!(app.phase, Phase::Processing { .. }));
        // Duplicate Begin is ignored.
        let mut ctx2 = Context::new(NodeId(0), SimTime::from_secs(1.0), 10, vec![0.5]);
        app.on_datagram(
            &mut ctx2,
            Datagram {
                src: NodeId(9),
                dst: NodeId(0),
                sent_at: SimTime::ZERO,
                payload: begin.to_payload(),
            },
        );
        assert!(ctx2.scheduled_timers().is_empty());
        // Firing the processing timer moves the source into the sending
        // phase and emits the first burst of data datagrams.
        let timer_id = ctx.scheduled_timers()[0].timer_id;
        let mut ctx3 = Context::new(NodeId(0), SimTime::from_secs(1.02), 20, vec![0.5]);
        app.on_timer(&mut ctx3, timer_id);
        assert!(matches!(app.phase, Phase::Sending { .. }));
        assert!(ctx3
            .outgoing()
            .iter()
            .any(|s| s.payload.kind == KIND_DATA && s.dst == NodeId(1)));
    }

    #[test]
    fn begin_for_wrong_session_or_non_source_is_ignored() {
        let mut app = StageApp::new(config(1, 3));
        let mut ctx = Context::new(NodeId(1), SimTime::ZERO, 0, vec![0.5]);
        let begin = ControlMessage::BeginIteration {
            session: 1,
            iteration: 0,
        };
        app.on_datagram(
            &mut ctx,
            Datagram {
                src: NodeId(0),
                dst: NodeId(1),
                sent_at: SimTime::ZERO,
                payload: begin.to_payload(),
            },
        );
        assert!(matches!(app.phase, Phase::Idle));

        let mut src_app = StageApp::new(config(0, 3));
        let wrong_session = ControlMessage::BeginIteration {
            session: 99,
            iteration: 0,
        };
        src_app.on_datagram(
            &mut ctx,
            Datagram {
                src: NodeId(0),
                dst: NodeId(1),
                sent_at: SimTime::ZERO,
                payload: wrong_session.to_payload(),
            },
        );
        assert!(matches!(src_app.phase, Phase::Idle));
    }

    #[test]
    fn send_control_is_redundant() {
        let mut ctx = Context::new(NodeId(0), SimTime::ZERO, 0, vec![0.5]);
        send_control(&mut ctx, NodeId(3), &ControlMessage::Ack { request_id: 1 });
        assert_eq!(ctx.outgoing().len(), CONTROL_REDUNDANCY);
        assert!(ctx.outgoing().iter().all(|s| s.dst == NodeId(3)));
    }
}
