//! The multi-session sweep: joint vs independent vs client/server at scale.
//!
//! Where [`crate::adapt_sweep`] quantifies the *adaptive controller's* win
//! rate across dynamic scenarios, this module quantifies the
//! *contention-aware joint mapper's* win across session counts.  Per cell
//! (scenario family × session count) it builds the N-session contention
//! WAN ([`crate::sessions::contention_wan`]), spawns N frame-paced user
//! loops, and runs them to completion under each [`MappingPolicy`]:
//!
//! * **independent** — each session solved alone, blind to the others
//!   (they all pile onto the shared trunk),
//! * **joint** — the link-pricing best-response iteration of
//!   [`ricsa_pipemap::joint`] (sessions spread across trunk and private
//!   relays),
//! * **client/server** — the no-pipeline baseline of the paper's Fig. 9.
//!
//! Every run audits per session that every requested frame arrived
//! exactly once ([`SessionSweepRecord::lost`] / `duplicated` are zero on
//! a healthy run); per cell the [`PolicyComparison`] reports the joint
//! policy's aggregate-throughput ratio and Jain-fairness delta over
//! independent.  Cells are independent, so the sweep fans out over worker
//! threads via the `rayon` shim, and every record is deterministic per
//! seed — the metrics are virtual-time only.  The `session_sweep` bench
//! binary prints the table and writes the BENCH json; DESIGN.md §11
//! documents the layer.

use crate::sessions::{
    contention_wan, demo_session_pipeline, run_multi_session, MappingPolicy, MultiSessionRun,
    MultiSessionSpec, SessionLoopSpec,
};
use crate::sweep::scenario_seed;
use rayon::prelude::*;
use ricsa_adapt::monitor::AdaptConfig;
use ricsa_netsim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One seeded contention-scenario family: how the N co-scheduled
/// sessions' data volumes relate.  Session `i` runs the demonstration
/// pipeline at scale `base_scale + scale_step * i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionFamily {
    /// Family label (appears in records and the report table).
    pub label: String,
    /// Scale of session 0's pipeline.
    pub base_scale: f64,
    /// Per-session scale increment (0 = identical sessions).
    pub scale_step: f64,
}

impl ContentionFamily {
    /// A family where every session moves the same data volume.
    pub fn uniform(scale: f64) -> Self {
        ContentionFamily {
            label: format!("uniform{scale:.1}"),
            base_scale: scale,
            scale_step: 0.0,
        }
    }

    /// A family where session `i` moves `base + step·i` — heterogeneous
    /// loads, so per-session rates differ under every policy and the
    /// fairness axis is informative.
    pub fn ramp(base: f64, step: f64) -> Self {
        ContentionFamily {
            label: format!("ramp{base:.1}+{step:.2}"),
            base_scale: base,
            scale_step: step,
        }
    }
}

/// Configuration of one multi-session sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSweepConfig {
    /// Session counts to evaluate (one contention WAN per count).
    pub session_counts: Vec<usize>,
    /// Scenario families evaluated at every session count.
    pub families: Vec<ContentionFamily>,
    /// Frames each session pulls through its loop before retiring.
    pub frames: u64,
    /// Base RNG seed; cell `(family, count)` derives its own from it.
    pub seed: u64,
    /// Target goodput of the stage-to-stage data flows, bytes/second.
    pub target_goodput: f64,
    /// Round bound for the joint best-response iteration.
    pub joint_rounds: usize,
    /// Virtual-time budget per run.
    pub max_virtual_time: SimTime,
    /// Monitor configuration (supplies the DP options every policy solves
    /// with; monitors run estimates-only — the sweep compares *static*
    /// mappings, no mid-run migrations).
    pub adapt: AdaptConfig,
}

impl Default for SessionSweepConfig {
    fn default() -> Self {
        SessionSweepConfig {
            session_counts: vec![2, 8, 32],
            families: vec![
                ContentionFamily::uniform(1.0),
                ContentionFamily::ramp(1.0, 0.1),
                ContentionFamily::uniform(2.0),
            ],
            frames: 10,
            seed: 20080609,
            target_goodput: 200e6,
            joint_rounds: 6,
            max_virtual_time: SimTime::from_secs(900.0),
            adapt: AdaptConfig::default(),
        }
    }
}

impl SessionSweepConfig {
    /// The CI-friendly quick sweep: N ∈ {2, 8} across two families,
    /// fewer frames.  Still exercises the acceptance comparison (joint
    /// vs independent at N = 8).
    pub fn quick() -> Self {
        SessionSweepConfig {
            session_counts: vec![2, 8],
            families: vec![
                ContentionFamily::uniform(1.0),
                ContentionFamily::ramp(1.0, 0.1),
            ],
            frames: 6,
            ..SessionSweepConfig::default()
        }
    }

    /// The full sweep: N ∈ {2, 8, 32} across three families.
    pub fn full() -> Self {
        SessionSweepConfig::default()
    }

    /// Cells evaluated (each runs all three policies).
    pub fn cells(&self) -> usize {
        self.session_counts.len() * self.families.len()
    }
}

/// One policy's outcome on one cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSweepRecord {
    /// Scenario-family label.
    pub family: String,
    /// Concurrent sessions in the cell.
    pub n: usize,
    /// Mapping policy name.
    pub policy: String,
    /// Frames delivered across all sessions.
    pub completed: u64,
    /// Requested frames never delivered (0 on a healthy run).
    pub lost: u64,
    /// Duplicate deliveries (0 on a healthy run).
    pub duplicated: u64,
    /// Total completed frames per virtual second, first spawn to last
    /// delivery.
    pub aggregate_fps: f64,
    /// Jain fairness index of the per-session frame rates.
    pub fairness: f64,
    /// Mean end-to-end frame delay across all completed frames, seconds.
    pub mean_delay_s: f64,
    /// 99th-percentile (nearest-rank) frame delay, seconds.
    pub p99_delay_s: f64,
    /// The solver's predicted aggregate delay under the shared contended
    /// model (comparable across policies).
    pub predicted_aggregate_s: f64,
    /// Sessions whose data path crosses the shared hub trunk.
    pub trunk_users: usize,
    /// Virtual time the run ended.
    pub duration_s: f64,
}

/// The joint-vs-independent comparison of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Scenario-family label.
    pub family: String,
    /// Concurrent sessions in the cell.
    pub n: usize,
    /// Joint aggregate fps over independent aggregate fps (> 1 = win).
    pub fps_ratio: f64,
    /// Joint fairness minus independent fairness (> 0 = fairer).
    pub fairness_delta: f64,
    /// Independent p99 frame delay over joint p99 (> 1 = joint's tail is
    /// shorter).
    pub p99_ratio: f64,
    /// The joint policy won on throughput *and* fairness.
    pub joint_wins_both: bool,
}

/// Aggregated result of a multi-session sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSweepReport {
    /// Per-(cell × policy) records: cell-major, policies in
    /// independent / joint / client-server order.
    pub records: Vec<SessionSweepRecord>,
    /// Per-cell joint-vs-independent comparisons, cell order.
    pub comparisons: Vec<PolicyComparison>,
}

impl SessionSweepReport {
    /// Cells where the joint policy beat independent on throughput and
    /// fairness simultaneously.
    pub fn joint_double_wins(&self) -> usize {
        self.comparisons
            .iter()
            .filter(|c| c.joint_wins_both)
            .count()
    }
}

/// Run the sweep: every cell (family × session count) under every policy.
pub fn run_session_sweep(config: &SessionSweepConfig) -> SessionSweepReport {
    let cells: Vec<(usize, usize)> = (0..config.families.len())
        .flat_map(|f| (0..config.session_counts.len()).map(move |c| (f, c)))
        .collect();
    let per_cell: Vec<Vec<SessionSweepRecord>> = cells
        .par_iter()
        .map(|&(f, c)| run_cell(config, f, c))
        .collect();
    let mut records = Vec::with_capacity(per_cell.len() * 3);
    let mut comparisons = Vec::with_capacity(per_cell.len());
    for cell in per_cell {
        if let (Some(ind), Some(joint)) = (
            cell.iter().find(|r| r.policy == "independent"),
            cell.iter().find(|r| r.policy == "joint"),
        ) {
            let fps_ratio = joint.aggregate_fps / ind.aggregate_fps.max(f64::EPSILON);
            let fairness_delta = joint.fairness - ind.fairness;
            comparisons.push(PolicyComparison {
                family: ind.family.clone(),
                n: ind.n,
                fps_ratio,
                fairness_delta,
                p99_ratio: ind.p99_delay_s / joint.p99_delay_s.max(f64::EPSILON),
                joint_wins_both: fps_ratio > 1.0 && fairness_delta > 0.0,
            });
        }
        records.extend(cell);
    }
    SessionSweepReport {
        records,
        comparisons,
    }
}

/// Run one cell: the same N loops on the same WAN under each policy.
fn run_cell(
    config: &SessionSweepConfig,
    family_idx: usize,
    count_idx: usize,
) -> Vec<SessionSweepRecord> {
    let family = &config.families[family_idx];
    let n = config.session_counts[count_idx];
    let wan = contention_wan(n);
    let cell = (family_idx * config.session_counts.len() + count_idx) as u64;
    let seed = scenario_seed(config.seed, cell);
    let policies = [
        MappingPolicy::Independent,
        MappingPolicy::Joint,
        MappingPolicy::ClientServer,
    ];
    policies
        .iter()
        .filter_map(|&policy| {
            let sessions: Vec<SessionLoopSpec> = (0..n)
                .map(|i| SessionLoopSpec {
                    id: i as u64 + 1,
                    pipeline: demo_session_pipeline(
                        family.base_scale + family.scale_step * i as f64,
                    ),
                    source: wan.sources[i],
                    client: wan.clients[i],
                    frames: config.frames,
                    start_at: 0.0,
                })
                .collect();
            let spec = MultiSessionSpec {
                topology: wan.topology.clone(),
                cm: wan.cm,
                sessions,
                policy,
                seed,
                target_goodput: config.target_goodput,
                adaptive: false,
                adapt: config.adapt.clone(),
                joint_rounds: config.joint_rounds,
                max_virtual_time: config.max_virtual_time,
            };
            run_multi_session(&spec)
                .ok()
                .map(|run| to_record(family, n, wan.trunk_nodes(), &run))
        })
        .collect()
}

/// Fold one run into its sweep record.
fn to_record(
    family: &ContentionFamily,
    n: usize,
    trunk: (usize, usize),
    run: &MultiSessionRun,
) -> SessionSweepRecord {
    let mut delays: Vec<f64> = run
        .sessions
        .iter()
        .flat_map(|s| s.delays.iter().copied())
        .collect();
    delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if delays.is_empty() {
        0.0
    } else {
        delays.iter().sum::<f64>() / delays.len() as f64
    };
    let trunk_users = run
        .sessions
        .iter()
        .filter(|s| {
            s.paths.first().is_some_and(|p| {
                p.windows(2).any(|w| {
                    (w[0], w[1]) == (trunk.0, trunk.1) || (w[1], w[0]) == (trunk.0, trunk.1)
                })
            })
        })
        .count();
    SessionSweepRecord {
        family: family.label.clone(),
        n,
        policy: run.policy.clone(),
        completed: run.sessions.iter().map(|s| s.completed).sum(),
        lost: run.sessions.iter().map(|s| s.lost).sum(),
        duplicated: run.sessions.iter().map(|s| s.duplicated).sum(),
        aggregate_fps: run.aggregate_fps,
        fairness: run.fairness,
        mean_delay_s: mean,
        p99_delay_s: percentile(&delays, 0.99),
        predicted_aggregate_s: run.predicted_aggregate,
        trunk_users,
        duration_s: run.duration,
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Render a sweep report as an aligned text table plus comparison lines.
pub fn format_session_sweep_report(report: &SessionSweepReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12}{:>4}  {:<14}{:>6}{:>6}{:>5}{:>10}{:>10}{:>10}{:>10}{:>7}\n",
        "family",
        "n",
        "policy",
        "done",
        "lost",
        "dup",
        "agg fps",
        "fairness",
        "mean s",
        "p99 s",
        "trunk"
    ));
    for r in &report.records {
        out.push_str(&format!(
            "{:<12}{:>4}  {:<14}{:>6}{:>6}{:>5}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>7}\n",
            r.family,
            r.n,
            r.policy,
            r.completed,
            r.lost,
            r.duplicated,
            r.aggregate_fps,
            r.fairness,
            r.mean_delay_s,
            r.p99_delay_s,
            r.trunk_users,
        ));
    }
    out.push('\n');
    for c in &report.comparisons {
        out.push_str(&format!(
            "{} n={}: joint/independent fps {:.2}x, fairness {:+.3}, p99 {:.2}x shorter{}\n",
            c.family,
            c.n,
            c.fps_ratio,
            c.fairness_delta,
            c.p99_ratio,
            if c.joint_wins_both {
                "  [joint wins both]"
            } else {
                ""
            }
        ));
    }
    out.push_str(&format!(
        "joint beat independent on throughput AND fairness in {}/{} cells\n",
        report.joint_double_wins(),
        report.comparisons.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SessionSweepConfig {
        SessionSweepConfig {
            session_counts: vec![2, 3],
            families: vec![ContentionFamily::ramp(1.0, 0.1)],
            frames: 3,
            ..SessionSweepConfig::default()
        }
    }

    #[test]
    fn session_sweep_audits_cleanly_and_reproduces() {
        let config = tiny_config();
        let a = run_session_sweep(&config);
        assert_eq!(a.records.len(), 2 * 3, "2 cells × 3 policies");
        assert_eq!(a.comparisons.len(), 2);
        for r in &a.records {
            assert_eq!(
                r.lost, 0,
                "{} n={} {}: lost frames",
                r.family, r.n, r.policy
            );
            assert_eq!(
                r.duplicated, 0,
                "{} n={} {}: dup frames",
                r.family, r.n, r.policy
            );
            assert_eq!(r.completed, 3 * r.n as u64, "every frame of every session");
            assert!(r.p99_delay_s >= r.mean_delay_s * 0.5);
            assert!(r.aggregate_fps > 0.0 && r.fairness > 0.0 && r.fairness <= 1.0 + 1e-9);
        }
        let b = run_session_sweep(&config);
        assert_eq!(a, b, "virtual-time metrics must reproduce per seed");
        let table = format_session_sweep_report(&a);
        assert!(table.contains("joint/independent fps"));
        assert!(table.contains("cells"));
    }

    #[test]
    fn joint_never_predicts_worse_than_independent_in_any_cell() {
        let report = run_session_sweep(&tiny_config());
        for c in report.comparisons.iter() {
            let ind = report
                .records
                .iter()
                .find(|r| r.family == c.family && r.n == c.n && r.policy == "independent")
                .unwrap();
            let joint = report
                .records
                .iter()
                .find(|r| r.family == c.family && r.n == c.n && r.policy == "joint")
                .unwrap();
            assert!(
                joint.predicted_aggregate_s <= ind.predicted_aggregate_s + 1e-9,
                "{} n={}: joint predicted {} > independent {}",
                c.family,
                c.n,
                joint.predicted_aggregate_s,
                ind.predicted_aggregate_s
            );
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&sorted, 0.99), 4.0);
        assert_eq!(percentile(&sorted[..1], 0.99), 1.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }
}
