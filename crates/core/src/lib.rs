//! The RICSA framework: roles, protocol, steering sessions and experiments.
//!
//! This crate ties the substrates together into the system of the paper's
//! Fig. 1: an Ajax client / front end, a central-management (CM) node, a
//! simulation/data-source (DS) node and computing-service (CS) nodes,
//! connected by a control channel (steering and visualization parameters)
//! and a data channel (datasets, geometry, images) over the simulated
//! wide-area network.
//!
//! * [`message`] — the control-protocol messages exchanged over the loop,
//! * [`catalog`] — the simulation/dataset catalog and standard pipeline
//!   construction from calibrated cost models,
//! * [`stage`] — the pipeline-stage application (data source, computing
//!   service, client) that moves data around the loop with the
//!   Robbins–Monro transport and simulates module processing times,
//! * [`roles`] — the client/front-end and central-management applications,
//! * [`session`] — assembling one steering session on a topology,
//! * [`experiment`] — the Fig. 9 / Fig. 10 experiment drivers,
//! * [`sweep`] — the scenario-sweep driver evaluating the optimizer across
//!   generated WAN families (see DESIGN.md §6),
//! * [`adapt`] — the adaptive re-mapping driver: frame-paced loops on
//!   time-varying WANs with monitor-decided, frame-boundary migrations
//!   (see DESIGN.md §8),
//! * [`adapt_sweep`] — the dynamic-scenario sweep quantifying
//!   static-vs-adaptive-vs-oracle win rates across hundreds of seeded
//!   schedules (see DESIGN.md §9),
//! * [`sessions`] — multi-session serving: many frame-paced user loops
//!   contending on one WAN, mapped independently or by the
//!   contention-aware joint solve, with live spawn/retire/migrate through
//!   per-node session muxes (see DESIGN.md §11),
//! * [`session_sweep`] — the multi-session sweep quantifying
//!   joint-vs-independent-vs-client/server throughput, tail latency and
//!   Jain fairness across session counts and contention families,
//! * [`api`] — the `Ricsa*` simulation-side API mirroring the six calls the
//!   paper inserts into VH1 (Fig. 7), used by the web front end and the
//!   examples to steer a live in-process simulation.

#![deny(missing_docs)]

pub mod adapt;
pub mod adapt_sweep;
pub mod api;
pub mod catalog;
pub mod experiment;
pub mod message;
pub mod roles;
pub mod session;
pub mod session_sweep;
pub mod sessions;
pub mod stage;
pub mod sweep;

pub use adapt::{run_adaptive_loop, AdaptPolicy, AdaptiveLoopSpec, AdaptiveRun};
pub use adapt_sweep::{
    format_adapt_sweep_report, run_adapt_sweep, AdaptSweepConfig, AdaptSweepReport,
};
pub use api::{SimulationCommand, SimulationServer, SimulationStatus};
pub use catalog::{standard_pipeline, SessionSpec, SimulationCatalog};
pub use experiment::{
    fig10_experiment, fig9_experiment, run_loop_experiment, Fig10Row, Fig9Row, LoopResult, LoopSpec,
};
pub use message::ControlMessage;
pub use session::{SessionPlan, SteeringSession};
pub use session_sweep::{
    format_session_sweep_report, run_session_sweep, ContentionFamily, PolicyComparison,
    SessionSweepConfig, SessionSweepRecord, SessionSweepReport,
};
pub use sessions::{
    contention_wan, jain_fairness, run_multi_session, MappingPolicy, MultiSessionRun,
    MultiSessionSpec, SessionLoopSpec, SessionMux, SessionRun,
};
pub use sweep::{format_sweep_report, run_sweep, ScenarioOutcome, SweepConfig, SweepReport};
