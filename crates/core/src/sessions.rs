//! Multi-session serving: many frame-paced user loops on one WAN.
//!
//! One RICSA deployment serves many users at once, each steering their own
//! pipeline.  All those loops run against the *same* simulated WAN — the
//! sessions contend for links, and one session's traffic is another
//! session's cross-traffic.  This module is the session manager:
//!
//! * [`SessionMux`] — the per-node application that lets several sessions'
//!   [`StageApp`]s share a node: datagrams are routed by the session
//!   encoded in their flow id (or control-message session field), and
//!   timers are routed to the stage that armed them.  Sessions can be
//!   inserted and removed while the simulation runs, which is how loops
//!   spawn and retire live.
//! * [`run_multi_session`] — spawns N frame-paced loops on one
//!   [`Simulator`], maps them under a [`MappingPolicy`] (independent
//!   per-session solves, the contention-aware joint solve of
//!   [`ricsa_pipemap::joint`], or the client/server baseline), drives
//!   every loop concurrently, and audits per session that every requested
//!   frame is delivered exactly once.
//! * Per-session adaptive monitors ([`ricsa_adapt`]) ingest each loop's
//!   own passive telemetry.  Because links are shared, a monitor's
//!   estimates move when *other* sessions load or free a link: a retiring
//!   (or migrating) session frees bandwidth and the survivors' detectors
//!   see the recovery.  With `adaptive` enabled, a confirmed improvement
//!   migrates the session at its next frame boundary using the same
//!   quiesce → teardown → VRT-handoff → resume protocol as
//!   [`crate::adapt`].
//! * [`contention_wan`] — the N-session benchmark WAN: every session has a
//!   fast route over a shared two-hub trunk and a private (slightly
//!   slower) relay route.  Independent solves all pile onto the trunk;
//!   the joint solve spreads the load.
//!
//! DESIGN.md §11 documents the layer; the `session_sweep` bench bin
//! quantifies joint-vs-independent-vs-client/server across session counts.

use crate::message::{ControlMessage, CONTROL_REDUNDANCY, KIND_CONTROL};
use crate::stage::{LinkTelemetrySink, StageApp, StageConfig};
use ricsa_adapt::monitor::{AdaptConfig, AdaptMonitor, Decision};
use ricsa_netsim::app::{Application, Context};
use ricsa_netsim::dynamics::{DynamicScenario, LinkChange, LinkEvent};
use ricsa_netsim::link::{LinkId, LinkSpec};
use ricsa_netsim::node::{NodeId, NodeSpec};
use ricsa_netsim::packet::{Datagram, Payload};
use ricsa_netsim::sim::Simulator;
use ricsa_netsim::time::SimTime;
use ricsa_netsim::topology::Topology;
use ricsa_netsim::trace::TraceKind;
use ricsa_pipemap::delay::{evaluate_mapping, Mapping};
use ricsa_pipemap::dp::{optimize_with, OptimizedMapping};
use ricsa_pipemap::joint::{contended_delays, solve_joint, JointOptions, JointSession};
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::Pipeline;
use ricsa_pipemap::sweep::client_server_on_route;
use ricsa_pipemap::vrt::VisualizationRoutingTable;
use ricsa_transport::flow::{KIND_ACK, KIND_DATA};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

// ------------------------------------------------------------ session mux

/// Mutable state shared between a node's installed mux shell and the
/// session manager's handle to it.
struct MuxState {
    /// Session id → that session's stage on this node.
    inners: BTreeMap<u64, StageApp>,
    /// Timer id → the session whose stage armed it.  Ids are per-node
    /// monotonic and fire at most once, so entries are removed on fire;
    /// a timer whose owner has since been removed is dropped.
    timer_owner: HashMap<u64, u64>,
}

/// Route one callback into a session's inner stage, recording any timers
/// the stage arms during the callback as owned by that session.
fn deliver(
    state: &mut MuxState,
    session: u64,
    ctx: &mut Context,
    f: impl FnOnce(&mut StageApp, &mut Context),
) {
    let MuxState {
        inners,
        timer_owner,
    } = state;
    let Some(app) = inners.get_mut(&session) else {
        return;
    };
    let before: HashSet<u64> = ctx.scheduled_timers().iter().map(|t| t.timer_id).collect();
    f(app, ctx);
    for t in ctx.scheduled_timers() {
        if !before.contains(&t.timer_id) {
            timer_owner.insert(t.timer_id, session);
        }
    }
}

/// The session a datagram belongs to: the session field of a control
/// message when it has one, otherwise the high bits of the transport flow
/// id ([`crate::stage::flow_id`] packs the session at bit 40).  `None`
/// means "no session identity" and the datagram is offered to every
/// resident stage (each filters by its own configuration).
fn datagram_session(payload: &Payload) -> Option<u64> {
    if payload.kind == KIND_CONTROL {
        return match ControlMessage::from_payload(payload)? {
            ControlMessage::VrtDelivery { session, .. }
            | ControlMessage::BeginIteration { session, .. }
            | ControlMessage::ImageReady { session, .. } => Some(session),
            _ => None,
        };
    }
    match payload.kind {
        KIND_DATA | KIND_ACK => Some(payload.flow >> 40),
        _ => None,
    }
}

/// A node application multiplexing the pipeline stages of many sessions.
///
/// The shell installed into the simulator and the handles the session
/// manager keeps share one [`Rc`]'d state, so stages can be inserted and
/// removed while the simulation runs — that is how sessions spawn, retire
/// and migrate live.  Late-inserted stages do not receive `on_start`
/// (this manager never configures a client drive, whose initial request
/// is the only thing `StageApp::on_start` does).
pub struct SessionMux {
    state: Rc<RefCell<MuxState>>,
}

impl Clone for SessionMux {
    fn clone(&self) -> Self {
        SessionMux {
            state: Rc::clone(&self.state),
        }
    }
}

impl Default for SessionMux {
    fn default() -> Self {
        SessionMux::new()
    }
}

impl SessionMux {
    /// An empty mux.
    pub fn new() -> Self {
        SessionMux {
            state: Rc::new(RefCell::new(MuxState {
                inners: BTreeMap::new(),
                timer_owner: HashMap::new(),
            })),
        }
    }

    /// Insert (or replace) `session`'s stage on this node.
    pub fn insert(&self, session: u64, app: StageApp) {
        self.state.borrow_mut().inners.insert(session, app);
    }

    /// Remove `session`'s stage; its not-yet-fired timers will be dropped
    /// when they fire.  Returns whether a stage was resident.
    pub fn remove(&self, session: u64) -> bool {
        self.state.borrow_mut().inners.remove(&session).is_some()
    }

    /// Session ids with a resident stage, ascending.
    pub fn sessions(&self) -> Vec<u64> {
        self.state.borrow().inners.keys().copied().collect()
    }

    /// A shell sharing this mux's state, boxed for [`Simulator::install`].
    pub fn shell(&self) -> Box<dyn Application> {
        Box::new(self.clone())
    }
}

impl Application for SessionMux {
    fn on_start(&mut self, ctx: &mut Context) {
        let state = &mut *self.state.borrow_mut();
        let ids: Vec<u64> = state.inners.keys().copied().collect();
        for session in ids {
            deliver(state, session, ctx, |app, ctx| app.on_start(ctx));
        }
    }

    fn on_datagram(&mut self, ctx: &mut Context, dg: Datagram) {
        let state = &mut *self.state.borrow_mut();
        match datagram_session(&dg.payload) {
            Some(session) => deliver(state, session, ctx, |app, ctx| app.on_datagram(ctx, dg)),
            None => {
                let ids: Vec<u64> = state.inners.keys().copied().collect();
                for session in ids {
                    let copy = dg.clone();
                    deliver(state, session, ctx, |app, ctx| app.on_datagram(ctx, copy));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, timer_id: u64) {
        let state = &mut *self.state.borrow_mut();
        let Some(session) = state.timer_owner.remove(&timer_id) else {
            return;
        };
        deliver(state, session, ctx, |app, ctx| app.on_timer(ctx, timer_id));
    }
}

// -------------------------------------------------------------- the spec

/// How the manager maps the contending sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Every session solves the pristine graph in isolation (and they all
    /// pile onto the same "optimal" links).
    Independent,
    /// The contention-aware joint solve of [`ricsa_pipemap::joint`].
    Joint,
    /// The paper's client/server baseline: ship everything over the
    /// default route and compute at the endpoints.
    ClientServer,
}

impl MappingPolicy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            MappingPolicy::Independent => "independent",
            MappingPolicy::Joint => "joint",
            MappingPolicy::ClientServer => "client-server",
        }
    }
}

/// One user loop in a multi-session run.
#[derive(Debug, Clone)]
pub struct SessionLoopSpec {
    /// Session identifier (flow-id namespace; must be unique and below
    /// `2^24` so it fits the flow-id session bits).
    pub id: u64,
    /// The session's visualization pipeline.
    pub pipeline: Pipeline,
    /// Data-source node (must be unique per session: frame starts are
    /// attributed to sessions by source node).
    pub source: NodeId,
    /// Client node (must be unique per session: frame completions are
    /// attributed to sessions by client node).
    pub client: NodeId,
    /// Frames to pull through the loop before the session retires.
    pub frames: u64,
    /// Virtual time at which the loop spawns (0 = at simulation start).
    pub start_at: f64,
}

/// Everything one multi-session run is configured with.
#[derive(Debug, Clone)]
pub struct MultiSessionSpec {
    /// The shared WAN.
    pub topology: Topology,
    /// Central-management node (injects `BeginIteration` and VRT
    /// handoffs; must not be any session's data source).
    pub cm: NodeId,
    /// The user loops.
    pub sessions: Vec<SessionLoopSpec>,
    /// How the sessions are mapped.
    pub policy: MappingPolicy,
    /// Simulator seed.
    pub seed: u64,
    /// Target goodput of the stage-to-stage flows, bytes/second.
    pub target_goodput: f64,
    /// Wire a per-session [`AdaptMonitor`] and migrate a session at its
    /// frame boundary when its monitor confirms a better mapping.
    /// Monitors also run (estimates only) when this is off.
    pub adaptive: bool,
    /// Monitor configuration (also supplies the DP options every policy
    /// solves with).
    pub adapt: AdaptConfig,
    /// Round bound for the joint best-response iteration.
    pub joint_rounds: usize,
    /// Virtual-time budget for the whole run.
    pub max_virtual_time: SimTime,
}

// ------------------------------------------------------------- the result

/// Per-session outcome of a multi-session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRun {
    /// Session identifier.
    pub id: u64,
    /// Data paths used, in order (initial mapping, then one per
    /// migration).
    pub paths: Vec<Vec<usize>>,
    /// Frames requested.
    pub requested: u64,
    /// Distinct frames delivered to the client.
    pub completed: u64,
    /// Requested frames never delivered (0 on a healthy run).
    pub lost: u64,
    /// Extra deliveries of an already-delivered frame (0 on a healthy
    /// run).
    pub duplicated: u64,
    /// Measured end-to-end delay of each completed frame, frame order.
    pub delays: Vec<f64>,
    /// Virtual start time of each completed frame, frame order.
    pub starts: Vec<f64>,
    /// Migrations executed.
    pub migrations: u64,
    /// Virtual time the loop spawned.
    pub spawned_at: f64,
    /// Virtual time the loop retired (`None` if it ran out the budget).
    pub retired_at: Option<f64>,
    /// Frames per virtual second over the session's active window.
    pub fps: f64,
    /// Final per-link bandwidth-scale estimates of the session's monitor
    /// (`(from, to, current/baseline goodput)`): > 1 on a link whose
    /// congestion receded while the session watched it.
    pub link_scales: Vec<(usize, usize, f64)>,
}

/// The outcome of one multi-session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSessionRun {
    /// Mapping policy name.
    pub policy: String,
    /// Per-session outcomes, spec order.
    pub sessions: Vec<SessionRun>,
    /// Virtual time the run ended.
    pub duration: f64,
    /// Total completed frames across sessions divided by the virtual time
    /// from first spawn to last completion.
    pub aggregate_fps: f64,
    /// Jain fairness index of the per-session frame rates.
    pub fairness: f64,
    /// The solver's predicted aggregate frame delay, scored for every
    /// policy under the same contended model (each link's bandwidth
    /// divided by its total assigned load), so values are comparable
    /// across policies.
    pub predicted_aggregate: f64,
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`: 1 when every session gets the
/// same rate, `1/n` when one session gets everything.  1 for an empty (or
/// all-zero) input by convention.
pub fn jain_fairness(rates: &[f64]) -> f64 {
    let sum: f64 = rates.iter().sum();
    let squares: f64 = rates.iter().map(|r| r * r).sum();
    if squares <= 0.0 || rates.is_empty() {
        return 1.0;
    }
    (sum * sum) / (rates.len() as f64 * squares)
}

// -------------------------------------------------------------- the WAN

/// The N-session contention WAN (see [`contention_wan`]).
#[derive(Debug, Clone)]
pub struct ContentionWan {
    /// The topology.
    pub topology: Topology,
    /// First trunk hub.
    pub hub1: NodeId,
    /// Second trunk hub.
    pub hub2: NodeId,
    /// Per-session data sources.
    pub sources: Vec<NodeId>,
    /// Per-session private relay nodes.
    pub mids: Vec<NodeId>,
    /// Per-session clients.
    pub clients: Vec<NodeId>,
    /// Central-management node.
    pub cm: NodeId,
    /// Both directions of the shared hub1–hub2 trunk.
    pub trunk: (LinkId, LinkId),
}

impl ContentionWan {
    /// The trunk's endpoint node indices `(hub1, hub2)` — a data path
    /// crosses the trunk iff these appear adjacent in it.
    pub fn trunk_nodes(&self) -> (usize, usize) {
        (self.hub1.0, self.hub2.0)
    }
}

/// Build the `n`-session contention WAN: session `i` owns source `S_i`,
/// relay `M_i` and client `C_i`.  The fast route `S_i → hub1 → hub2 → C_i`
/// shares the hub trunk with every other session; the private route
/// `S_i → M_i → C_i` is slightly slower but uncontended.  The hubs are
/// pure routers (weak, no graphics), so the bulk geometry must cross the
/// trunk rather than being rendered down before it.  In isolation the
/// trunk wins, so independent solves all pile onto it; with the trunk
/// split k ways the private route wins, which is what the joint solve
/// (and an adaptive monitor watching goodput collapse) discovers.
pub fn contention_wan(n: usize) -> ContentionWan {
    let mut t = Topology::new();
    let hub1 = t.add_node(NodeSpec::headless("hub1", 0.5));
    let hub2 = t.add_node(NodeSpec::headless("hub2", 0.5));
    let cm = t.add_node(NodeSpec::workstation("cm", 1.0));
    let trunk = t.connect(hub1, hub2, LinkSpec::from_mbps(320.0, 0.008));
    let mut sources = Vec::with_capacity(n);
    let mut mids = Vec::with_capacity(n);
    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let s = t.add_node(NodeSpec::headless(format!("src{i}"), 1.0));
        let m = t.add_node(NodeSpec::headless(format!("mid{i}"), 2.0));
        let c = t.add_node(NodeSpec::workstation(format!("client{i}"), 1.5));
        t.connect(s, hub1, LinkSpec::from_mbps(400.0, 0.004));
        t.connect(hub2, c, LinkSpec::from_mbps(400.0, 0.004));
        t.connect(s, m, LinkSpec::from_mbps(200.0, 0.012));
        t.connect(m, c, LinkSpec::from_mbps(200.0, 0.012));
        t.connect(cm, s, LinkSpec::from_mbps(80.0, 0.010));
        t.connect(cm, c, LinkSpec::from_mbps(80.0, 0.010));
        sources.push(s);
        mids.push(m);
        clients.push(c);
    }
    ContentionWan {
        topology: t,
        hub1,
        hub2,
        sources,
        mids,
        clients,
        cm,
        trunk,
    }
}

/// A transfer-dominated demonstration pipeline for multi-session runs;
/// `scale` varies the data volume so co-scheduled sessions differ.  The
/// geometry stays large until the final render (extraction enriches
/// rather than decimates), so the bulk transfer crosses whatever
/// wide-area link the mapping picks — which is what makes sessions
/// genuinely contend on a shared trunk.
pub fn demo_session_pipeline(scale: f64) -> Pipeline {
    use ricsa_pipemap::pipeline::ModuleSpec;
    Pipeline::new(
        "session",
        1.6e6 * scale,
        vec![
            ModuleSpec::new("filter", 2e-9, 1.6e6 * scale),
            ModuleSpec::new("extract", 1e-8, 1.2e6 * scale),
            ModuleSpec::new("render", 5e-9, 1.6e5 * scale).requiring_graphics(),
        ],
    )
}

// ------------------------------------------------------------ the driver

/// Drain window before a migration's teardown, virtual seconds.
const QUIESCE_S: f64 = 0.25;
/// Settle window after a migration's VRT handoff, virtual seconds.
const HANDOFF_SETTLE_S: f64 = 0.05;
/// Polling granularity of the driving loop, virtual seconds.
const STEP_S: f64 = 0.25;
/// Begin re-injections tolerated per frame before a session is declared
/// stalled.
const MAX_RETRIES: u32 = 16;

/// Multi-session trace audit: completions are attributed to sessions by
/// client node, frame starts by source node (which is why those must be
/// unique per session).  A cursor keeps each trace event read once.
#[derive(Default)]
struct MultiAudit {
    pos: usize,
    /// `(client node, iteration)` → (completions, first completion time).
    completions: BTreeMap<(usize, u64), (u32, f64)>,
    /// `(source node, iteration)` → first start time.
    starts: BTreeMap<(usize, u64), f64>,
}

impl MultiAudit {
    fn update(&mut self, sim: &Simulator) {
        let events = &sim.trace().events;
        for event in &events[self.pos..] {
            match &event.kind {
                TraceKind::IterationCompleted { iteration, .. } => {
                    let entry = self
                        .completions
                        .entry((event.node.0, *iteration))
                        .or_insert((0, event.at.as_secs()));
                    entry.0 += 1;
                }
                TraceKind::Note { label, .. } => {
                    if let Some(k) = label.strip_prefix("iteration-start:") {
                        if let Ok(k) = k.parse::<u64>() {
                            self.starts
                                .entry((event.node.0, k))
                                .or_insert(event.at.as_secs());
                        }
                    }
                }
                _ => {}
            }
        }
        self.pos = events.len();
    }
}

/// Live state of one session inside the driving loop.
struct LiveSession {
    spec: SessionLoopSpec,
    mapping: Mapping,
    predicted: f64,
    /// The frame currently being pulled through the loop.
    frame: u64,
    retries: u32,
    spawned: bool,
    spawned_at: f64,
    done: bool,
    retired_at: Option<f64>,
    stalled: bool,
    telemetry: LinkTelemetrySink,
    monitor: Option<AdaptMonitor>,
    pending_remap: Option<Box<OptimizedMapping>>,
    paths: Vec<Vec<usize>>,
    migrations: u64,
}

/// Solve the initial mappings under the spec's policy.  Returns one
/// `(mapping, predicted total delay)` per session; the second element of
/// the tuple is the solver's predicted aggregate.
fn solve_mappings(
    spec: &MultiSessionSpec,
    graph: &NetGraph,
) -> Result<(Vec<(Mapping, f64)>, f64), String> {
    let joint_sessions: Vec<JointSession> = spec
        .sessions
        .iter()
        .map(|s| JointSession {
            pipeline: s.pipeline.clone(),
            source: s.source.0,
            destination: s.client.0,
        })
        .collect();
    let mappings: Vec<Mapping> = match spec.policy {
        MappingPolicy::Independent => {
            let mut out = Vec::with_capacity(spec.sessions.len());
            for s in &spec.sessions {
                let (opt, _) = optimize_with(
                    &s.pipeline,
                    graph,
                    s.source.0,
                    s.client.0,
                    &spec.adapt.options,
                );
                let opt = opt.ok_or_else(|| format!("session {}: no feasible mapping", s.id))?;
                out.push(opt.mapping);
            }
            out
        }
        MappingPolicy::Joint => {
            let options = JointOptions {
                max_rounds: spec.joint_rounds,
                dp: spec.adapt.options,
            };
            let solution = solve_joint(&joint_sessions, graph, &options)
                .ok_or_else(|| "joint solve: some session has no feasible mapping".to_string())?;
            solution.mappings
        }
        MappingPolicy::ClientServer => {
            let mut out = Vec::with_capacity(spec.sessions.len());
            for s in &spec.sessions {
                let (mapping, _) =
                    client_server_on_route(&s.pipeline, graph, s.source.0, s.client.0)
                        .ok_or_else(|| format!("session {}: no route at all", s.id))?;
                out.push(mapping);
            }
            out
        }
    };
    // Predict every policy's outcome under the same contended model (each
    // link's bandwidth divided by its total assigned load), so aggregates
    // are comparable across policies — and the joint policy's guarantee
    // (never worse than independent under this objective) is visible in
    // the run records.
    let contended = contended_delays(&joint_sessions, graph, &mappings);
    let aggregate = contended.iter().map(|d| d.total).sum();
    Ok((
        mappings
            .into_iter()
            .zip(contended)
            .map(|(m, d)| (m, d.total))
            .collect(),
        aggregate,
    ))
}

/// Install one session's stages (its current mapping) into the per-node
/// muxes, creating and installing a mux shell on nodes that have none yet.
fn install_session(
    sim: &mut Simulator,
    muxes: &mut BTreeMap<usize, SessionMux>,
    session: &LiveSession,
    first_iteration: u64,
    target_goodput: f64,
) -> Result<(), String> {
    let LiveSession {
        spec: session,
        mapping,
        predicted,
        telemetry,
        ..
    } = session;
    let path = &mapping.path;
    for (i, node) in path.iter().enumerate() {
        if path[i + 1..].contains(node) {
            return Err(format!(
                "session {}: data path revisits node {node}: {path:?}",
                session.id
            ));
        }
    }
    let graph = NetGraph::from_topology(sim.topology());
    let vrt =
        VisualizationRoutingTable::from_mapping(&session.pipeline, &graph, mapping, *predicted);
    let hop_count = path.len();
    for (i, &node_idx) in path.iter().enumerate() {
        let entry = &vrt.entries[i];
        let power = graph.node(node_idx).power;
        let processing: f64 = mapping.groups[i]
            .iter()
            .map(|&m| session.pipeline.processing_time(m, power))
            .sum();
        let incoming_bytes = if i == 0 {
            0
        } else {
            vrt.entries[i - 1].forward_bytes as usize
        };
        let config = StageConfig {
            session: session.id,
            hop_index: i,
            hop_count,
            previous: (i > 0).then(|| NodeId(path[i - 1])),
            next: (i + 1 < hop_count).then(|| NodeId(path[i + 1])),
            incoming_bytes,
            outgoing_bytes: entry.forward_bytes as usize,
            processing_seconds: processing,
            target_goodput,
            stage_label: format!("{}[{}]", entry.node_name, entry.modules.join(",")),
            drive: None,
            first_iteration,
            telemetry: Some(telemetry.clone()),
        };
        let mux = muxes.entry(node_idx).or_default();
        let fresh = mux.sessions().is_empty();
        mux.insert(session.id, StageApp::new(config));
        if fresh {
            sim.install(NodeId(node_idx), mux.shell());
        }
    }
    Ok(())
}

/// Remove one session's stages from its current path's muxes.
fn remove_session(muxes: &mut BTreeMap<usize, SessionMux>, session_id: u64, path: &[usize]) {
    for node in path {
        if let Some(mux) = muxes.get_mut(node) {
            mux.remove(session_id);
        }
    }
}

/// Inject a redundant `BeginIteration` from the CM to a session's source.
fn inject_begin(sim: &mut Simulator, cm: NodeId, source: NodeId, session: u64, iteration: u64) {
    let begin = ControlMessage::BeginIteration { session, iteration };
    for _ in 0..CONTROL_REDUNDANCY {
        sim.inject(cm, source, begin.to_payload());
    }
}

/// Run N frame-paced user loops concurrently on one simulated WAN.
/// Errors only on structurally impossible input: duplicate session
/// ids/sources/clients, the CM on a data source, an id overflowing the
/// flow-id session bits, or a session with no feasible mapping.
pub fn run_multi_session(spec: &MultiSessionSpec) -> Result<MultiSessionRun, String> {
    // Structural validation: the audit attributes frames by node.
    let mut ids = HashSet::new();
    let mut sources = HashSet::new();
    let mut clients = HashSet::new();
    for s in &spec.sessions {
        if s.id >= 1 << 24 {
            return Err(format!("session id {} overflows the flow-id bits", s.id));
        }
        if !ids.insert(s.id) {
            return Err(format!("duplicate session id {}", s.id));
        }
        if !sources.insert(s.source) {
            return Err(format!("session {}: duplicate source node", s.id));
        }
        if !clients.insert(s.client) {
            return Err(format!("session {}: duplicate client node", s.id));
        }
        if s.source == spec.cm {
            return Err(format!(
                "session {}: the CM must not be a data source",
                s.id
            ));
        }
        if s.frames == 0 {
            return Err(format!("session {}: zero frames requested", s.id));
        }
    }

    let base_graph = NetGraph::from_topology(&spec.topology);
    let (solved, predicted_aggregate) = solve_mappings(spec, &base_graph)?;

    let mut sim = Simulator::new(spec.topology.clone(), spec.seed);
    let mut muxes: BTreeMap<usize, SessionMux> = BTreeMap::new();
    let mut audit = MultiAudit::default();

    // The simulator clock only advances while events are queued; if every
    // live loop retires while a later `start_at` is still pending, the WAN
    // goes idle and time would stand still.  A no-op link event
    // (bandwidth × 1.0) at each future spawn keeps the queue alive up to
    // that moment.
    let wakeups: Vec<LinkEvent> = spec
        .sessions
        .iter()
        .filter(|s| s.start_at > 0.0)
        .map(|s| LinkEvent {
            at: SimTime::from_secs(s.start_at),
            link: LinkId(0),
            change: LinkChange::ScaleBandwidth { factor: 1.0 },
        })
        .collect();
    if !wakeups.is_empty() {
        sim.apply_scenario(&DynamicScenario {
            label: "spawn-wakeups".to_string(),
            seed: spec.seed,
            events: wakeups,
        });
    }

    let mut live: Vec<LiveSession> = spec
        .sessions
        .iter()
        .zip(solved)
        .map(|(s, (mapping, predicted))| {
            let telemetry = LinkTelemetrySink::default();
            let initial = OptimizedMapping {
                mapping: mapping.clone(),
                delay: evaluate_mapping(&s.pipeline, &base_graph, &mapping),
                objective: predicted,
            };
            let monitor = AdaptMonitor::with_initial(
                s.pipeline.clone(),
                base_graph.clone(),
                s.source.0,
                s.client.0,
                spec.adapt.clone(),
                initial,
            );
            LiveSession {
                spec: s.clone(),
                paths: vec![mapping.path.clone()],
                mapping,
                predicted,
                frame: 0,
                retries: 0,
                spawned: false,
                spawned_at: 0.0,
                done: false,
                retired_at: None,
                stalled: false,
                telemetry,
                monitor: Some(monitor),
                pending_remap: None,
                migrations: 0,
            }
        })
        .collect();

    // Spawn the loops due at t = 0 before the first step.
    for session in live.iter_mut() {
        if session.spec.start_at <= 0.0 {
            install_session(&mut sim, &mut muxes, session, 0, spec.target_goodput)?;
            inject_begin(&mut sim, spec.cm, session.spec.source, session.spec.id, 0);
            session.spawned = true;
        }
    }

    while live.iter().any(|s| !s.done) {
        if sim.now() >= spec.max_virtual_time {
            break;
        }
        let target = SimTime::from_secs(sim.now().as_secs() + STEP_S).min(spec.max_virtual_time);
        let reached = sim.run_until(target);
        audit.update(&sim);
        let drained = reached.as_secs() + 1e-9 < target.as_secs();
        let now = sim.now().as_secs();

        for session in live.iter_mut() {
            // Late spawns join the contention when their time comes.
            if !session.spawned && now >= session.spec.start_at {
                session.spawned = true;
                session.spawned_at = now;
                session.frame = 0;
                install_session(&mut sim, &mut muxes, session, 0, spec.target_goodput)?;
                inject_begin(&mut sim, spec.cm, session.spec.source, session.spec.id, 0);
                continue;
            }
            if session.done || !session.spawned {
                continue;
            }
            let client_node = session.spec.client.0;
            let frame = session.frame;
            if audit.completions.contains_key(&(client_node, frame)) {
                // Frame boundary: feed the monitor this frame's telemetry
                // (sorted link order keeps the decision trace
                // deterministic) and collect any migration decision.
                session.retries = 0;
                if let Some(monitor) = session.monitor.as_mut() {
                    let snapshot: BTreeMap<(usize, usize), _> = session
                        .telemetry
                        .borrow()
                        .iter()
                        .map(|(k, v)| (*k, v.clone()))
                        .collect();
                    for ((from, to), t) in snapshot {
                        monitor.ingest(from, to, &t);
                    }
                    if let Decision::Remap(opt) = monitor.evaluate(now) {
                        if spec.adaptive {
                            session.pending_remap = Some(opt);
                        }
                    }
                }
                if frame + 1 >= session.spec.frames {
                    // Retire: the loop is complete; free its links.
                    let id = session.spec.id;
                    let path = session.mapping.path.clone();
                    session.done = true;
                    session.retired_at = Some(now);
                    remove_session(&mut muxes, id, &path);
                    continue;
                }
                if let Some(next) = session.pending_remap.take() {
                    migrate_session(&mut sim, &mut muxes, spec, session, *next, frame + 1)?;
                }
                session.frame += 1;
                inject_begin(
                    &mut sim,
                    spec.cm,
                    session.spec.source,
                    session.spec.id,
                    session.frame,
                );
            } else if drained {
                // The whole event queue drained with this frame missing:
                // every redundant Begin copy was lost.  Re-inject, bounded.
                session.retries += 1;
                if session.retries > MAX_RETRIES {
                    session.done = true;
                    session.stalled = true;
                } else {
                    inject_begin(
                        &mut sim,
                        spec.cm,
                        session.spec.source,
                        session.spec.id,
                        session.frame,
                    );
                }
            }
        }
    }

    // Final audit pass, then per-session accounting.
    audit.update(&sim);
    let end = sim.now().as_secs();
    let mut runs = Vec::with_capacity(live.len());
    let mut total_completed = 0u64;
    let mut last_completion: f64 = 0.0;
    let mut rates = Vec::with_capacity(live.len());
    for session in live {
        let requested = if session.spawned {
            (session.frame + 1).min(session.spec.frames)
        } else {
            0
        };
        let client = session.spec.client.0;
        let source = session.spec.source.0;
        let mut delays = Vec::new();
        let mut starts = Vec::new();
        let mut completed = 0u64;
        let mut duplicated = 0u64;
        let mut session_last = session.spawned_at;
        for k in 0..requested {
            if let Some((count, finished)) = audit.completions.get(&(client, k)) {
                completed += 1;
                duplicated += (*count as u64).saturating_sub(1);
                session_last = session_last.max(*finished);
                if let Some(start) = audit.starts.get(&(source, k)) {
                    delays.push(*finished - *start);
                    starts.push(*start);
                }
            }
        }
        let lost = requested - completed;
        let window = (session_last - session.spawned_at).max(f64::EPSILON);
        let fps = completed as f64 / window;
        total_completed += completed;
        last_completion = last_completion.max(session_last);
        rates.push(fps);
        let link_scales = session
            .monitor
            .as_ref()
            .map(|m| {
                m.estimates()
                    .iter()
                    .map(|(&(from, to), e)| (from, to, e.scale))
                    .collect()
            })
            .unwrap_or_default();
        runs.push(SessionRun {
            id: session.spec.id,
            paths: session.paths,
            requested,
            completed,
            lost,
            duplicated,
            delays,
            starts,
            migrations: session.migrations,
            spawned_at: session.spawned_at,
            retired_at: session.retired_at,
            fps,
            link_scales,
        });
    }
    let aggregate_fps = total_completed as f64 / last_completion.max(f64::EPSILON);
    Ok(MultiSessionRun {
        policy: spec.policy.name().to_string(),
        sessions: runs,
        duration: end,
        aggregate_fps,
        fairness: jain_fairness(&rates),
        predicted_aggregate,
    })
}

/// Migrate one session at its frame boundary: quiesce, tear its stages
/// out of the muxes, pay for the VRT handoff on the control channel, and
/// resume on the new path with `first_iteration` so stale datagrams from
/// the pre-migration flows can never open a receiver.  Other sessions
/// keep running throughout — the quiesce/settle windows advance the whole
/// simulation.
fn migrate_session(
    sim: &mut Simulator,
    muxes: &mut BTreeMap<usize, SessionMux>,
    spec: &MultiSessionSpec,
    session: &mut LiveSession,
    next: OptimizedMapping,
    first_iteration: u64,
) -> Result<(), String> {
    let drain_until = SimTime::from_secs(sim.now().as_secs() + QUIESCE_S);
    sim.run_until(drain_until);
    remove_session(muxes, session.spec.id, &session.mapping.path);
    let graph = NetGraph::from_topology(sim.topology());
    let vrt = VisualizationRoutingTable::from_mapping(
        &session.spec.pipeline,
        &graph,
        &next.mapping,
        next.delay.total,
    );
    let delivery = ControlMessage::VrtDelivery {
        session: session.spec.id,
        table: vrt,
    };
    for &node_idx in &next.mapping.path {
        let node = NodeId(node_idx);
        if node == spec.cm {
            continue;
        }
        for _ in 0..CONTROL_REDUNDANCY {
            sim.inject(spec.cm, node, delivery.to_payload());
        }
    }
    session.mapping = next.mapping.clone();
    session.predicted = next.delay.total;
    session.paths.push(next.mapping.path.clone());
    session.migrations += 1;
    install_session(sim, muxes, session, first_iteration, spec.target_goodput)?;
    let settle_until = SimTime::from_secs(sim.now().as_secs() + HANDOFF_SETTLE_S);
    sim.run_until(settle_until);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_scaled(
        wan: &ContentionWan,
        frames: &[u64],
        policy: MappingPolicy,
        scale: f64,
    ) -> MultiSessionSpec {
        let sessions = frames
            .iter()
            .enumerate()
            .map(|(i, &frames)| SessionLoopSpec {
                id: (i + 1) as u64,
                pipeline: demo_session_pipeline(scale * (1.0 + 0.1 * i as f64)),
                source: wan.sources[i],
                client: wan.clients[i],
                frames,
                start_at: 0.0,
            })
            .collect();
        MultiSessionSpec {
            topology: wan.topology.clone(),
            cm: wan.cm,
            sessions,
            policy,
            seed: 17,
            target_goodput: 200e6,
            adaptive: false,
            adapt: AdaptConfig::default(),
            joint_rounds: 6,
            max_virtual_time: SimTime::from_secs(600.0),
        }
    }

    fn spec_for(wan: &ContentionWan, frames: &[u64], policy: MappingPolicy) -> MultiSessionSpec {
        spec_scaled(wan, frames, policy, 1.0)
    }

    fn healthy(run: &MultiSessionRun) {
        for s in &run.sessions {
            assert_eq!(s.lost, 0, "session {}: lost frames", s.id);
            assert_eq!(s.duplicated, 0, "session {}: duplicated frames", s.id);
            assert_eq!(s.completed, s.requested, "session {}", s.id);
            assert!(s.delays.iter().all(|d| *d > 0.0), "session {}", s.id);
        }
    }

    #[test]
    fn single_session_smoke() {
        let wan = contention_wan(1);
        let run = run_multi_session(&spec_for(&wan, &[2], MappingPolicy::Independent)).unwrap();
        healthy(&run);
        assert_eq!(run.sessions[0].paths.len(), 1, "no migrations expected");
        assert!(run.duration > 0.0);
    }

    #[test]
    fn concurrent_sessions_share_trunk_nodes_and_lose_nothing() {
        let wan = contention_wan(2);
        let spec = spec_for(&wan, &[5, 5], MappingPolicy::Independent);
        let run = run_multi_session(&spec).unwrap();
        healthy(&run);
        // Independent solves both ride the shared trunk, so hub1 carries
        // two sessions' stages at once — the mux under test.
        for s in &run.sessions {
            assert!(
                s.paths[0].contains(&wan.hub1.0),
                "session {} should ride the trunk: {:?}",
                s.id,
                s.paths
            );
        }
        assert!(run.aggregate_fps > 0.0);
        assert!(run.fairness > 0.5, "fairness {}", run.fairness);
    }

    #[test]
    fn joint_policy_spreads_sessions_and_beats_independent_delays() {
        let wan = contention_wan(3);
        let independent =
            run_multi_session(&spec_for(&wan, &[4, 4, 4], MappingPolicy::Independent)).unwrap();
        let joint = run_multi_session(&spec_for(&wan, &[4, 4, 4], MappingPolicy::Joint)).unwrap();
        healthy(&independent);
        healthy(&joint);
        // The joint solve moved someone onto a private relay route.
        assert!(
            joint
                .sessions
                .iter()
                .any(|s| wan.mids.iter().any(|m| s.paths[0].contains(&m.0))),
            "joint should use a private route: {:?}",
            joint.sessions.iter().map(|s| &s.paths).collect::<Vec<_>>()
        );
        // The *measured* per-frame delays under the contended simulation
        // are better in aggregate for the joint mapping.
        let mean = |run: &MultiSessionRun| {
            let all: Vec<f64> = run.sessions.iter().flat_map(|s| s.delays.clone()).collect();
            all.iter().sum::<f64>() / all.len() as f64
        };
        assert!(
            mean(&joint) < mean(&independent),
            "joint {} not better than independent {}",
            mean(&joint),
            mean(&independent)
        );
        // And the solver's own prediction agrees.
        assert!(joint.predicted_aggregate <= independent.predicted_aggregate + 1e-9);
    }

    #[test]
    fn retiring_session_frees_the_trunk_and_the_survivor_sees_recovery() {
        let wan = contention_wan(2);
        // Session 1 retires after 3 frames; session 2 keeps pulling.
        // Heavy frames (scale 4 ≈ 6.4 MB) make transfer dominate latency,
        // so sharing the trunk visibly hurts and freeing it visibly helps.
        let spec = spec_scaled(&wan, &[3, 10], MappingPolicy::Independent, 4.0);
        let run = run_multi_session(&spec).unwrap();
        healthy(&run);
        let early_rider = &run.sessions[0];
        let survivor = &run.sessions[1];
        assert!(
            early_rider.retired_at.is_some(),
            "session 1 should have retired"
        );
        // The survivor's frames after the retirement are faster than its
        // frames while both sessions contended for the trunk.
        let retired_at = early_rider.retired_at.unwrap();
        let contended: Vec<f64> = survivor
            .delays
            .iter()
            .zip(&survivor.starts)
            .filter(|(_, s)| **s < retired_at)
            .map(|(d, _)| *d)
            .collect();
        let free: Vec<f64> = survivor
            .delays
            .iter()
            .zip(&survivor.starts)
            .filter(|(_, s)| **s > retired_at)
            .map(|(d, _)| *d)
            .collect();
        assert!(!contended.is_empty() && !free.is_empty());
        let contended_mean = contended.iter().sum::<f64>() / contended.len() as f64;
        let free_mean = free.iter().sum::<f64>() / free.len() as f64;
        assert!(
            free_mean < contended_mean,
            "survivor should speed up after the retirement: contended {contended_mean}, free {free_mean}"
        );
        // ...and its monitor's estimate of the shared trunk recovered: the
        // retiring session's traffic was the survivor's cross-traffic.
        let trunk_scale = survivor
            .link_scales
            .iter()
            .find(|(from, to, _)| *from == wan.hub1.0 && *to == wan.hub2.0)
            .map(|(_, _, scale)| *scale);
        if let Some(scale) = trunk_scale {
            assert!(
                scale > 1.0,
                "survivor's trunk estimate should recover above its contended baseline, got {scale}"
            );
        }
    }

    #[test]
    fn late_spawn_joins_the_contention_and_completes() {
        let wan = contention_wan(2);
        let mut spec = spec_for(&wan, &[8, 4], MappingPolicy::Independent);
        spec.sessions[1].start_at = 2.0;
        let run = run_multi_session(&spec).unwrap();
        healthy(&run);
        assert!(run.sessions[1].spawned_at >= 2.0);
        assert_eq!(run.sessions[1].completed, 4);
    }

    #[test]
    fn session_mux_routes_datagrams_and_timers_by_session() {
        // Two source stages (sessions 7 and 9) on one node, exercised
        // through a raw Context: a BeginIteration for session 9 must only
        // start session 9's processing, and the processing timer must be
        // routed back to the stage that armed it.
        let mk_source = |session: u64| {
            StageApp::new(StageConfig {
                session,
                hop_index: 0,
                hop_count: 2,
                previous: None,
                next: Some(NodeId(1)),
                incoming_bytes: 0,
                outgoing_bytes: 10_000,
                processing_seconds: 0.5,
                target_goodput: 1e6,
                stage_label: format!("src-{session}"),
                drive: None,
                first_iteration: 0,
                telemetry: None,
            })
        };
        let mut mux = SessionMux::new();
        mux.insert(7, mk_source(7));
        mux.insert(9, mk_source(9));
        assert_eq!(mux.sessions(), vec![7, 9]);
        let begin = ControlMessage::BeginIteration {
            session: 9,
            iteration: 0,
        };
        let mut ctx = Context::new(NodeId(0), SimTime::from_secs(1.0), 0, vec![0.5; 4]);
        mux.on_datagram(
            &mut ctx,
            Datagram {
                src: NodeId(2),
                dst: NodeId(0),
                sent_at: SimTime::from_secs(1.0),
                payload: begin.to_payload(),
            },
        );
        // Only session 9 started processing: exactly one timer armed.
        assert_eq!(ctx.scheduled_timers().len(), 1);
        let timer = ctx.scheduled_timers()[0].timer_id;
        // The timer fires: session 9 finishes processing and starts
        // sending — every outgoing data datagram carries session 9's
        // flow-id bits, none session 7's.
        let mut ctx2 = Context::new(NodeId(0), SimTime::from_secs(1.5), 100, vec![0.5; 4]);
        mux.on_timer(&mut ctx2, timer);
        let data: Vec<u64> = ctx2
            .outgoing()
            .iter()
            .filter(|s| s.payload.kind == KIND_DATA)
            .map(|s| s.payload.flow >> 40)
            .collect();
        assert!(!data.is_empty(), "session 9 should be sending");
        assert!(data.iter().all(|&s| s == 9), "flows: {data:?}");
        // A stale timer nobody owns is dropped silently.
        let mut ctx3 = Context::new(NodeId(0), SimTime::from_secs(2.0), 200, vec![0.5; 4]);
        mux.on_timer(&mut ctx3, 12345);
        assert!(ctx3.outgoing().is_empty());
        // Removing a session drops its datagrams from then on.
        assert!(mux.remove(9));
        assert!(!mux.remove(9));
        let mut ctx4 = Context::new(NodeId(0), SimTime::from_secs(2.5), 300, vec![0.5; 4]);
        mux.on_datagram(
            &mut ctx4,
            Datagram {
                src: NodeId(2),
                dst: NodeId(0),
                sent_at: SimTime::from_secs(2.5),
                payload: ControlMessage::BeginIteration {
                    session: 9,
                    iteration: 1,
                }
                .to_payload(),
            },
        );
        assert!(ctx4.scheduled_timers().is_empty());
    }

    #[test]
    fn misconfigured_specs_error() {
        let wan = contention_wan(2);
        let mut spec = spec_for(&wan, &[2, 2], MappingPolicy::Independent);
        spec.sessions[1].id = spec.sessions[0].id;
        assert!(run_multi_session(&spec).is_err());
        let mut spec = spec_for(&wan, &[2, 2], MappingPolicy::Independent);
        spec.sessions[1].source = spec.sessions[0].source;
        assert!(run_multi_session(&spec).is_err());
        let mut spec = spec_for(&wan, &[2, 2], MappingPolicy::Independent);
        spec.sessions[0].frames = 0;
        assert!(run_multi_session(&spec).is_err());
        let mut spec = spec_for(&wan, &[2, 2], MappingPolicy::Independent);
        spec.sessions[0].id = 1 << 24;
        assert!(run_multi_session(&spec).is_err());
    }

    #[test]
    fn jain_fairness_index_behaves() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!((jain_fairness(&[]) - 1.0).abs() < 1e-12);
    }
}
