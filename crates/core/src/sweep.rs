//! The scenario-sweep driver: generate → map → simulate → aggregate.
//!
//! Where [`crate::experiment`] replays the paper's fixed six-site deployment
//! (Figs. 9–10), this module evaluates the optimizer across *families* of
//! generated wide-area topologies ([`ricsa_netsim::generators`]): for
//! each scenario it generates a WAN, maps the standard isosurface pipeline
//! onto it (relay-extended DP versus the default-route baseline — see
//! `ricsa-pipemap::sweep`), optionally simulates both mappings on the
//! discrete-event WAN, and aggregates win-rate and speedup distributions.
//! Scenarios are independent, so the sweep fans out over worker threads via
//! the `rayon` shim.
//!
//! DESIGN.md §6 ("Evaluation book") documents the scenario model and how to
//! read the output.

use crate::catalog::{standard_pipeline, SessionSpec, SimulationCatalog};
use crate::session::{SessionPlan, SteeringSession};
use rayon::prelude::*;
use ricsa_netsim::generators::{generate, GeneratedWan, WanKind};
use ricsa_netsim::node::NodeId;
use ricsa_netsim::sim::Simulator;
use ricsa_netsim::time::SimTime;
use ricsa_pipemap::delay::{DelayBreakdown, Mapping};
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::sweep::{solve_scenario, Scenario, SweepRecord, SweepSummary};
use ricsa_pipemap::vrt::VisualizationRoutingTable;
use ricsa_vizdata::dataset::DatasetKind;
use serde::{Deserialize, Serialize};

/// Configuration of one scenario sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of scenarios to generate (alternating Waxman / transit-stub).
    pub scenarios: usize,
    /// Base RNG seed; scenario `i` derives its own seed from it.
    pub seed: u64,
    /// Smallest generated topology (nodes).
    pub min_nodes: usize,
    /// Largest generated topology (nodes).
    pub max_nodes: usize,
    /// Dataset size pushed around each loop, bytes.
    pub dataset_bytes: usize,
    /// Also simulate both mappings on the discrete-event WAN (the analytic
    /// comparison always runs).
    pub simulate: bool,
    /// Virtual-time budget per simulated loop.
    pub max_virtual_time: SimTime,
    /// Target goodput of the stage-to-stage data flows, bytes/second.
    pub target_goodput: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            scenarios: 50,
            seed: 20080414,
            min_nodes: 6,
            max_nodes: 24,
            dataset_bytes: 4 << 20,
            simulate: true,
            max_virtual_time: SimTime::from_secs(120.0),
            target_goodput: 200e6,
        }
    }
}

impl SweepConfig {
    /// The CI-friendly quick sweep: ≥ 50 small scenarios, simulated, done
    /// in well under a minute.
    pub fn quick() -> Self {
        SweepConfig::default()
    }

    /// A larger sweep for the full evaluation: more scenarios, bigger
    /// topologies, a paper-scale (Jet-sized) dataset.
    pub fn full() -> Self {
        SweepConfig {
            scenarios: 120,
            max_nodes: 64,
            dataset_bytes: 16 << 20,
            max_virtual_time: SimTime::from_secs(600.0),
            ..SweepConfig::default()
        }
    }
}

/// The outcome of one sweep scenario: the analytic record plus, when
/// simulation ran, the measured loop delays of both mappings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Which generator family produced the topology.
    pub kind: WanKind,
    /// The analytic comparison record.
    pub record: SweepRecord,
    /// Measured end-to-end delay of the optimal mapping, seconds.
    pub measured_optimal: Option<f64>,
    /// Measured end-to-end delay of the baseline mapping, seconds.
    pub measured_baseline: Option<f64>,
}

/// Aggregated result of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Win-rate/speedup statistics of the analytic (model-predicted) delays
    /// against the default-route baseline.
    pub analytic: SweepSummary,
    /// Analytic statistics against the client/server ("PC–PC") baseline.
    pub analytic_client_server: SweepSummary,
    /// Win-rate/speedup statistics of the simulated (measured) delays.
    pub simulated: SweepSummary,
}

/// Derive a per-scenario seed that decorrelates neighbouring scenarios.
pub(crate) fn scenario_seed(base: u64, index: u64) -> u64 {
    (base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(index)
}

/// Run a sweep: generate, map, optionally simulate, aggregate.
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    let catalog = SimulationCatalog::default();
    let span = config.max_nodes.max(config.min_nodes) - config.min_nodes + 1;
    let outcomes: Vec<ScenarioOutcome> = (0..config.scenarios)
        .into_par_iter()
        .map(|i| {
            let kind = if i % 2 == 0 {
                WanKind::Waxman
            } else {
                WanKind::TransitStub
            };
            // Sweep the size axis deterministically across the range.
            let nodes = config.min_nodes + (i * 7) % span;
            let seed = scenario_seed(config.seed, i as u64);
            let wan = generate(kind, nodes, seed);
            let graph = NetGraph::from_topology(&wan.topology);
            let scenario = Scenario {
                id: i as u64,
                label: wan.label.clone(),
                seed,
                pipeline: standard_pipeline(config.dataset_bytes, &catalog.costs),
                graph,
                source: wan.source.0,
                destination: wan.client.0,
            };
            let solution = solve_scenario(&scenario);
            let (measured_optimal, measured_baseline) = if config.simulate {
                (
                    solution.optimal.as_ref().and_then(|o| {
                        simulate_mapping(&wan, &scenario, &o.mapping, &o.delay, config)
                    }),
                    solution
                        .baseline
                        .as_ref()
                        .and_then(|(m, d)| simulate_mapping(&wan, &scenario, m, d, config)),
                )
            } else {
                (None, None)
            };
            ScenarioOutcome {
                kind,
                record: solution.record,
                measured_optimal,
                measured_baseline,
            }
        })
        .collect();
    let analytic = SweepSummary::aggregate(
        &outcomes
            .iter()
            .map(|o| o.record.clone())
            .collect::<Vec<_>>(),
    );
    let analytic_client_server = SweepSummary::from_speedups(
        outcomes.len(),
        outcomes
            .iter()
            .filter_map(|o| o.record.client_server_speedup)
            .collect(),
    );
    let measured_speedups: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| match (o.measured_optimal, o.measured_baseline) {
            (Some(opt), Some(base)) if opt > 0.0 => Some(base / opt),
            _ => None,
        })
        .collect();
    let simulated = SweepSummary::from_speedups(outcomes.len(), measured_speedups);
    SweepReport {
        outcomes,
        analytic,
        analytic_client_server,
        simulated,
    }
}

/// Simulate one mapping on the generated WAN and return the measured
/// end-to-end delay of the first completed iteration.  Returns `None` when
/// the scenario cannot be installed (every node lies on the data path, or
/// the walk revisits a node — one stage application per node) or the
/// iteration does not finish within the virtual-time budget.
fn simulate_mapping(
    wan: &GeneratedWan,
    scenario: &Scenario,
    mapping: &Mapping,
    predicted: &DelayBreakdown,
    config: &SweepConfig,
) -> Option<f64> {
    let path = &mapping.path;
    for (i, a) in path.iter().enumerate() {
        if path[i + 1..].contains(a) {
            return None;
        }
    }
    // The central manager must sit off the data path.
    let cm = (0..wan.topology.node_count())
        .map(NodeId)
        .find(|id| !path.contains(&id.0))?;
    let vrt = VisualizationRoutingTable::from_mapping(
        &scenario.pipeline,
        &scenario.graph,
        mapping,
        predicted.total,
    );
    let plan = SessionPlan {
        session: scenario.id + 1,
        spec: SessionSpec::Archival {
            dataset: DatasetKind::Jet,
        },
        pipeline: scenario.pipeline.clone(),
        mapping: mapping.clone(),
        vrt,
        predicted: *predicted,
        processing_overhead: 1.0,
    };
    let mut sim = Simulator::new(wan.topology.clone(), scenario.seed);
    SteeringSession::install(&plan, &mut sim, cm, 1, config.target_goodput);
    let delays = SteeringSession::run(&mut sim, 1, config.max_virtual_time);
    delays
        .first()
        .copied()
        .filter(|d| d.is_finite() && *d > 0.0)
}

/// Render a sweep report as an aligned text table plus summary lines.
pub fn format_sweep_report(report: &SweepReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6}{:<14}{:>7}{:>7}{:>12}{:>12}{:>9}{:>12}{:>12}\n",
        "id", "family", "nodes", "links", "opt (s)", "base (s)", "speedup", "sim opt", "sim base"
    ));
    for o in &report.outcomes {
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<6}{:<14}{:>7}{:>7}{:>12}{:>12}{:>9}{:>12}{:>12}\n",
            o.record.id,
            o.kind.name(),
            o.record.nodes,
            o.record.links,
            fmt_opt(o.record.optimal_delay),
            fmt_opt(o.record.baseline_delay),
            match o.record.speedup {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_string(),
            },
            fmt_opt(o.measured_optimal),
            fmt_opt(o.measured_baseline),
        ));
    }
    let line = |label: &str, s: &SweepSummary| {
        format!(
            "{label}: {}/{} compared, win rate {:.0}%, speedup mean {:.2}x (p10 {:.2}x, median {:.2}x, p90 {:.2}x)\n",
            s.compared,
            s.scenarios,
            100.0 * s.win_rate,
            s.mean_speedup,
            s.p10_speedup,
            s.p50_speedup,
            s.p90_speedup
        )
    };
    out.push_str(&line("\nAnalytic vs default route  ", &report.analytic));
    out.push_str(&line(
        "Analytic vs client/server  ",
        &report.analytic_client_server,
    ));
    if report.simulated.compared > 0 {
        out.push_str(&line("Simulated vs default route ", &report.simulated));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_optimal_dominates_analytically() {
        let config = SweepConfig {
            scenarios: 8,
            simulate: false,
            ..SweepConfig::default()
        };
        let a = run_sweep(&config);
        let b = run_sweep(&config);
        assert_eq!(a, b, "same config and seed must reproduce the sweep");
        assert_eq!(a.outcomes.len(), 8);
        // Every scenario must be analytically comparable (generated WANs
        // are connected and the client renders), and the optimizer never
        // loses to the default route under the model.
        assert_eq!(a.analytic.compared, 8);
        for o in &a.outcomes {
            let s = o.record.speedup.expect("comparable");
            assert!(s >= 1.0 - 1e-9, "scenario {}: speedup {s}", o.record.id);
        }
    }

    #[test]
    fn simulated_sweep_produces_measured_delays() {
        let config = SweepConfig {
            scenarios: 4,
            dataset_bytes: 256 << 10,
            ..SweepConfig::default()
        };
        let report = run_sweep(&config);
        let measured = report
            .outcomes
            .iter()
            .filter(|o| o.measured_optimal.is_some() && o.measured_baseline.is_some())
            .count();
        assert!(
            measured >= 3,
            "only {measured}/4 scenarios produced measured delays"
        );
        assert!(report.simulated.compared >= 3);
        let table = format_sweep_report(&report);
        assert!(table.contains("waxman"));
        assert!(table.contains("transit-stub"));
        assert!(table.contains("Analytic vs default route"));
        assert!(table.contains("client/server"));
        assert!(table.contains("Simulated"));
    }

    #[test]
    fn seeds_decorrelate_scenarios() {
        let a = scenario_seed(1, 0);
        let b = scenario_seed(1, 1);
        let c = scenario_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
