//! The dynamic-scenario sweep: static vs adaptive vs oracle at scale.
//!
//! Where [`crate::sweep`] quantifies the *optimizer's* win rate across
//! families of generated static WANs (the paper's §6 methodology), this
//! module quantifies the *adaptive controller's* win rate across families
//! of generated **dynamic** scenarios.  Per scenario it
//!
//! 1. generates a WAN ([`ricsa_netsim::generators`]),
//! 2. derives one member of a seeded dynamic-schedule family
//!    ([`ricsa_netsim::dynamics::generate_schedule_family`] — `K`
//!    schedules keyed off the WAN's own seed),
//! 3. runs the frame-paced steering loop under the Static, Adaptive and
//!    Oracle policies ([`crate::adapt::run_adaptive_loop`]), plus a
//!    second Adaptive run with the RTT signal disabled (the
//!    detection-latency axis), and
//! 4. folds the four runs into one serde-able
//!    [`ricsa_pipemap::sweep::AdaptSweepRecord`]:
//!    per-policy frame throughput, post-event speedup vs static,
//!    oracle gap, time-to-remap, detection latencies with and without
//!    the RTT signal, warm-vs-cold solve timings and a decision-trace
//!    digest.
//!
//! Scenarios are independent, so the sweep fans out over worker threads
//! via the `rayon` shim; every record is byte-deterministic per seed
//! (wall-clock solve timings are excluded from record equality, exactly
//! as in [`ricsa_pipemap::sweep::SweepRecord`]).  This is the first
//! subsystem that composes every prior layer — generators, dynamics,
//! passive telemetry, warm re-solves, the migration protocol — into one
//! reproducible experiment; DESIGN.md §9 ("Adaptation evaluation book")
//! documents the scenario model and how to read the output.

use crate::adapt::{run_adaptive_loop, AdaptPolicy, AdaptiveLoopSpec, AdaptiveRun};
use crate::catalog::{standard_pipeline, SimulationCatalog};
use crate::sweep::scenario_seed;
use rayon::prelude::*;
use ricsa_adapt::monitor::AdaptConfig;
use ricsa_netsim::dynamics::{generate_schedule_family, DynamicScenario, ScheduleParams};
use ricsa_netsim::generators::{generate, GeneratedWan, WanKind};
use ricsa_netsim::link::LinkId;
use ricsa_netsim::node::NodeId;
use ricsa_netsim::rng::SimRng;
use ricsa_netsim::time::SimTime;
use ricsa_pipemap::dp::optimize_with;
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::sweep::{AdaptSweepRecord, AdaptSweepSummary};
use serde::{Deserialize, Serialize};

/// Configuration of one dynamic-scenario (adaptation) sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptSweepConfig {
    /// Number of base WANs to generate (alternating Waxman/transit-stub).
    pub wans: usize,
    /// Seeded dynamic schedules derived per WAN — the sweep evaluates
    /// `wans × schedules_per_wan` dynamic scenarios in total.
    pub schedules_per_wan: usize,
    /// Base RNG seed; WAN `i` derives its seed from it, and each WAN's
    /// schedule family is keyed off the WAN seed.
    pub seed: u64,
    /// Smallest generated topology (nodes).
    pub min_nodes: usize,
    /// Largest generated topology (nodes).
    pub max_nodes: usize,
    /// Dataset size pushed around each loop, bytes.
    pub dataset_bytes: usize,
    /// Frames pulled through the loop per policy run.
    pub frames: u64,
    /// Target goodput of the stage-to-stage data flows, bytes/second.
    pub target_goodput: f64,
    /// Virtual-time budget per policy run.
    pub max_virtual_time: SimTime,
    /// Monitor configuration of the adaptive policy (the RTT-off axis run
    /// clears [`AdaptConfig::rtt_signal`] on a copy).
    pub adapt: AdaptConfig,
    /// Parameters of the seeded schedule generator.
    pub schedule: ScheduleParams,
    /// Also run the goodput-only adaptive controller per scenario to
    /// measure the RTT signal's detection-latency win (one extra policy
    /// run per scenario).
    pub rtt_axis: bool,
    /// Fraction of each schedule's event links deterministically
    /// retargeted onto the *initially optimal* data route (decided per
    /// distinct link, so an episode's degradation and recovery stay
    /// paired).  Uniformly random events mostly miss the few links the
    /// loop exercises — the common case, but one where every policy ties
    /// by construction — so the sweep stresses the motivating scenario
    /// class at this rate while `0.0` keeps pure background drift.
    pub route_bias: f64,
}

impl Default for AdaptSweepConfig {
    fn default() -> Self {
        AdaptSweepConfig {
            wans: 12,
            schedules_per_wan: 3,
            seed: 20080609,
            min_nodes: 6,
            max_nodes: 14,
            dataset_bytes: 256 << 10,
            frames: 16,
            target_goodput: 200e6,
            max_virtual_time: SimTime::from_secs(240.0),
            adapt: AdaptConfig::default(),
            // Frames on these WANs are a few hundred virtual milliseconds,
            // so events must come much denser than the default WAN drift
            // model or every schedule would land after the run ended:
            // one event every ~0.8 virtual seconds, episodes recovering
            // after ~3 (so recoveries — the cases where a migration can
            // turn out to have been wasted — also land in-window).
            schedule: ScheduleParams {
                horizon: 6.0,
                mean_gap: 0.8,
                mean_outage: 3.0,
                degrade_weight: 2.0,
                ..ScheduleParams::default()
            },
            rtt_axis: true,
            route_bias: 0.5,
        }
    }
}

impl AdaptSweepConfig {
    /// The CI-friendly quick sweep: 36 dynamic scenarios (12 WANs × 3
    /// schedules), finishes in seconds.
    pub fn quick() -> Self {
        AdaptSweepConfig::default()
    }

    /// The full sweep: hundreds of dynamic scenarios on larger WANs with
    /// more frames per run.
    pub fn full() -> Self {
        AdaptSweepConfig {
            wans: 40,
            schedules_per_wan: 6,
            max_nodes: 24,
            dataset_bytes: 1 << 20,
            frames: 20,
            schedule: ScheduleParams {
                horizon: 20.0,
                mean_gap: 2.0,
                mean_outage: 8.0,
                degrade_weight: 2.0,
                ..ScheduleParams::default()
            },
            ..AdaptSweepConfig::default()
        }
    }

    /// Total dynamic scenarios the sweep evaluates.
    pub fn scenarios(&self) -> usize {
        self.wans * self.schedules_per_wan
    }
}

/// Aggregated result of an adaptation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptSweepReport {
    /// Per-scenario records, in scenario order.
    pub records: Vec<AdaptSweepRecord>,
    /// Win-rate / oracle-gap / detection statistics over the record set.
    pub summary: AdaptSweepSummary,
}

/// Frames averaged for steady-state (oracle-gap) comparisons.
const STEADY_TAIL: usize = 4;

/// Run the sweep: generate → schedule → run policies → aggregate.
pub fn run_adapt_sweep(config: &AdaptSweepConfig) -> AdaptSweepReport {
    let total = config.scenarios();
    let records: Vec<AdaptSweepRecord> = (0..total)
        .into_par_iter()
        .map(|i| run_dynamic_scenario(config, i))
        .collect();
    let summary = AdaptSweepSummary::aggregate(&records);
    AdaptSweepReport { records, summary }
}

/// Generate and evaluate dynamic scenario `index` of the sweep.
fn run_dynamic_scenario(config: &AdaptSweepConfig, index: usize) -> AdaptSweepRecord {
    let wan_index = index / config.schedules_per_wan.max(1);
    let member = index % config.schedules_per_wan.max(1);
    let kind = if wan_index.is_multiple_of(2) {
        WanKind::Waxman
    } else {
        WanKind::TransitStub
    };
    // Stride 5 is coprime to the default size spans, so the size axis
    // actually cycles through the whole range (stride 7 with a span of 7
    // would pin every WAN to `min_nodes`).
    let span = config.max_nodes.max(config.min_nodes) - config.min_nodes + 1;
    let nodes = config.min_nodes + (wan_index * 5) % span;
    let wan_seed = scenario_seed(config.seed, wan_index as u64);
    let wan = generate(kind, nodes, wan_seed);
    let schedule = generate_schedule_family(
        wan.topology.edge_count(),
        &config.schedule,
        wan_seed,
        member + 1,
    )
    .pop()
    .expect("family has member+1 elements");
    let mut record = empty_record(config, index as u64, &wan, &schedule);
    let Some(spec) = loop_spec(config, &wan, &schedule) else {
        return record; // no feasible mapping or no off-path CM node
    };

    let run = |policy: AdaptPolicy, rtt_signal: bool| {
        let mut spec = spec.clone();
        spec.adapt.rtt_signal = rtt_signal;
        run_adaptive_loop(&spec, policy).ok()
    };
    let Some(static_run) = run(AdaptPolicy::Static, true) else {
        return record;
    };
    let Some(adaptive) = run(AdaptPolicy::Adaptive, true) else {
        return record;
    };
    let Some(oracle) = run(AdaptPolicy::Oracle, true) else {
        return record;
    };
    let adaptive_no_rtt = if config.rtt_axis {
        run(AdaptPolicy::Adaptive, false)
    } else {
        None
    };

    // Only events that landed inside the static run's virtual window are
    // part of the scenario the policies actually experienced.
    let window_end = virtual_end(&static_run).unwrap_or(0.0);
    record.events = spec
        .schedule
        .events
        .iter()
        .filter(|e| e.at.as_secs() <= window_end)
        .count();
    let event_at = spec
        .schedule
        .first_event_at()
        .map(|t| t.as_secs())
        .filter(|t| *t <= window_end);

    record.static_fps = frames_per_virtual_second(&static_run);
    record.adaptive_fps = frames_per_virtual_second(&adaptive);
    record.oracle_fps = frames_per_virtual_second(&oracle);
    record.post_event_speedup = event_at.and_then(|at| {
        match (
            static_run.mean_delay_where(|s| s >= at),
            adaptive.mean_delay_where(|s| s >= at),
        ) {
            (Some(st), Some(ad)) if ad > 0.0 => Some(st / ad),
            _ => None,
        }
    });
    record.oracle_gap = match (
        adaptive.steady_state_mean(STEADY_TAIL),
        oracle.steady_state_mean(STEADY_TAIL),
    ) {
        (Some(a), Some(o)) if o > 0.0 => Some(a / o),
        _ => None,
    };
    record.remap_latency_s = adaptive.remap_latency_s;
    record.migrations = adaptive.migrations.len();
    record.detect_latency_s = event_at.and_then(|at| detect_latency(&adaptive, at));
    record.detect_latency_no_rtt_s = event_at.and_then(|at| {
        adaptive_no_rtt
            .as_ref()
            .and_then(|run| detect_latency(run, at))
    });
    record.frames_lost = static_run.frames_lost
        + adaptive.frames_lost
        + oracle.frames_lost
        + adaptive_no_rtt.as_ref().map_or(0, |r| r.frames_lost);
    record.frames_duplicated = static_run.frames_duplicated
        + adaptive.frames_duplicated
        + oracle.frames_duplicated
        + adaptive_no_rtt.as_ref().map_or(0, |r| r.frames_duplicated);
    record.decision_digest = decision_digest(&adaptive);
    record.warm_solve_us = mean_solve_us(&adaptive);
    record.cold_solve_us = mean_solve_us(&oracle);
    record
}

/// The record of a scenario before (or without) any policy run: identity
/// fields filled in, every metric absent.
fn empty_record(
    config: &AdaptSweepConfig,
    id: u64,
    wan: &GeneratedWan,
    schedule: &DynamicScenario,
) -> AdaptSweepRecord {
    AdaptSweepRecord {
        id,
        label: format!("{} + {}", wan.label, schedule.label),
        wan_seed: wan.seed,
        schedule_seed: schedule.seed,
        nodes: wan.topology.node_count(),
        links: wan.topology.edge_count(),
        events: 0,
        frames: config.frames,
        static_fps: None,
        adaptive_fps: None,
        oracle_fps: None,
        post_event_speedup: None,
        oracle_gap: None,
        remap_latency_s: None,
        migrations: 0,
        detect_latency_s: None,
        detect_latency_no_rtt_s: None,
        frames_lost: 0,
        frames_duplicated: 0,
        decision_digest: String::new(),
        warm_solve_us: 0.0,
        cold_solve_us: 0.0,
    }
}

/// Build the adaptive-loop spec for one scenario: the standard pipeline
/// mapped source → client, with the CM on a node off the *initial* data
/// path and [`AdaptSweepConfig::route_bias`] of the schedule's event
/// links retargeted onto that path.  `None` when the WAN admits no
/// feasible mapping or every node lies on it.
fn loop_spec(
    config: &AdaptSweepConfig,
    wan: &GeneratedWan,
    schedule: &DynamicScenario,
) -> Option<AdaptiveLoopSpec> {
    let catalog = SimulationCatalog::default();
    let pipeline = standard_pipeline(config.dataset_bytes, &catalog.costs);
    let graph = NetGraph::from_topology(&wan.topology);
    let (initial, _) = optimize_with(
        &pipeline,
        &graph,
        wan.source.0,
        wan.client.0,
        &config.adapt.options,
    );
    let initial = initial?;
    let path = &initial.mapping.path;
    let cm = (0..wan.topology.node_count())
        .map(NodeId)
        .find(|id| !path.contains(&id.0) && *id != wan.source)?;
    let route_links: Vec<LinkId> = path
        .windows(2)
        .filter_map(|pair| {
            wan.topology
                .edge_between(NodeId(pair[0]), NodeId(pair[1]))
                .map(|e| e.id)
        })
        .collect();
    let schedule = retarget_schedule(schedule, &route_links, config.route_bias);
    let seed = schedule.seed;
    Some(AdaptiveLoopSpec {
        topology: wan.topology.clone(),
        schedule,
        pipeline,
        source: wan.source,
        client: wan.client,
        cm,
        iterations: config.frames,
        seed,
        target_goodput: config.target_goodput,
        adapt: config.adapt.clone(),
        session: 1,
        max_virtual_time: config.max_virtual_time,
    })
}

/// Deterministically retarget [`AdaptSweepConfig::route_bias`] of the
/// schedule's event links onto the initially-optimal data route.  The
/// decision is made once per *distinct* link (keyed by first appearance),
/// so a degradation episode and its recovery always stay paired on the
/// same link, and no two source links ever share a target — each route
/// link is drawn without replacement, and route links that already carry
/// original events are excluded from the pool — because merging two
/// event streams onto one link would let one episode's `Restore`
/// silently cancel the other's still-active degradation.  Once the pool
/// is exhausted, later links keep their original target.  The RNG is
/// seeded by the schedule's own seed, so the retargeted scenario
/// reproduces exactly like the raw one.
fn retarget_schedule(
    schedule: &DynamicScenario,
    route_links: &[LinkId],
    bias: f64,
) -> DynamicScenario {
    if route_links.is_empty() || bias <= 0.0 {
        return schedule.clone();
    }
    let mut rng = SimRng::new(schedule.seed ^ 0xA11C_E5ED);
    let mut available: Vec<LinkId> = route_links
        .iter()
        .copied()
        .filter(|r| schedule.events.iter().all(|e| e.link != *r))
        .collect();
    let mut retargeted: std::collections::HashMap<LinkId, LinkId> =
        std::collections::HashMap::new();
    let mut events = schedule.events.clone();
    for event in &mut events {
        let target = *retargeted.entry(event.link).or_insert_with(|| {
            if !available.is_empty() && rng.coin(bias) {
                available.remove(rng.index(available.len()))
            } else {
                event.link
            }
        });
        event.link = target;
    }
    DynamicScenario {
        label: format!("{}·bias{:.0}%", schedule.label, 100.0 * bias),
        seed: schedule.seed,
        events,
    }
}

/// Virtual time the run's last completed frame reached the client.
fn virtual_end(run: &AdaptiveRun) -> Option<f64> {
    let last_start = run.starts.last()?;
    let last_delay = run.delays.last()?;
    Some(last_start + last_delay)
}

/// Frames delivered per virtual second, first request to last delivery.
fn frames_per_virtual_second(run: &AdaptiveRun) -> Option<f64> {
    let first = run.starts.first()?;
    let span = virtual_end(run)? - first;
    (span > 0.0).then(|| run.frames_completed as f64 / span)
}

/// Virtual seconds from `event_at` to the first confirmed detection at or
/// after it (`None` when the controller never confirmed one).  An earlier,
/// noise-triggered confirmation does not count — both axes are measured
/// against the same scheduled event.
fn detect_latency(run: &AdaptiveRun, event_at: f64) -> Option<f64> {
    run.decisions
        .iter()
        .find(|d| d.at >= event_at)
        .map(|d| d.at - event_at)
}

/// Mean wall-clock microseconds per re-solve of the run (0 when none ran).
fn mean_solve_us(run: &AdaptiveRun) -> f64 {
    if run.solves == 0 {
        0.0
    } else {
        run.solve_us_total / run.solves as f64
    }
}

/// FNV-1a digest of the run's serialized decision trace — a compact,
/// wall-clock-free determinism witness.
fn decision_digest(run: &AdaptiveRun) -> String {
    let json = serde_json::to_string(&run.decisions).unwrap_or_default();
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    format!("{hash:016x}")
}

/// Render a sweep report as an aligned text table plus summary lines.
pub fn format_adapt_sweep_report(report: &AdaptSweepReport) -> String {
    let fmt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5}{:>6}{:>7}{:>8}{:>10}{:>10}{:>10}{:>9}{:>8}{:>9}{:>10}{:>10}\n",
        "id",
        "nodes",
        "links",
        "events",
        "stat fps",
        "adpt fps",
        "orcl fps",
        "speedup",
        "remaps",
        "gap",
        "det rtt",
        "det good"
    ));
    for r in &report.records {
        out.push_str(&format!(
            "{:<5}{:>6}{:>7}{:>8}{:>10}{:>10}{:>10}{:>9}{:>8}{:>9}{:>10}{:>10}\n",
            r.id,
            r.nodes,
            r.links,
            r.events,
            fmt(r.static_fps),
            fmt(r.adaptive_fps),
            fmt(r.oracle_fps),
            match r.post_event_speedup {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_string(),
            },
            r.migrations,
            fmt(r.oracle_gap),
            fmt(r.detect_latency_s),
            fmt(r.detect_latency_no_rtt_s),
        ));
    }
    let s = &report.summary;
    out.push_str(&format!(
        "\nAdaptive vs static: {}/{} compared — {} wins / {} ties / {} losses, win rate {:.0}%\n",
        s.compared,
        s.scenarios,
        s.adaptive_wins,
        s.ties,
        s.adaptive_losses,
        100.0 * s.win_rate
    ));
    out.push_str(&format!(
        "post-event speedup (static/adaptive): mean {:.2}x (p10 {:.2}x, median {:.2}x, p90 {:.2}x)\n",
        s.mean_post_event_speedup,
        s.p10_post_event_speedup,
        s.p50_post_event_speedup,
        s.p90_post_event_speedup
    ));
    out.push_str(&format!(
        "oracle gap (adaptive/oracle steady state): mean {:.3}, p90 {:.3}\n",
        s.mean_oracle_gap, s.p90_oracle_gap
    ));
    out.push_str(&format!(
        "time-to-remap: mean {} s after the first event\n",
        fmt(s.mean_remap_latency_s)
    ));
    out.push_str(&format!(
        "detection: RTT signal on {:.0}% of eventful scenarios (mean {} s) vs goodput-only {:.0}% (mean {} s); mean RTT advantage {} s\n",
        100.0 * s.detect_rate,
        fmt(s.mean_detect_latency_s),
        100.0 * s.detect_rate_no_rtt,
        fmt(s.mean_detect_latency_no_rtt_s),
        fmt(s.mean_rtt_detect_advantage_s)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AdaptSweepConfig {
        AdaptSweepConfig {
            wans: 2,
            schedules_per_wan: 2,
            frames: 4,
            dataset_bytes: 128 << 10,
            max_nodes: 8,
            ..AdaptSweepConfig::default()
        }
    }

    #[test]
    fn adapt_sweep_records_are_deterministic_per_seed() {
        let config = tiny_config();
        let a = run_adapt_sweep(&config);
        let b = run_adapt_sweep(&config);
        assert_eq!(a.records, b.records, "records must reproduce per seed");
        assert_eq!(a.summary, b.summary);
        let digests_a: Vec<&str> = a
            .records
            .iter()
            .map(|r| r.decision_digest.as_str())
            .collect();
        let digests_b: Vec<&str> = b
            .records
            .iter()
            .map(|r| r.decision_digest.as_str())
            .collect();
        assert_eq!(digests_a, digests_b, "decision digests must reproduce");
        // A different base seed produces a different scenario set.
        let other = run_adapt_sweep(&AdaptSweepConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a.records, other.records);
    }

    #[test]
    fn adapt_sweep_produces_comparable_scenarios_and_audits_cleanly() {
        let report = run_adapt_sweep(&tiny_config());
        assert_eq!(report.records.len(), 4);
        let ran = report
            .records
            .iter()
            .filter(|r| r.static_fps.is_some())
            .count();
        assert!(ran >= 3, "only {ran}/4 scenarios ran all policies");
        for r in &report.records {
            assert_eq!(r.frames_lost, 0, "scenario {}: lost frames", r.id);
            assert_eq!(r.frames_duplicated, 0, "scenario {}: dup frames", r.id);
            if r.static_fps.is_some() {
                assert!(!r.decision_digest.is_empty());
            }
        }
        let table = format_adapt_sweep_report(&report);
        assert!(table.contains("Adaptive vs static"));
        assert!(table.contains("oracle gap"));
        assert!(table.contains("detection"));
    }
}
