//! The central-management and client/front-end roles.
//!
//! The CM node receives steering requests from the Ajax front end,
//! distributes the visualization routing table to the loop participants, and
//! triggers the data source.  The client-side driving logic (issuing the
//! initial request and pacing subsequent iterations so that "the simulation
//! does not proceed until the image from the last time step is delivered")
//! lives in the client stage configuration (see [`crate::session`]); the CM
//! application here is the relay that the paper places at LSU.

use crate::message::{ControlMessage, DedupFilter};
use crate::stage::send_control;
use ricsa_netsim::app::{Application, Context};
use ricsa_netsim::node::NodeId;
use ricsa_netsim::trace::{TraceEvent, TraceKind};
use ricsa_pipemap::vrt::VisualizationRoutingTable;

/// The central-management application (the paper's CM node at LSU).
pub struct CentralManagerApp {
    session: u64,
    data_source: NodeId,
    participants: Vec<NodeId>,
    vrt: VisualizationRoutingTable,
    dedup: DedupFilter,
    requests_handled: u64,
}

impl CentralManagerApp {
    /// Create the CM application for a planned session.
    pub fn new(
        session: u64,
        data_source: NodeId,
        participants: Vec<NodeId>,
        vrt: VisualizationRoutingTable,
    ) -> Self {
        CentralManagerApp {
            session,
            data_source,
            participants,
            vrt,
            dedup: DedupFilter::new(),
            requests_handled: 0,
        }
    }

    /// Number of steering requests this CM has handled.
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled
    }
}

impl Application for CentralManagerApp {
    fn on_datagram(&mut self, ctx: &mut Context, dg: ricsa_netsim::packet::Datagram) {
        let msg = match ControlMessage::from_payload(&dg.payload) {
            Some(m) => m,
            None => return,
        };
        if !self.dedup.accept(&msg) {
            return;
        }
        match msg {
            ControlMessage::SteeringRequest { request_id, .. } => {
                self.requests_handled += 1;
                ctx.trace(TraceEvent::new(TraceKind::Note {
                    label: format!("cm-request:{request_id}"),
                    value: ctx.now().as_secs(),
                }));
                // Distribute the routing table to every participant, then
                // start the first iteration at the data source.
                for &node in &self.participants {
                    send_control(
                        ctx,
                        node,
                        &ControlMessage::VrtDelivery {
                            session: self.session,
                            table: self.vrt.clone(),
                        },
                    );
                }
                send_control(
                    ctx,
                    self.data_source,
                    &ControlMessage::BeginIteration {
                        session: self.session,
                        iteration: 0,
                    },
                );
            }
            ControlMessage::BeginIteration { session, iteration }
                // Subsequent iterations are requested by the client after it
                // receives each image; the CM relays them to the source.
                if session == self.session => {
                    send_control(
                        ctx,
                        self.data_source,
                        &ControlMessage::BeginIteration { session, iteration },
                    );
                }
            ControlMessage::SteeringUpdate { request_id, .. } => {
                // Steering parameter updates are forwarded to the simulator
                // (data source) over the same control channel.
                send_control(ctx, self.data_source, &ControlMessage::Ack { request_id });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::KIND_CONTROL;
    use ricsa_netsim::packet::{Datagram, Payload};
    use ricsa_netsim::time::SimTime;
    use ricsa_pipemap::delay::Mapping;
    use ricsa_pipemap::network::NetGraph;
    use ricsa_pipemap::pipeline::{ModuleSpec, Pipeline};
    use ricsa_pipemap::vrt::VisualizationRoutingTable;

    fn sample_vrt() -> VisualizationRoutingTable {
        let pipeline = Pipeline::new(
            "iso",
            1e6,
            vec![
                ModuleSpec::new("filter", 1e-9, 1e6),
                ModuleSpec::new("render", 1e-9, 1e5),
            ],
        );
        let mut g = NetGraph::new();
        g.add_node("ds", 1.0, true);
        g.add_node("client", 1.0, true);
        g.add_bidirectional(0, 1, 1e6, 0.01);
        let mapping = Mapping {
            path: vec![0, 1],
            groups: vec![vec![0], vec![1]],
        };
        VisualizationRoutingTable::from_mapping(&pipeline, &g, &mapping, 1.0)
    }

    fn request() -> ControlMessage {
        ControlMessage::SteeringRequest {
            request_id: 1,
            source: "Jet".into(),
            variable: "pressure".into(),
            isovalue: 0.5,
            octant: None,
        }
    }

    fn datagram(msg: &ControlMessage) -> Datagram {
        Datagram {
            src: NodeId(5),
            dst: NodeId(1),
            sent_at: SimTime::ZERO,
            payload: msg.to_payload(),
        }
    }

    #[test]
    fn steering_request_triggers_vrt_delivery_and_begin() {
        let mut cm = CentralManagerApp::new(7, NodeId(3), vec![NodeId(3), NodeId(4)], sample_vrt());
        let mut ctx = Context::new(NodeId(1), SimTime::from_secs(2.0), 0, vec![0.5]);
        cm.on_datagram(&mut ctx, datagram(&request()));
        assert_eq!(cm.requests_handled(), 1);
        let begins = ctx
            .outgoing()
            .iter()
            .filter_map(|s| ControlMessage::from_payload(&s.payload))
            .filter(|m| matches!(m, ControlMessage::BeginIteration { iteration: 0, .. }))
            .count();
        assert!(begins >= 1);
        let vrt_deliveries = ctx
            .outgoing()
            .iter()
            .filter(|s| s.payload.kind == KIND_CONTROL)
            .filter_map(|s| ControlMessage::from_payload(&s.payload))
            .filter(|m| matches!(m, ControlMessage::VrtDelivery { .. }))
            .count();
        assert!(
            vrt_deliveries >= 2,
            "one delivery per participant (redundant copies allowed)"
        );
        // Duplicate request copies are ignored.
        let mut ctx2 = Context::new(NodeId(1), SimTime::from_secs(2.0), 50, vec![0.5]);
        cm.on_datagram(&mut ctx2, datagram(&request()));
        assert_eq!(cm.requests_handled(), 1);
        assert!(ctx2.outgoing().is_empty());
    }

    #[test]
    fn begin_iteration_is_relayed_to_the_source_for_matching_sessions() {
        let mut cm = CentralManagerApp::new(7, NodeId(3), vec![], sample_vrt());
        let mut ctx = Context::new(NodeId(1), SimTime::ZERO, 0, vec![0.5]);
        cm.on_datagram(
            &mut ctx,
            datagram(&ControlMessage::BeginIteration {
                session: 7,
                iteration: 4,
            }),
        );
        assert!(ctx.outgoing().iter().all(|s| s.dst == NodeId(3)));
        assert!(!ctx.outgoing().is_empty());
        // Wrong session: nothing forwarded.
        let mut ctx2 = Context::new(NodeId(1), SimTime::ZERO, 10, vec![0.5]);
        cm.on_datagram(
            &mut ctx2,
            datagram(&ControlMessage::BeginIteration {
                session: 8,
                iteration: 4,
            }),
        );
        assert!(ctx2.outgoing().is_empty());
    }

    #[test]
    fn non_control_datagrams_are_ignored() {
        let mut cm = CentralManagerApp::new(1, NodeId(0), vec![], sample_vrt());
        let mut ctx = Context::new(NodeId(1), SimTime::ZERO, 0, vec![0.5]);
        cm.on_datagram(
            &mut ctx,
            Datagram {
                src: NodeId(0),
                dst: NodeId(1),
                sent_at: SimTime::ZERO,
                payload: Payload::opaque(100),
            },
        );
        assert!(ctx.outgoing().is_empty());
    }
}
