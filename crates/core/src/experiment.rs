//! The Fig. 9 / Fig. 10 experiment drivers.
//!
//! Fig. 9 compares the end-to-end delay of six visualization loops on the
//! Fig. 8 deployment for the Jet (16 MB), Rage (64 MB) and Visible Woman
//! (108 MB) datasets: the RICSA-optimal loop, three alternative loops
//! through the clusters, and two direct PC–PC (client/server) loops.
//! Fig. 10 compares the RICSA-optimal loop against a ParaView-style
//! client / render-server / data-server deployment on the same route.
//!
//! Each loop is *simulated*: the dataset is pushed hop by hop over the
//! Robbins–Monro transport on the simulated WAN, module execution occupies
//! the time the calibrated cost models predict for the hosting node, and the
//! reported delay is the measured time from the data source starting to
//! serve the dataset until the finished image arrives at the client.

use crate::catalog::SimulationCatalog;
use crate::session::{PathChoice, SessionPlan, SteeringSession};
use ricsa_netsim::presets::{fig8_topology_with, Fig8Params, Fig8Site, Fig8Topology};
use ricsa_netsim::sim::Simulator;
use ricsa_netsim::time::SimTime;
use ricsa_vizdata::dataset::DatasetKind;
use serde::{Deserialize, Serialize};

/// Target goodput of the stage-to-stage data flows (bytes/second).  Chosen
/// high enough that the flows are limited by the links, not the controller.
const DATA_TARGET_GOODPUT: f64 = 200e6;

/// A visualization loop to evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopSpec {
    /// Display name matching the paper's figure legend.
    pub name: String,
    /// The data-source site.
    pub data_source: Fig8Site,
    /// The forced data path (sites from data source to client), or `None`
    /// for the optimizer's choice.
    pub forced_path: Option<Vec<Fig8Site>>,
    /// ParaView-style deployment overhead (render server + factor), if this
    /// loop models ParaView.
    pub paraview: Option<(Fig8Site, f64)>,
}

impl LoopSpec {
    /// The six loops of Fig. 9, in the paper's order.
    pub fn fig9_loops() -> Vec<LoopSpec> {
        use Fig8Site::*;
        let fixed = |name: &str, ds: Fig8Site, path: Vec<Fig8Site>| LoopSpec {
            name: name.to_string(),
            data_source: ds,
            forced_path: Some(path),
            paraview: None,
        };
        vec![
            LoopSpec {
                name: "Loop 1: ORNL-LSU-GaTech-UT-ORNL (RICSA optimal)".into(),
                data_source: GaTech,
                forced_path: None,
                paraview: None,
            },
            fixed(
                "Loop 2: ORNL-LSU-GaTech-NCState-ORNL",
                GaTech,
                vec![GaTech, NcStateCluster, Ornl],
            ),
            fixed(
                "Loop 3: ORNL-LSU-OSU-NCState-ORNL",
                Osu,
                vec![Osu, NcStateCluster, Ornl],
            ),
            fixed(
                "Loop 4: ORNL-LSU-OSU-UT-ORNL",
                Osu,
                vec![Osu, UtCluster, Ornl],
            ),
            fixed(
                "Loop 5: ORNL-GaTech-ORNL (PC-PC)",
                GaTech,
                vec![GaTech, Ornl],
            ),
            fixed("Loop 6: ORNL-OSU-ORNL (PC-PC)", Osu, vec![Osu, Ornl]),
        ]
    }

    /// The two configurations of Fig. 10.
    pub fn fig10_loops(paraview_overhead: f64) -> Vec<LoopSpec> {
        use Fig8Site::*;
        vec![
            LoopSpec {
                name: "RICSA optimal loop: ORNL-LSU-GaTech-UT-ORNL".into(),
                data_source: GaTech,
                forced_path: None,
                paraview: None,
            },
            LoopSpec {
                name: "ParaView -crs mode: ORNL-UT-GaTech (client-render-server)".into(),
                data_source: GaTech,
                forced_path: None,
                paraview: Some((UtCluster, paraview_overhead)),
            },
        ]
    }

    fn path_choice(&self, fig8: &Fig8Topology) -> PathChoice {
        if let Some((render_server, overhead)) = &self.paraview {
            return PathChoice::ParaViewCrs {
                render_server: fig8.node(*render_server),
                overhead: *overhead,
            };
        }
        match &self.forced_path {
            Some(path) => PathChoice::ForcedPath(path.iter().map(|s| fig8.node(*s)).collect()),
            None => PathChoice::Optimal,
        }
    }
}

/// The measured outcome of one loop × dataset combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopResult {
    /// Loop name.
    pub loop_name: String,
    /// Dataset name.
    pub dataset: String,
    /// Dataset size in megabytes.
    pub dataset_mb: f64,
    /// Measured end-to-end delays of each iteration, seconds.
    pub iteration_delays: Vec<f64>,
    /// Mean measured delay, seconds.
    pub measured_delay: f64,
    /// The analytical prediction of the delay model, seconds.
    pub predicted_delay: f64,
    /// Human-readable description of the mapping that was used.
    pub mapping: String,
}

/// One row of the Fig. 9 table: a dataset plus the measured delay of all
/// six loops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataset size in megabytes.
    pub dataset_mb: f64,
    /// Measured delay of each loop, in the order of [`LoopSpec::fig9_loops`].
    pub loop_delays: Vec<f64>,
}

/// One row of the Fig. 10 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataset size in megabytes.
    pub dataset_mb: f64,
    /// Measured delay of the RICSA-optimal loop, seconds.
    pub ricsa_delay: f64,
    /// Measured delay of the ParaView `-crs` deployment, seconds.
    pub paraview_delay: f64,
}

/// Options controlling the experiment scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Iterations (datasets pulled through the loop) per combination.
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// Scale factor applied to dataset sizes (1.0 = the paper's sizes);
    /// smaller values make quick test runs cheap.
    pub size_scale: f64,
    /// Virtual-time budget per combination.
    pub max_virtual_time: SimTime,
    /// Topology parameters.
    pub fig8: Fig8Params,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            iterations: 1,
            seed: 20080414,
            size_scale: 1.0,
            max_virtual_time: SimTime::from_secs(600.0),
            fig8: Fig8Params::default(),
        }
    }
}

impl ExperimentOptions {
    /// A reduced-scale configuration for unit/integration tests.
    pub fn quick() -> Self {
        ExperimentOptions {
            iterations: 1,
            size_scale: 1.0 / 64.0,
            max_virtual_time: SimTime::from_secs(120.0),
            ..ExperimentOptions::default()
        }
    }
}

/// Run one loop × dataset combination and return the measured result.
pub fn run_loop_experiment(
    spec: &LoopSpec,
    dataset: DatasetKind,
    options: &ExperimentOptions,
) -> LoopResult {
    let fig8 = fig8_topology_with(options.fig8.clone());
    let mut catalog = SimulationCatalog::default();
    let plan = plan_for(spec, dataset, &fig8, &mut catalog, options);
    let mut sim = Simulator::new(fig8.topology.clone(), options.seed);
    SteeringSession::install(
        &plan,
        &mut sim,
        fig8.node(Fig8Site::Lsu),
        options.iterations,
        DATA_TARGET_GOODPUT,
    );
    let delays = SteeringSession::run(&mut sim, options.iterations, options.max_virtual_time);
    let measured = if delays.is_empty() {
        f64::NAN
    } else {
        delays.iter().sum::<f64>() / delays.len() as f64
    };
    LoopResult {
        loop_name: spec.name.clone(),
        dataset: dataset.name().to_string(),
        dataset_mb: catalog.datasets.get(dataset).nominal_megabytes() * options.size_scale,
        iteration_delays: delays,
        measured_delay: measured,
        predicted_delay: plan.predicted.total,
        mapping: plan.vrt.describe(),
    }
}

fn plan_for(
    spec: &LoopSpec,
    dataset: DatasetKind,
    fig8: &Fig8Topology,
    catalog: &mut SimulationCatalog,
    options: &ExperimentOptions,
) -> SessionPlan {
    // Apply the size scale by shrinking the catalog's nominal dataset (the
    // pipeline is rebuilt from the scaled byte count).
    let nominal = catalog.datasets.get(dataset).nominal_bytes() as f64;
    let scaled_bytes = (nominal * options.size_scale).max(64.0 * 1024.0) as usize;
    let mut pipeline = crate::catalog::standard_pipeline(scaled_bytes, &catalog.costs);
    let choice = spec.path_choice(fig8);
    let data_source = fig8.node(spec.data_source);
    let client = fig8.node(Fig8Site::Ornl);
    let graph = ricsa_pipemap::network::NetGraph::from_topology(&fig8.topology);
    let src = graph.index_of(data_source);
    let dst = graph.index_of(client);
    let (mapping, predicted, overhead) = match &choice {
        PathChoice::Optimal => {
            let opt = ricsa_pipemap::dp::optimize(&pipeline, &graph, src, dst)
                .expect("the Fig. 8 deployment always admits a feasible mapping");
            (opt.mapping, opt.delay, 1.0)
        }
        PathChoice::ForcedPath(path) => {
            let indices: Vec<usize> = path.iter().map(|n| graph.index_of(*n)).collect();
            let (m, d) = ricsa_pipemap::baselines::best_split_on_path(&pipeline, &graph, &indices)
                .expect("forced Fig. 9 loops are connected paths");
            (m, d, 1.0)
        }
        PathChoice::ParaViewCrs {
            render_server,
            overhead,
        } => {
            let rs = graph.index_of(*render_server);
            // ParaView's heavier general-purpose stack costs both extra
            // processing and extra bytes on the wire (serialization,
            // protocol framing); inflate the pipeline accordingly.
            let mut heavy = pipeline.clone();
            heavy.source_bytes *= overhead.max(1.0);
            for module in &mut heavy.modules {
                module.output_bytes *= overhead.max(1.0);
            }
            let (m, d) = ricsa_pipemap::baselines::paraview_crs_mapping(
                &heavy, &graph, src, rs, dst, *overhead,
            )
            .expect("the ParaView crs deployment is feasible on Fig. 8");
            pipeline = heavy;
            (m, d, overhead.max(1.0))
        }
    };
    let vrt = ricsa_pipemap::vrt::VisualizationRoutingTable::from_mapping(
        &pipeline,
        &graph,
        &mapping,
        predicted.total,
    );
    SessionPlan {
        session: 1,
        spec: crate::catalog::SessionSpec::Archival { dataset },
        pipeline,
        mapping,
        vrt,
        predicted,
        processing_overhead: overhead,
    }
}

/// Reproduce Fig. 9: the end-to-end delay of all six loops for the three
/// datasets.  Returns one row per dataset plus the per-loop results.
pub fn fig9_experiment(options: &ExperimentOptions) -> (Vec<Fig9Row>, Vec<LoopResult>) {
    let loops = LoopSpec::fig9_loops();
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for dataset in DatasetKind::ALL {
        let mut delays = Vec::new();
        for spec in &loops {
            let result = run_loop_experiment(spec, dataset, options);
            delays.push(result.measured_delay);
            all.push(result);
        }
        rows.push(Fig9Row {
            dataset: dataset.name().to_string(),
            dataset_mb: DatasetKind::ALL
                .iter()
                .find(|d| **d == dataset)
                .map(|_| all.last().map(|r| r.dataset_mb).unwrap_or(0.0))
                .unwrap_or(0.0),
            loop_delays: delays,
        });
    }
    (rows, all)
}

/// Reproduce Fig. 10: RICSA's optimal loop versus the ParaView `-crs`
/// deployment for the three datasets.
pub fn fig10_experiment(
    options: &ExperimentOptions,
    paraview_overhead: f64,
) -> (Vec<Fig10Row>, Vec<LoopResult>) {
    let loops = LoopSpec::fig10_loops(paraview_overhead);
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for dataset in DatasetKind::ALL {
        let ricsa = run_loop_experiment(&loops[0], dataset, options);
        let paraview = run_loop_experiment(&loops[1], dataset, options);
        rows.push(Fig10Row {
            dataset: dataset.name().to_string(),
            dataset_mb: ricsa.dataset_mb,
            ricsa_delay: ricsa.measured_delay,
            paraview_delay: paraview.measured_delay,
        });
        all.push(ricsa);
        all.push(paraview);
    }
    (rows, all)
}

/// Render a Fig. 9 result set as an aligned text table (used by the
/// benchmark binaries and EXPERIMENTS.md).
pub fn format_fig9_table(rows: &[Fig9Row], loops: &[LoopSpec]) -> String {
    let mut out = String::new();
    out.push_str("Measured end-to-end delay (seconds)\n");
    out.push_str(&format!("{:<44}", "Loop"));
    for row in rows {
        out.push_str(&format!(
            "{:>18}",
            format!("{}({:.0}MB)", row.dataset, row.dataset_mb)
        ));
    }
    out.push('\n');
    for (i, spec) in loops.iter().enumerate() {
        out.push_str(&format!("{:<44}", spec.name));
        for row in rows {
            out.push_str(&format!("{:>18.2}", row.loop_delays[i]));
        }
        out.push('\n');
    }
    out
}

/// Render a Fig. 10 result set as an aligned text table.
pub fn format_fig10_table(rows: &[Fig10Row]) -> String {
    let mut out = String::new();
    out.push_str("Measured end-to-end delay (seconds)\n");
    out.push_str(&format!(
        "{:<24}{:>14}{:>16}{:>12}\n",
        "Dataset", "RICSA", "ParaView-crs", "ratio"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<24}{:>14.2}{:>16.2}{:>12.2}\n",
            format!("{}({:.0}MB)", row.dataset, row.dataset_mb),
            row.ricsa_delay,
            row.paraview_delay,
            row.paraview_delay / row.ricsa_delay.max(1e-9),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_specs_match_the_paper_inventory() {
        let loops = LoopSpec::fig9_loops();
        assert_eq!(loops.len(), 6);
        assert!(loops[0].forced_path.is_none());
        assert!(loops[0].name.contains("optimal"));
        // Loops 5 and 6 are the PC-PC (two-node) configurations.
        assert_eq!(loops[4].forced_path.as_ref().unwrap().len(), 2);
        assert_eq!(loops[5].forced_path.as_ref().unwrap().len(), 2);
        let fig10 = LoopSpec::fig10_loops(1.3);
        assert_eq!(fig10.len(), 2);
        assert!(fig10[1].paraview.is_some());
    }

    #[test]
    fn quick_loop_experiment_measures_a_delay_close_to_prediction() {
        let options = ExperimentOptions::quick();
        let loops = LoopSpec::fig9_loops();
        let result = run_loop_experiment(&loops[4], DatasetKind::Jet, &options);
        assert_eq!(result.iteration_delays.len() as u64, options.iterations);
        assert!(result.measured_delay.is_finite());
        assert!(result.measured_delay > 0.0);
        // The measured (simulated) delay should be within a factor of three
        // of the analytical prediction: the simulation adds transport
        // dynamics (windows, ACKs, cross traffic) the model ignores.
        let ratio = result.measured_delay / result.predicted_delay;
        assert!((0.4..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn optimal_loop_beats_the_pc_pc_loop_at_reduced_scale() {
        // 1/16th scale (VisWoman = 6.7 MB): large enough that the
        // network-optimized loop pays for its extra hop.  At a few hundred
        // kilobytes the PC-PC loop genuinely wins - the same observation the
        // paper makes about small datasets.
        let options = ExperimentOptions {
            size_scale: 1.0 / 16.0,
            max_virtual_time: SimTime::from_secs(200.0),
            ..ExperimentOptions::default()
        };
        let loops = LoopSpec::fig9_loops();
        let optimal = run_loop_experiment(&loops[0], DatasetKind::VisibleWoman, &options);
        let pc_pc = run_loop_experiment(&loops[4], DatasetKind::VisibleWoman, &options);
        assert!(
            optimal.measured_delay < pc_pc.measured_delay,
            "optimal {} should beat PC-PC {}",
            optimal.measured_delay,
            pc_pc.measured_delay
        );
    }

    #[test]
    fn table_formatting_contains_all_loops_and_datasets() {
        let loops = LoopSpec::fig9_loops();
        let rows = vec![
            Fig9Row {
                dataset: "Jet".into(),
                dataset_mb: 16.0,
                loop_delays: vec![1.0; 6],
            },
            Fig9Row {
                dataset: "Rage".into(),
                dataset_mb: 64.0,
                loop_delays: vec![2.0; 6],
            },
        ];
        let table = format_fig9_table(&rows, &loops);
        assert!(table.contains("Loop 1"));
        assert!(table.contains("Loop 6"));
        assert!(table.contains("Jet"));
        let fig10 = format_fig10_table(&[Fig10Row {
            dataset: "Jet".into(),
            dataset_mb: 16.0,
            ricsa_delay: 2.0,
            paraview_delay: 3.0,
        }]);
        assert!(fig10.contains("ParaView"));
        assert!(fig10.contains("1.50"));
    }
}
