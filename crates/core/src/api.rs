//! The RICSA simulation-side API.
//!
//! The paper integrates simulation codes by inserting six API calls into
//! their main loops (Fig. 7):
//!
//! ```text
//! RICSA_StartupSimulationServer();
//! RICSA_WaitAcceptConnection();
//! do RICSA_ReceiveHandleMessage(); while (Message Not SimulationReq)
//! ...
//! do {
//!     sweepx; sweepy; sweepz;
//!     RICSA_PushDataToVizNode();
//!     RICSA_ReceiveHandleMessage();
//!     if (Message is NewSimulationParameters) RICSA_UpdateSimulationParameters();
//! } while (Cycle Not EndCycle)
//! ```
//!
//! [`SimulationServer`] provides the same six operations for in-process use
//! (the web front end and the examples steer a live `ricsa-hydro` solver
//! through it): `startup`, `wait_accept_connection`,
//! `receive_handle_message`, `push_data_to_viz_node`,
//! `update_simulation_parameters`, and the cycle loop itself.

use crossbeam::channel::{unbounded, Receiver, Sender};
use ricsa_hydro::problems::Problem;
use ricsa_hydro::solver::{HydroSolver, SolverConfig};
use ricsa_hydro::steering::SteerableParams;
use ricsa_vizdata::field::Dims;
use ricsa_vizdata::io::VolumeContainer;
use serde::{Deserialize, Serialize};

/// Commands a client (front end) can send to a running simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimulationCommand {
    /// Start the requested simulation (the initial "SimulationReq").
    Start {
        /// Which problem to run.
        problem: Problem,
        /// Grid resolution.
        dims: Dims,
        /// Initial steering parameters.
        params: SteerableParams,
    },
    /// Update the steering parameters of the running simulation.
    UpdateParameters(SteerableParams),
    /// Pause the simulation (no further cycles until resumed).
    Pause,
    /// Resume a paused simulation.
    Resume,
    /// Stop the simulation and shut the server down.
    Stop,
}

/// The server's view of the simulation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimulationStatus {
    /// Waiting for a client to connect and request a simulation.
    WaitingForRequest,
    /// Running cycles.
    Running,
    /// Paused by the client.
    Paused,
    /// Finished (end cycle reached or stopped).
    Finished,
}

/// The in-process simulation server wrapping a hydrodynamics solver.
pub struct SimulationServer {
    command_tx: Sender<SimulationCommand>,
    command_rx: Receiver<SimulationCommand>,
    data_tx: Sender<VolumeContainer>,
    data_rx: Receiver<VolumeContainer>,
    solver: Option<HydroSolver>,
    status: SimulationStatus,
}

impl Default for SimulationServer {
    fn default() -> Self {
        SimulationServer::startup()
    }
}

impl SimulationServer {
    /// `RICSA_StartupSimulationServer`: create the server and its channels.
    pub fn startup() -> Self {
        let (command_tx, command_rx) = unbounded();
        let (data_tx, data_rx) = unbounded();
        SimulationServer {
            command_tx,
            command_rx,
            data_tx,
            data_rx,
            solver: None,
            status: SimulationStatus::WaitingForRequest,
        }
    }

    /// `RICSA_WaitAcceptConnection`: hand out the endpoints a client (front
    /// end) uses to steer the simulation and receive datasets.
    pub fn wait_accept_connection(&self) -> (Sender<SimulationCommand>, Receiver<VolumeContainer>) {
        (self.command_tx.clone(), self.data_rx.clone())
    }

    /// Current server status.
    pub fn status(&self) -> SimulationStatus {
        self.status
    }

    /// Current cycle of the running simulation (0 before start).
    pub fn cycle(&self) -> u64 {
        self.solver.as_ref().map(|s| s.cycle()).unwrap_or(0)
    }

    /// The running solver's steering parameters, if any.
    pub fn params(&self) -> Option<SteerableParams> {
        self.solver.as_ref().map(|s| *s.params())
    }

    /// `RICSA_ReceiveHandleMessage`: drain pending client commands, applying
    /// them to the server state.  Returns the number of commands handled.
    pub fn receive_handle_message(&mut self) -> usize {
        let mut handled = 0;
        while let Ok(cmd) = self.command_rx.try_recv() {
            handled += 1;
            self.handle(cmd);
        }
        handled
    }

    fn handle(&mut self, cmd: SimulationCommand) {
        match cmd {
            SimulationCommand::Start {
                problem,
                dims,
                params,
            } => {
                if self.solver.is_none() {
                    self.solver = Some(HydroSolver::new(SolverConfig {
                        problem,
                        dims,
                        params,
                    }));
                    self.status = SimulationStatus::Running;
                }
            }
            SimulationCommand::UpdateParameters(params) => {
                self.update_simulation_parameters(params);
            }
            SimulationCommand::Pause => {
                if self.status == SimulationStatus::Running {
                    self.status = SimulationStatus::Paused;
                }
            }
            SimulationCommand::Resume => {
                if self.status == SimulationStatus::Paused {
                    self.status = SimulationStatus::Running;
                }
            }
            SimulationCommand::Stop => {
                self.status = SimulationStatus::Finished;
            }
        }
    }

    /// `RICSA_UpdateSimulationParameters`: apply new steering parameters to
    /// the running solver.
    pub fn update_simulation_parameters(&mut self, params: SteerableParams) {
        if let Some(solver) = &mut self.solver {
            solver.update_params(params);
        }
    }

    /// `RICSA_PushDataToVizNode`: snapshot the current state and push it to
    /// the visualization side.  Returns the snapshot size in bytes.
    pub fn push_data_to_viz_node(&mut self) -> usize {
        match &self.solver {
            Some(solver) => {
                let snapshot = solver.snapshot();
                let bytes = snapshot.nbytes();
                // A full channel only means the consumer lags; drop-oldest
                // semantics are fine for monitoring.
                let _ = self.data_tx.send(snapshot);
                bytes
            }
            None => 0,
        }
    }

    /// Run one simulation cycle (`sweepx; sweepy; sweepz;`), push the data,
    /// and handle pending messages — one trip around the paper's main loop.
    /// Returns `false` once the simulation has finished.
    pub fn run_cycle(&mut self) -> bool {
        self.receive_handle_message();
        match self.status {
            SimulationStatus::Running => {}
            SimulationStatus::Paused | SimulationStatus::WaitingForRequest => return true,
            SimulationStatus::Finished => return false,
        }
        let finished = {
            let solver = match &mut self.solver {
                Some(s) => s,
                None => return true,
            };
            solver.step();
            solver.finished()
        };
        self.push_data_to_viz_node();
        if finished {
            self.status = SimulationStatus::Finished;
        }
        self.status != SimulationStatus::Finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_command(end_cycle: u64) -> SimulationCommand {
        SimulationCommand::Start {
            problem: Problem::SodShockTube,
            dims: Dims::new(32, 2, 2),
            params: SteerableParams {
                end_cycle,
                ..SteerableParams::default()
            },
        }
    }

    #[test]
    fn full_main_loop_round_trip() {
        let mut server = SimulationServer::startup();
        assert_eq!(server.status(), SimulationStatus::WaitingForRequest);
        let (commands, data) = server.wait_accept_connection();
        commands.send(start_command(3)).unwrap();
        // The paper's loop: handle the request, then cycle until EndCycle.
        let mut cycles = 0;
        while server.run_cycle() && cycles < 100 {
            cycles += 1;
        }
        assert_eq!(server.status(), SimulationStatus::Finished);
        assert_eq!(server.cycle(), 3);
        // One snapshot per completed cycle was pushed to the viz side.
        let snapshots: Vec<VolumeContainer> = data.try_iter().collect();
        assert_eq!(snapshots.len(), 3);
        assert!(snapshots.iter().all(|s| s.nbytes() > 0));
        assert_eq!(snapshots.last().unwrap().cycle, 3);
    }

    #[test]
    fn steering_updates_reach_the_solver_between_cycles() {
        let mut server = SimulationServer::startup();
        let (commands, _data) = server.wait_accept_connection();
        commands.send(start_command(100)).unwrap();
        server.run_cycle();
        let before = server.params().unwrap().cfl;
        commands
            .send(SimulationCommand::UpdateParameters(SteerableParams {
                cfl: 0.1,
                end_cycle: 100,
                ..SteerableParams::default()
            }))
            .unwrap();
        server.run_cycle();
        let after = server.params().unwrap().cfl;
        assert_ne!(before, after);
        assert!((after - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pause_resume_and_stop() {
        let mut server = SimulationServer::startup();
        let (commands, _data) = server.wait_accept_connection();
        commands.send(start_command(1000)).unwrap();
        server.run_cycle();
        let cycle_before = server.cycle();
        commands.send(SimulationCommand::Pause).unwrap();
        server.run_cycle();
        server.run_cycle();
        assert_eq!(
            server.cycle(),
            cycle_before,
            "paused simulation must not advance"
        );
        assert_eq!(server.status(), SimulationStatus::Paused);
        commands.send(SimulationCommand::Resume).unwrap();
        server.run_cycle();
        assert!(server.cycle() > cycle_before);
        commands.send(SimulationCommand::Stop).unwrap();
        assert!(!server.run_cycle());
        assert_eq!(server.status(), SimulationStatus::Finished);
    }

    #[test]
    fn push_without_a_running_simulation_is_a_noop() {
        let mut server = SimulationServer::startup();
        assert_eq!(server.push_data_to_viz_node(), 0);
        assert_eq!(server.cycle(), 0);
        assert!(server.params().is_none());
        // Cycling while waiting for a request does nothing but stays alive.
        assert!(server.run_cycle());
    }
}
