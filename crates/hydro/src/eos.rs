//! Ideal-gas (gamma-law) equation of state.

use serde::{Deserialize, Serialize};

/// The gamma-law equation of state `p = (γ - 1) ρ e_int`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealGas {
    /// Adiabatic index γ.
    pub gamma: f64,
}

impl Default for IdealGas {
    fn default() -> Self {
        IdealGas { gamma: 1.4 }
    }
}

impl IdealGas {
    /// Construct with the given adiabatic index.
    ///
    /// # Panics
    /// Panics unless `gamma > 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 1.0, "adiabatic index must exceed 1, got {gamma}");
        IdealGas { gamma }
    }

    /// Pressure from density and specific internal energy.
    pub fn pressure(&self, rho: f64, internal_energy: f64) -> f64 {
        ((self.gamma - 1.0) * rho * internal_energy).max(0.0)
    }

    /// Pressure from conservative variables (density, momentum, total
    /// energy per volume).
    pub fn pressure_cons(&self, rho: f64, momentum: [f64; 3], total_energy: f64) -> f64 {
        let rho = rho.max(1e-12);
        let kinetic = 0.5 * (momentum[0].powi(2) + momentum[1].powi(2) + momentum[2].powi(2)) / rho;
        ((self.gamma - 1.0) * (total_energy - kinetic)).max(0.0)
    }

    /// Total energy per volume from primitive variables.
    pub fn total_energy(&self, rho: f64, velocity: [f64; 3], pressure: f64) -> f64 {
        let kinetic = 0.5 * rho * (velocity[0].powi(2) + velocity[1].powi(2) + velocity[2].powi(2));
        pressure / (self.gamma - 1.0) + kinetic
    }

    /// Adiabatic sound speed.
    pub fn sound_speed(&self, rho: f64, pressure: f64) -> f64 {
        (self.gamma * pressure.max(0.0) / rho.max(1e-12)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_and_energy_are_inverse_operations() {
        let eos = IdealGas::new(1.4);
        let rho = 1.2;
        let v = [0.3, -0.2, 0.1];
        let p = 0.8;
        let e = eos.total_energy(rho, v, p);
        let mom = [rho * v[0], rho * v[1], rho * v[2]];
        let back = eos.pressure_cons(rho, mom, e);
        assert!((back - p).abs() < 1e-12);
    }

    #[test]
    fn sound_speed_matches_analytics() {
        let eos = IdealGas::new(1.4);
        // c = sqrt(gamma * p / rho) = sqrt(1.4) for p = rho = 1.
        assert!((eos.sound_speed(1.0, 1.0) - 1.4f64.sqrt()).abs() < 1e-12);
        // Degenerate inputs do not produce NaN.
        assert!(eos.sound_speed(0.0, 1.0).is_finite());
        assert_eq!(eos.sound_speed(1.0, -1.0), 0.0);
    }

    #[test]
    fn negative_internal_energy_clamps_to_zero_pressure() {
        let eos = IdealGas::default();
        assert_eq!(eos.pressure(1.0, -5.0), 0.0);
        assert_eq!(eos.pressure_cons(1.0, [10.0, 0.0, 0.0], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "adiabatic index")]
    fn gamma_must_exceed_one() {
        let _ = IdealGas::new(1.0);
    }
}
