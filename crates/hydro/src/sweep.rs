//! Dimensionally split 1D sweeps (`sweepx`, `sweepy`, `sweepz`).
//!
//! VH1's main loop advances the solution with one 1D sweep per axis per
//! cycle; the paper's Fig. 7 shows exactly that structure with the RICSA
//! hooks inserted around it.  Each sweep extracts pencils of cells along the
//! sweep axis, computes HLL interface fluxes with outflow boundary
//! conditions, and applies a first-order conservative update.

use crate::riemann::{hll_flux, Cons1D};
use crate::state::HydroState;
use rayon::prelude::*;

/// The axis of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Sweep along x.
    X,
    /// Sweep along y.
    Y,
    /// Sweep along z.
    Z,
}

impl Axis {
    fn component(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

/// Perform one conservative sweep along `axis` with time step `dt`.
pub fn sweep(state: &mut HydroState, axis: Axis, dt: f64) {
    let dims = state.dims;
    let (n_axis, n_other) = match axis {
        Axis::X => (dims.nx, dims.ny * dims.nz),
        Axis::Y => (dims.ny, dims.nx * dims.nz),
        Axis::Z => (dims.nz, dims.nx * dims.ny),
    };
    if n_axis < 2 {
        return;
    }
    let dx = state.dx[axis.component()];
    let eos = state.eos;

    // Gather the linear indices of each pencil up front so the update can be
    // parallelized over pencils without aliasing.
    let pencil_indices = |pencil: usize| -> Vec<usize> {
        match axis {
            Axis::X => {
                let y = pencil % dims.ny;
                let z = pencil / dims.ny;
                (0..dims.nx).map(|x| dims.index(x, y, z)).collect()
            }
            Axis::Y => {
                let x = pencil % dims.nx;
                let z = pencil / dims.nx;
                (0..dims.ny).map(|y| dims.index(x, y, z)).collect()
            }
            Axis::Z => {
                let x = pencil % dims.nx;
                let y = pencil / dims.nx;
                (0..dims.nz).map(|z| dims.index(x, y, z)).collect()
            }
        }
    };

    // Compute updates per pencil in parallel, then apply them serially.
    // Shared immutable views keep the parallel closure free of the &mut
    // borrow on `state`.
    let rho_view = &state.rho;
    let momentum_view = &state.momentum;
    let energy_view = &state.energy;
    let updates: Vec<(Vec<usize>, Vec<Cons1D>)> = (0..n_other)
        .into_par_iter()
        .map(|pencil| {
            let idx = pencil_indices(pencil);
            let axis_k = axis.component();
            let (t1, t2) = match axis {
                Axis::X => (1, 2),
                Axis::Y => (0, 2),
                Axis::Z => (0, 1),
            };
            // Load the pencil as 1D conservative states.
            let cells: Vec<Cons1D> = idx
                .iter()
                .map(|&i| Cons1D {
                    rho: rho_view[i],
                    mn: momentum_view[axis_k][i],
                    mt1: momentum_view[t1][i],
                    mt2: momentum_view[t2][i],
                    energy: energy_view[i],
                })
                .collect();
            // Interface fluxes with outflow (zero-gradient) boundaries.
            let n = cells.len();
            let mut fluxes = Vec::with_capacity(n + 1);
            for face in 0..=n {
                let left = if face == 0 {
                    &cells[0]
                } else {
                    &cells[face - 1]
                };
                let right = if face == n {
                    &cells[n - 1]
                } else {
                    &cells[face]
                };
                fluxes.push(hll_flux(&eos, left, right));
            }
            // Conservative update.
            let lambda = dt / dx;
            let updated: Vec<Cons1D> = (0..n)
                .map(|c| {
                    let div = fluxes[c + 1].add_scaled(&fluxes[c], -1.0);
                    cells[c].add_scaled(&div, -lambda)
                })
                .collect();
            (idx, updated)
        })
        .collect();

    let axis_k = axis.component();
    let (t1, t2) = match axis {
        Axis::X => (1, 2),
        Axis::Y => (0, 2),
        Axis::Z => (0, 1),
    };
    for (idx, updated) in updates {
        for (i, u) in idx.into_iter().zip(updated) {
            state.rho[i] = u.rho.max(1e-12);
            state.momentum[axis_k][i] = u.mn;
            state.momentum[t1][i] = u.mt1;
            state.momentum[t2][i] = u.mt2;
            state.energy[i] = u.energy.max(1e-12);
        }
    }
}

/// `sweepx` from the VH1 main loop.
pub fn sweepx(state: &mut HydroState, dt: f64) {
    sweep(state, Axis::X, dt);
}

/// `sweepy` from the VH1 main loop.
pub fn sweepy(state: &mut HydroState, dt: f64) {
    sweep(state, Axis::Y, dt);
}

/// `sweepz` from the VH1 main loop.
pub fn sweepz(state: &mut HydroState, dt: f64) {
    sweep(state, Axis::Z, dt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::IdealGas;
    use ricsa_vizdata::field::Dims;

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let mut s = HydroState::uniform(Dims::new(16, 4, 4), IdealGas::default());
        let before = s.clone();
        sweepx(&mut s, 1e-3);
        sweepy(&mut s, 1e-3);
        sweepz(&mut s, 1e-3);
        for i in 0..s.rho.len() {
            assert!((s.rho[i] - before.rho[i]).abs() < 1e-12);
            assert!((s.energy[i] - before.energy[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_conserves_mass_with_closed_interior() {
        // A density bump in the middle of the domain: with outflow
        // boundaries nothing leaves in one small step, so mass is conserved
        // to machine precision.
        let mut s = HydroState::uniform(Dims::new(32, 1, 1), IdealGas::default());
        for x in 12..20 {
            let i = s.index(x, 0, 0);
            s.set_primitive(i, 2.0, [0.0; 3], 1.0);
        }
        let mass_before = s.total_mass();
        sweepx(&mut s, 1e-3);
        let mass_after = s.total_mass();
        assert!((mass_before - mass_after).abs() < 1e-10);
        assert!(s.is_physical());
    }

    #[test]
    fn pressure_jump_drives_flow_toward_low_pressure() {
        let mut s = HydroState::uniform(Dims::new(32, 1, 1), IdealGas::default());
        for x in 0..16 {
            let i = s.index(x, 0, 0);
            s.set_primitive(i, 1.0, [0.0; 3], 10.0);
        }
        for _ in 0..5 {
            sweepx(&mut s, 5e-4);
        }
        // Cells just right of the interface acquire positive x velocity.
        let (_, v, _) = s.primitive(s.index(17, 0, 0));
        assert!(v[0] > 0.0, "velocity {v:?}");
        assert!(s.is_physical());
    }

    #[test]
    fn degenerate_axis_is_a_no_op() {
        let mut s = HydroState::uniform(Dims::new(8, 1, 1), IdealGas::default());
        let before = s.clone();
        sweepy(&mut s, 1e-3);
        sweepz(&mut s, 1e-3);
        assert_eq!(s, before);
    }

    #[test]
    fn sweeps_along_different_axes_are_symmetric() {
        // A bump along x swept in x should match a bump along y swept in y.
        let mut sx = HydroState::uniform(Dims::new(16, 16, 1), IdealGas::default());
        let mut sy = HydroState::uniform(Dims::new(16, 16, 1), IdealGas::default());
        for k in 6..10 {
            for j in 0..16 {
                sx.set_primitive(sx.index(k, j, 0), 2.0, [0.0; 3], 2.0);
                sy.set_primitive(sy.index(j, k, 0), 2.0, [0.0; 3], 2.0);
            }
        }
        sweepx(&mut sx, 1e-3);
        sweepy(&mut sy, 1e-3);
        for a in 0..16 {
            for b in 0..16 {
                let ix = sx.index(a, b, 0);
                let iy = sy.index(b, a, 0);
                assert!((sx.rho[ix] - sy.rho[iy]).abs() < 1e-12);
            }
        }
    }
}
