//! The cycle-based solver driving the dimensional sweeps.
//!
//! Mirrors VH1's main loop as instrumented in the paper's Fig. 7:
//!
//! ```text
//! do {
//!     sweepx; sweepy; sweepz;
//!     RICSA_PushDataToVizNode();
//!     RICSA_ReceiveHandleMessage();
//!     if (Message is NewSimulationParameters) RICSA_UpdateSimulationParameters();
//! } while (Cycle Not EndCycle)
//! ```
//!
//! The solver exposes exactly those hook points: [`HydroSolver::step`]
//! advances one cycle, [`HydroSolver::snapshot`] produces the dataset to
//! push, and [`HydroSolver::update_params`] applies steering changes between
//! cycles.

use crate::problems::{apply_wind_source, Problem};
use crate::state::HydroState;
use crate::steering::SteerableParams;
use crate::sweep::{sweepx, sweepy, sweepz};
use ricsa_vizdata::field::Dims;
use ricsa_vizdata::io::VolumeContainer;
use serde::{Deserialize, Serialize};

/// Static configuration of a solver run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Which problem to run.
    pub problem: Problem,
    /// Grid resolution.
    pub dims: Dims,
    /// Initial steering parameters.
    pub params: SteerableParams,
}

impl SolverConfig {
    /// A small Sod shock-tube configuration suitable for tests and examples.
    pub fn sod_small() -> Self {
        SolverConfig {
            problem: Problem::SodShockTube,
            dims: Dims::new(128, 4, 4),
            params: SteerableParams::default(),
        }
    }

    /// A 2D bow-shock configuration suitable for examples.
    pub fn bow_shock_small() -> Self {
        SolverConfig {
            problem: Problem::BowShock,
            dims: Dims::new(96, 64, 1),
            params: SteerableParams::default(),
        }
    }
}

/// The cycle-based hydrodynamics solver.
#[derive(Debug, Clone)]
pub struct HydroSolver {
    config: SolverConfig,
    params: SteerableParams,
    state: HydroState,
}

impl HydroSolver {
    /// Initialize the solver from a configuration.
    pub fn new(config: SolverConfig) -> Self {
        let params = config.params.sanitized();
        let state = config.problem.initialize(config.dims, &params);
        HydroSolver {
            config,
            params,
            state,
        }
    }

    /// The current simulation state.
    pub fn state(&self) -> &HydroState {
        &self.state
    }

    /// The current steering parameters.
    pub fn params(&self) -> &SteerableParams {
        &self.params
    }

    /// The configured problem.
    pub fn problem(&self) -> Problem {
        self.config.problem
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// Whether the simulation has reached its configured end cycle.
    pub fn finished(&self) -> bool {
        self.state.cycle >= self.params.end_cycle
    }

    /// The CFL-limited time step for the current state.
    pub fn stable_dt(&self) -> f64 {
        let max_speed = self.state.max_signal_speed().max(1e-9);
        let min_dx = self.state.dx.iter().cloned().fold(f64::INFINITY, f64::min);
        self.params.cfl * min_dx / max_speed
    }

    /// Advance one cycle (`sweepx; sweepy; sweepz;`), returning the time
    /// step taken.
    pub fn step(&mut self) -> f64 {
        let dt = self.stable_dt();
        sweepx(&mut self.state, dt);
        sweepy(&mut self.state, dt);
        sweepz(&mut self.state, dt);
        if self.config.problem == Problem::BowShock {
            apply_wind_source(&mut self.state, &self.params);
        }
        self.state.time += dt;
        self.state.cycle += 1;
        dt
    }

    /// Advance `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            if self.finished() {
                break;
            }
            self.step();
        }
    }

    /// Apply new steering parameters (the `RICSA_UpdateSimulationParameters`
    /// hook).  Parameters are sanitized; the adiabatic index is applied to
    /// the equation of state immediately.
    pub fn update_params(&mut self, params: SteerableParams) {
        let params = params.sanitized();
        self.state.eos.gamma = params.gamma;
        self.params = params;
    }

    /// Produce the dataset for the current cycle (the
    /// `RICSA_PushDataToVizNode` hook).
    pub fn snapshot(&self) -> VolumeContainer {
        self.state.to_container()
    }

    /// Restart from a previously produced snapshot ("restart from old dump
    /// file to save time" in the VH1 pseudo-code).  Only the standard
    /// variables are recovered; velocity direction information is not stored
    /// in snapshots, so momentum is reset along x.
    pub fn restart_from(&mut self, snapshot: &VolumeContainer) -> bool {
        let density = match snapshot.variable("density") {
            Some(f) if f.dims == self.state.dims => f,
            _ => return false,
        };
        let pressure = match snapshot.variable("pressure") {
            Some(f) if f.dims == self.state.dims => f,
            _ => return false,
        };
        let velocity = snapshot.variable("velocity");
        for i in 0..self.state.rho.len() {
            let rho = density.data[i].max(1e-6) as f64;
            let p = pressure.data[i].max(1e-9) as f64;
            let u = velocity.map(|v| v.data[i] as f64).unwrap_or(0.0);
            self.state.set_primitive(i, rho, [u, 0.0, 0.0], p);
        }
        self.state.cycle = snapshot.cycle;
        self.state.time = snapshot.time;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sod_exact::{ExactRiemann, RiemannStates};
    use crate::state::HydroVariable;

    #[test]
    fn sod_run_matches_the_exact_solution_shape() {
        // 1D Sod tube at t ~ 0.15: compare the numerical density profile to
        // the exact solution in L1.  A first-order scheme on 256 cells keeps
        // the L1 error below a few percent.
        let config = SolverConfig {
            problem: Problem::SodShockTube,
            dims: Dims::new(256, 1, 1),
            params: SteerableParams {
                cfl: 0.4,
                end_cycle: 100_000,
                ..SteerableParams::default()
            },
        };
        let mut solver = HydroSolver::new(config);
        let t_target = 0.15;
        while solver.state().time < t_target {
            solver.step();
        }
        let exact = ExactRiemann::solve(RiemannStates::sod());
        let state = solver.state();
        let n = state.dims.nx;
        let mut l1 = 0.0;
        for x in 0..n {
            let pos = (x as f64 + 0.5) / n as f64;
            let (rho_exact, _, _) = exact.sample(pos, 0.5, state.time);
            let (rho_num, _, _) = state.primitive(state.index(x, 0, 0));
            l1 += (rho_exact - rho_num).abs() / n as f64;
        }
        assert!(l1 < 0.03, "L1 density error {l1}");
        assert!(state.is_physical());
    }

    #[test]
    fn mass_is_conserved_while_waves_stay_interior() {
        let mut solver = HydroSolver::new(SolverConfig {
            problem: Problem::SodShockTube,
            dims: Dims::new(128, 1, 1),
            params: SteerableParams::default(),
        });
        let before = solver.state().total_mass();
        solver.run(30);
        let after = solver.state().total_mass();
        assert!(
            ((before - after) / before).abs() < 1e-10,
            "mass drifted from {before} to {after}"
        );
    }

    #[test]
    fn cycles_and_finish_flag_advance() {
        let mut solver = HydroSolver::new(SolverConfig {
            problem: Problem::SodShockTube,
            dims: Dims::new(32, 1, 1),
            params: SteerableParams {
                end_cycle: 5,
                ..SteerableParams::default()
            },
        });
        assert_eq!(solver.cycle(), 0);
        assert!(!solver.finished());
        solver.run(100);
        assert_eq!(solver.cycle(), 5);
        assert!(solver.finished());
    }

    #[test]
    fn steering_changes_take_effect_mid_run() {
        let mut solver = HydroSolver::new(SolverConfig::sod_small());
        solver.run(3);
        let old_gamma = solver.state().eos.gamma;
        solver.update_params(SteerableParams {
            gamma: 1.6667,
            cfl: 0.2,
            ..SteerableParams::default()
        });
        assert!((solver.state().eos.gamma - 1.6667).abs() < 1e-9);
        assert_ne!(solver.state().eos.gamma, old_gamma);
        // A smaller CFL factor shrinks the next step.
        let dt = solver.stable_dt();
        solver.update_params(SteerableParams {
            cfl: 0.4,
            gamma: 1.6667,
            ..SteerableParams::default()
        });
        assert!(solver.stable_dt() > dt);
    }

    #[test]
    fn bow_shock_develops_a_pressure_peak_upstream_of_the_source() {
        let mut solver = HydroSolver::new(SolverConfig {
            problem: Problem::BowShock,
            dims: Dims::new(64, 48, 1),
            params: SteerableParams {
                inflow_velocity: 3.0,
                ..SteerableParams::default()
            },
        });
        solver.run(60);
        let state = solver.state();
        assert!(state.is_physical());
        let p = state.field(HydroVariable::Pressure);
        // Pressure just upstream (lower x) of the wind source exceeds the
        // ambient pressure because the wind and the inflow collide there.
        let upstream = p.get(14, 24, 0);
        let ambient = p.get(60, 5, 0);
        assert!(
            upstream > ambient * 1.3,
            "upstream {upstream} vs ambient {ambient}"
        );
    }

    #[test]
    fn snapshot_and_restart_round_trip() {
        let mut solver = HydroSolver::new(SolverConfig::sod_small());
        solver.run(5);
        let snap = solver.snapshot();
        assert_eq!(snap.cycle, 5);
        let mut fresh = HydroSolver::new(SolverConfig::sod_small());
        assert!(fresh.restart_from(&snap));
        assert_eq!(fresh.cycle(), 5);
        let (rho_a, _, _) = solver.state().primitive(10);
        let (rho_b, _, _) = fresh.state().primitive(10);
        assert!((rho_a - rho_b).abs() < 1e-4);
        // Mismatched dims are rejected.
        let mut other = HydroSolver::new(SolverConfig {
            problem: Problem::SodShockTube,
            dims: Dims::new(16, 1, 1),
            params: SteerableParams::default(),
        });
        assert!(!other.restart_from(&snap));
    }
}
