//! A VH1-like finite-volume hydrodynamics simulator with steering hooks.
//!
//! The paper instruments the Virginia Hydrodynamics (VH1) Fortran code with
//! six `RICSA_*` API calls and drives it through the main loop
//! `sweepx; sweepy; sweepz;` (its Fig. 7), and its GUI screenshot shows a Sod
//! shock-tube run and a stellar-wind bow-shock pressure animation.  This
//! crate provides the equivalent simulation substrate in Rust:
//!
//! * [`state`] — conservative-variable state on a regular grid with
//!   primitive-variable conversion,
//! * [`eos`] — the ideal-gas (gamma-law) equation of state,
//! * [`riemann`] — an HLL approximate Riemann solver,
//! * [`sweep`] — dimensionally split 1D sweeps (`sweepx`/`sweepy`/`sweepz`),
//! * [`solver`] — CFL-limited time stepping over whole cycles,
//! * [`problems`] — Sod shock tube and stellar-wind bow shock setups,
//! * [`sod_exact`] — the exact Sod solution used to validate the solver,
//! * [`steering`] — the runtime-adjustable parameters a RICSA client steers.
//!
//! The solver's output is converted into `ricsa-vizdata` containers so it
//! plugs directly into the visualization pipeline.

#![deny(missing_docs)]

pub mod eos;
pub mod problems;
pub mod riemann;
pub mod sod_exact;
pub mod solver;
pub mod state;
pub mod steering;
pub mod sweep;

pub use eos::IdealGas;
pub use problems::{bow_shock, sod_shock_tube, Problem};
pub use solver::{HydroSolver, SolverConfig};
pub use state::HydroState;
pub use steering::SteerableParams;
