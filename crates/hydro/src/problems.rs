//! Initial conditions: the Sod shock tube and the stellar-wind bow shock.
//!
//! These are the two problems visible in the paper's experiments: "The Sod
//! shock tube simulation, a classical hydrodynamics problem, is running on a
//! Linux cluster" and the GUI screenshot shows "the pressure animation of
//! stellar wind bowshock on a cluster".

use crate::eos::IdealGas;
use crate::state::HydroState;
use crate::steering::SteerableParams;
use ricsa_vizdata::field::Dims;
use serde::{Deserialize, Serialize};

/// Which initial-value problem the solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Problem {
    /// The Sod shock tube: a diaphragm separating a high-pressure and a
    /// low-pressure region along x.
    SodShockTube,
    /// A stellar wind blowing against a uniform ambient flow, forming a bow
    /// shock around the source.
    BowShock,
}

impl Problem {
    /// Display name used by the framework's simulation catalog.
    pub fn name(self) -> &'static str {
        match self {
            Problem::SodShockTube => "sod-shock-tube",
            Problem::BowShock => "stellar-wind-bowshock",
        }
    }

    /// Parse a catalog name back into a problem.
    pub fn from_name(name: &str) -> Option<Problem> {
        match name {
            "sod-shock-tube" => Some(Problem::SodShockTube),
            "stellar-wind-bowshock" => Some(Problem::BowShock),
            _ => None,
        }
    }

    /// Build the initial state on the given grid with the given steering
    /// parameters.
    pub fn initialize(self, dims: Dims, params: &SteerableParams) -> HydroState {
        match self {
            Problem::SodShockTube => sod_shock_tube(dims, params),
            Problem::BowShock => bow_shock(dims, params),
        }
    }
}

/// Standard Sod shock tube: left state `(ρ, p) = (1, 1)`, right state
/// `(0.125, 0.1)`, both at rest, diaphragm at the domain midpoint.  The
/// steering parameter `drive_strength` scales the left-state pressure so a
/// user can strengthen or weaken the shock on the fly.
pub fn sod_shock_tube(dims: Dims, params: &SteerableParams) -> HydroState {
    let params = params.sanitized();
    let eos = IdealGas::new(params.gamma);
    let mut state = HydroState::uniform(dims, eos);
    let mid = dims.nx / 2;
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let i = state.index(x, y, z);
                if x < mid {
                    state.set_primitive(i, 1.0, [0.0; 3], 1.0 * params.drive_strength.max(0.1));
                } else {
                    state.set_primitive(i, 0.125, [0.0; 3], 0.1);
                }
            }
        }
    }
    state
}

/// A stellar wind source at the domain center blowing radially outward into
/// an ambient medium streaming in the +x direction, which rolls up into a
/// bow shock upstream of the source.
pub fn bow_shock(dims: Dims, params: &SteerableParams) -> HydroState {
    let params = params.sanitized();
    let eos = IdealGas::new(params.gamma);
    let mut state = HydroState::uniform(dims, eos);
    let ambient_rho = 1.0;
    let ambient_p = 0.6;
    let inflow = [params.inflow_velocity, 0.0, 0.0];
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let i = state.index(x, y, z);
                state.set_primitive(i, ambient_rho, inflow, ambient_p);
            }
        }
    }
    apply_wind_source(&mut state, &params);
    state
}

/// Re-impose the stellar-wind source region; the solver calls this every
/// cycle so the wind keeps blowing (and so steering changes to the wind
/// strength take effect immediately).
pub fn apply_wind_source(state: &mut HydroState, params: &SteerableParams) {
    let params = params.sanitized();
    let dims = state.dims;
    if dims.nx < 4 || dims.ny < 4 {
        return;
    }
    let center = [
        dims.nx as f64 * 0.35,
        dims.ny as f64 * 0.5,
        (dims.nz.max(1)) as f64 * 0.5,
    ];
    let radius = (dims.ny.min(dims.nx) as f64 * 0.08).max(1.5);
    let wind_rho = 2.0 * params.drive_strength.max(0.01);
    let wind_p = 2.0 * params.drive_strength.max(0.01);
    let wind_speed = params.inflow_velocity.max(0.5);
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let dx = x as f64 - center[0];
                let dy = y as f64 - center[1];
                let dz = if dims.nz > 1 {
                    z as f64 - center[2]
                } else {
                    0.0
                };
                let r = (dx * dx + dy * dy + dz * dz).sqrt();
                if r <= radius {
                    let dir = if r < 1e-9 {
                        [0.0, 0.0, 0.0]
                    } else {
                        [dx / r, dy / r, dz / r]
                    };
                    let v = [
                        dir[0] * wind_speed,
                        dir[1] * wind_speed,
                        dir[2] * wind_speed,
                    ];
                    let i = state.index(x, y, z);
                    state.set_primitive(i, wind_rho, v, wind_p);
                }
            }
        }
    }
    // Keep the upstream (low-x) boundary feeding the ambient flow.
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            let i = state.index(0, y, z);
            state.set_primitive(i, 1.0, [params.inflow_velocity, 0.0, 0.0], 0.6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_names_round_trip() {
        for p in [Problem::SodShockTube, Problem::BowShock] {
            assert_eq!(Problem::from_name(p.name()), Some(p));
        }
        assert_eq!(Problem::from_name("unknown"), None);
    }

    #[test]
    fn sod_initial_state_has_the_standard_jump() {
        let state = sod_shock_tube(Dims::new(64, 4, 4), &SteerableParams::default());
        assert!(state.is_physical());
        let (rho_l, v_l, p_l) = state.primitive(state.index(10, 2, 2));
        let (rho_r, v_r, p_r) = state.primitive(state.index(50, 2, 2));
        assert!((rho_l - 1.0).abs() < 1e-12);
        assert!((p_l - 1.0).abs() < 1e-12);
        assert!((rho_r - 0.125).abs() < 1e-12);
        assert!((p_r - 0.1).abs() < 1e-9);
        assert_eq!(v_l, [0.0; 3]);
        assert_eq!(v_r, [0.0; 3]);
    }

    #[test]
    fn drive_strength_scales_the_driver_pressure() {
        let strong = sod_shock_tube(
            Dims::new(32, 1, 1),
            &SteerableParams {
                drive_strength: 5.0,
                ..SteerableParams::default()
            },
        );
        let (_, _, p) = strong.primitive(strong.index(2, 0, 0));
        assert!((p - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bow_shock_has_a_wind_source_inside_ambient_flow() {
        let params = SteerableParams::default();
        let state = bow_shock(Dims::new(48, 32, 1), &params);
        assert!(state.is_physical());
        // Ambient cell far downstream flows in +x at the inflow speed.
        let (_, v, _) = state.primitive(state.index(44, 16, 0));
        assert!((v[0] - params.inflow_velocity).abs() < 1e-9);
        // Wind source region is denser than the ambient medium.
        let src = state.primitive(state.index(16, 16, 0));
        assert!(src.0 > 1.5, "wind density {}", src.0);
    }

    #[test]
    fn wind_source_respects_steering_changes() {
        let mut state = bow_shock(Dims::new(48, 32, 1), &SteerableParams::default());
        let weak = SteerableParams {
            drive_strength: 0.1,
            ..SteerableParams::default()
        };
        apply_wind_source(&mut state, &weak);
        let src = state.primitive(state.index(16, 16, 0));
        assert!(src.0 < 0.5, "wind density after weakening {}", src.0);
    }

    #[test]
    fn tiny_grids_do_not_panic() {
        let state = bow_shock(Dims::new(2, 2, 1), &SteerableParams::default());
        assert!(state.is_physical());
    }
}
