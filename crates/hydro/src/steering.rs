//! Steerable simulation parameters.
//!
//! These are the "computation control parameters" a RICSA user adjusts from
//! the browser while the simulation runs; the framework delivers them over
//! the stable control channel and the solver applies them between cycles
//! (the `RICSA_UpdateSimulationParameters` hook in the paper's Fig. 7).

use serde::{Deserialize, Serialize};

/// Runtime-adjustable parameters of the hydrodynamics simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteerableParams {
    /// Adiabatic index γ of the gas.
    pub gamma: f64,
    /// CFL safety factor in `(0, 1]`.
    pub cfl: f64,
    /// Strength multiplier of the driving source (wind density for the bow
    /// shock, driver pressure ratio for the shock tube).
    pub drive_strength: f64,
    /// Inflow/wind velocity magnitude.
    pub inflow_velocity: f64,
    /// Cycle at which the simulation should stop (the "EndCycle" of the
    /// VH1 main loop).
    pub end_cycle: u64,
}

impl Default for SteerableParams {
    fn default() -> Self {
        SteerableParams {
            gamma: 1.4,
            cfl: 0.4,
            drive_strength: 1.0,
            inflow_velocity: 2.0,
            end_cycle: 1000,
        }
    }
}

impl SteerableParams {
    /// Validate and clamp the parameters into their admissible ranges,
    /// returning the sanitized copy.  The framework applies this before
    /// handing user-supplied values to the solver so that a bad steering
    /// request can never crash a running simulation.
    pub fn sanitized(&self) -> SteerableParams {
        SteerableParams {
            gamma: self.gamma.clamp(1.01, 5.0 / 3.0 + 1.0),
            cfl: self.cfl.clamp(0.05, 0.9),
            drive_strength: self.drive_strength.clamp(0.0, 100.0),
            inflow_velocity: self.inflow_velocity.clamp(0.0, 50.0),
            end_cycle: self.end_cycle.max(1),
        }
    }

    /// Whether the parameters are already within their admissible ranges.
    pub fn is_valid(&self) -> bool {
        *self == self.sanitized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let p = SteerableParams::default();
        assert!(p.is_valid());
        assert_eq!(p.sanitized(), p);
    }

    #[test]
    fn sanitization_clamps_out_of_range_values() {
        let wild = SteerableParams {
            gamma: 0.5,
            cfl: 3.0,
            drive_strength: -4.0,
            inflow_velocity: 1e9,
            end_cycle: 0,
        };
        assert!(!wild.is_valid());
        let s = wild.sanitized();
        assert!(s.gamma > 1.0);
        assert!(s.cfl <= 0.9);
        assert_eq!(s.drive_strength, 0.0);
        assert_eq!(s.inflow_velocity, 50.0);
        assert_eq!(s.end_cycle, 1);
        assert!(s.is_valid());
    }
}
