//! The conservative-variable state of the hydrodynamics solver.

use crate::eos::IdealGas;
use ricsa_vizdata::field::{Dims, ScalarField};
use ricsa_vizdata::io::VolumeContainer;
use serde::{Deserialize, Serialize};

/// Conservative variables (density, momentum, total energy) on a regular
/// grid, stored struct-of-arrays in the same x-fastest order as
/// `ricsa_vizdata` fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HydroState {
    /// Grid dimensions.
    pub dims: Dims,
    /// Cell width along each axis (uniform).
    pub dx: [f64; 3],
    /// Mass density ρ.
    pub rho: Vec<f64>,
    /// Momentum density (ρu, ρv, ρw).
    pub momentum: [Vec<f64>; 3],
    /// Total energy density E.
    pub energy: Vec<f64>,
    /// Equation of state.
    pub eos: IdealGas,
    /// Physical time of this state.
    pub time: f64,
    /// Cycle (time step) counter.
    pub cycle: u64,
}

impl HydroState {
    /// A quiescent state (`ρ = 1`, `p = 1`, `u = 0`) on the given grid.
    pub fn uniform(dims: Dims, eos: IdealGas) -> Self {
        let n = dims.count();
        let rho = vec![1.0; n];
        let momentum = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        let energy = vec![eos.total_energy(1.0, [0.0; 3], 1.0); n];
        HydroState {
            dims,
            dx: [
                1.0 / dims.nx.max(1) as f64,
                1.0 / dims.ny.max(1) as f64,
                1.0 / dims.nz.max(1) as f64,
            ],
            rho,
            momentum,
            energy,
            eos,
            time: 0.0,
            cycle: 0,
        }
    }

    /// Linear index of a cell.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        self.dims.index(x, y, z)
    }

    /// Set the primitive variables of one cell.
    pub fn set_primitive(&mut self, i: usize, rho: f64, velocity: [f64; 3], pressure: f64) {
        self.rho[i] = rho;
        for (momentum, v) in self.momentum.iter_mut().zip(velocity) {
            momentum[i] = rho * v;
        }
        self.energy[i] = self.eos.total_energy(rho, velocity, pressure);
    }

    /// Primitive variables `(rho, velocity, pressure)` of one cell.
    pub fn primitive(&self, i: usize) -> (f64, [f64; 3], f64) {
        let rho = self.rho[i].max(1e-12);
        let v = [
            self.momentum[0][i] / rho,
            self.momentum[1][i] / rho,
            self.momentum[2][i] / rho,
        ];
        let mom = [
            self.momentum[0][i],
            self.momentum[1][i],
            self.momentum[2][i],
        ];
        let p = self.eos.pressure_cons(self.rho[i], mom, self.energy[i]);
        (self.rho[i], v, p)
    }

    /// Total mass in the domain.
    pub fn total_mass(&self) -> f64 {
        let cell_volume = self.dx[0] * self.dx[1] * self.dx[2];
        self.rho.iter().sum::<f64>() * cell_volume
    }

    /// Total energy in the domain.
    pub fn total_energy(&self) -> f64 {
        let cell_volume = self.dx[0] * self.dx[1] * self.dx[2];
        self.energy.iter().sum::<f64>() * cell_volume
    }

    /// Largest signal speed in the domain (|u| + c over all axes), used for
    /// the CFL condition.
    pub fn max_signal_speed(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.rho.len() {
            let (rho, v, p) = self.primitive(i);
            let c = self.eos.sound_speed(rho, p);
            for vk in v {
                max = max.max(vk.abs() + c);
            }
        }
        max
    }

    /// Whether every cell holds finite, physically admissible values.
    pub fn is_physical(&self) -> bool {
        self.rho.iter().all(|r| r.is_finite() && *r > 0.0)
            && self.energy.iter().all(|e| e.is_finite())
            && self
                .momentum
                .iter()
                .all(|m| m.iter().all(|v| v.is_finite()))
    }

    /// Extract a named primitive field as an `f32` scalar field for the
    /// visualization pipeline.
    pub fn field(&self, variable: HydroVariable) -> ScalarField {
        let mut out = ScalarField::zeros(self.dims);
        out.spacing = [self.dx[0] as f32, self.dx[1] as f32, self.dx[2] as f32];
        for i in 0..self.rho.len() {
            let (rho, v, p) = self.primitive(i);
            out.data[i] = match variable {
                HydroVariable::Density => rho as f32,
                HydroVariable::Pressure => p as f32,
                HydroVariable::VelocityMagnitude => {
                    ((v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()) as f32
                }
                HydroVariable::Energy => self.energy[i] as f32,
            };
        }
        out
    }

    /// Package the standard variable set into a `VolumeContainer` for the
    /// data-source node to cache (the paper's periodically cached datasets).
    pub fn to_container(&self) -> VolumeContainer {
        let mut c = VolumeContainer::new(self.cycle, self.time);
        c.push("density", self.field(HydroVariable::Density));
        c.push("pressure", self.field(HydroVariable::Pressure));
        c.push("velocity", self.field(HydroVariable::VelocityMagnitude));
        c
    }
}

/// The primitive variables exposed to the visualization pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HydroVariable {
    /// Mass density.
    Density,
    /// Gas pressure.
    Pressure,
    /// Speed (magnitude of the velocity).
    VelocityMagnitude,
    /// Total energy density.
    Energy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_state_is_quiescent_and_physical() {
        let s = HydroState::uniform(Dims::new(8, 4, 2), IdealGas::default());
        assert!(s.is_physical());
        let (rho, v, p) = s.primitive(s.index(3, 2, 1));
        assert!((rho - 1.0).abs() < 1e-12);
        assert_eq!(v, [0.0; 3]);
        assert!((p - 1.0).abs() < 1e-12);
        // Quiescent signal speed equals the sound speed.
        assert!((s.max_signal_speed() - s.eos.sound_speed(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn primitive_round_trip() {
        let mut s = HydroState::uniform(Dims::cube(4), IdealGas::new(1.4));
        let i = s.index(1, 2, 3);
        s.set_primitive(i, 2.5, [0.4, -0.1, 0.2], 3.0);
        let (rho, v, p) = s.primitive(i);
        assert!((rho - 2.5).abs() < 1e-12);
        assert!((v[0] - 0.4).abs() < 1e-12);
        assert!((v[1] + 0.1).abs() < 1e-12);
        assert!((p - 3.0).abs() < 1e-12);
    }

    #[test]
    fn conserved_totals_scale_with_cell_volume() {
        let s = HydroState::uniform(Dims::cube(10), IdealGas::default());
        // Domain is the unit cube, so total mass is the mean density = 1.
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
        assert!(s.total_energy() > 0.0);
    }

    #[test]
    fn field_extraction_matches_primitives() {
        let mut s = HydroState::uniform(Dims::cube(4), IdealGas::default());
        let i = s.index(2, 1, 0);
        s.set_primitive(i, 4.0, [3.0, 0.0, 4.0], 2.0);
        let rho = s.field(HydroVariable::Density);
        let speed = s.field(HydroVariable::VelocityMagnitude);
        let p = s.field(HydroVariable::Pressure);
        assert!((rho.data[i] - 4.0).abs() < 1e-5);
        assert!((speed.data[i] - 5.0).abs() < 1e-5);
        assert!((p.data[i] - 2.0).abs() < 1e-5);
        let energy = s.field(HydroVariable::Energy);
        assert!(energy.data[i] > 0.0);
    }

    #[test]
    fn container_packaging_includes_standard_variables() {
        let s = HydroState::uniform(Dims::cube(4), IdealGas::default());
        let c = s.to_container();
        assert_eq!(c.variable_names(), vec!["density", "pressure", "velocity"]);
        assert_eq!(c.cycle, 0);
        assert!(c.nbytes() > 0);
    }

    #[test]
    fn unphysical_states_are_detected() {
        let mut s = HydroState::uniform(Dims::cube(2), IdealGas::default());
        s.rho[0] = -1.0;
        assert!(!s.is_physical());
        let mut t = HydroState::uniform(Dims::cube(2), IdealGas::default());
        t.energy[3] = f64::NAN;
        assert!(!t.is_physical());
    }
}
