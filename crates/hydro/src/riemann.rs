//! The HLL approximate Riemann solver used by the dimensional sweeps.
//!
//! VH1 proper uses a Lagrangian-remap PPM scheme; a first-order Godunov
//! scheme with HLL fluxes reproduces the same wave families (shock, contact,
//! rarefaction) with more numerical diffusion, which is all the steering
//! framework needs: physically plausible fields evolving over many cycles.

use crate::eos::IdealGas;
use serde::{Deserialize, Serialize};

/// One-dimensional conservative state used inside a sweep: density, normal
/// momentum, the two transverse momenta, and total energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cons1D {
    /// Mass density.
    pub rho: f64,
    /// Momentum along the sweep direction.
    pub mn: f64,
    /// First transverse momentum.
    pub mt1: f64,
    /// Second transverse momentum.
    pub mt2: f64,
    /// Total energy density.
    pub energy: f64,
}

impl Cons1D {
    /// Build from primitive variables.
    pub fn from_primitive(eos: &IdealGas, rho: f64, un: f64, ut1: f64, ut2: f64, p: f64) -> Self {
        Cons1D {
            rho,
            mn: rho * un,
            mt1: rho * ut1,
            mt2: rho * ut2,
            energy: eos.total_energy(rho, [un, ut1, ut2], p),
        }
    }

    /// Normal velocity.
    pub fn un(&self) -> f64 {
        self.mn / self.rho.max(1e-12)
    }

    /// Pressure under the given equation of state.
    pub fn pressure(&self, eos: &IdealGas) -> f64 {
        eos.pressure_cons(self.rho, [self.mn, self.mt1, self.mt2], self.energy)
    }

    /// The physical flux of this state along the sweep direction.
    pub fn flux(&self, eos: &IdealGas) -> Cons1D {
        let un = self.un();
        let p = self.pressure(eos);
        Cons1D {
            rho: self.mn,
            mn: self.mn * un + p,
            mt1: self.mt1 * un,
            mt2: self.mt2 * un,
            energy: (self.energy + p) * un,
        }
    }

    /// Component-wise linear combination `self + scale * other`.
    pub fn add_scaled(&self, other: &Cons1D, scale: f64) -> Cons1D {
        Cons1D {
            rho: self.rho + scale * other.rho,
            mn: self.mn + scale * other.mn,
            mt1: self.mt1 + scale * other.mt1,
            mt2: self.mt2 + scale * other.mt2,
            energy: self.energy + scale * other.energy,
        }
    }
}

/// The HLL numerical flux across an interface between states `left` and
/// `right`.
pub fn hll_flux(eos: &IdealGas, left: &Cons1D, right: &Cons1D) -> Cons1D {
    let ul = left.un();
    let ur = right.un();
    let pl = left.pressure(eos);
    let pr = right.pressure(eos);
    let cl = eos.sound_speed(left.rho, pl);
    let cr = eos.sound_speed(right.rho, pr);
    // Davis wave-speed estimates.
    let s_left = (ul - cl).min(ur - cr);
    let s_right = (ul + cl).max(ur + cr);
    let fl = left.flux(eos);
    let fr = right.flux(eos);
    if s_left >= 0.0 {
        fl
    } else if s_right <= 0.0 {
        fr
    } else {
        let span = (s_right - s_left).max(1e-12);
        Cons1D {
            rho: (s_right * fl.rho - s_left * fr.rho + s_left * s_right * (right.rho - left.rho))
                / span,
            mn: (s_right * fl.mn - s_left * fr.mn + s_left * s_right * (right.mn - left.mn)) / span,
            mt1: (s_right * fl.mt1 - s_left * fr.mt1 + s_left * s_right * (right.mt1 - left.mt1))
                / span,
            mt2: (s_right * fl.mt2 - s_left * fr.mt2 + s_left * s_right * (right.mt2 - left.mt2))
                / span,
            energy: (s_right * fl.energy - s_left * fr.energy
                + s_left * s_right * (right.energy - left.energy))
                / span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eos() -> IdealGas {
        IdealGas::new(1.4)
    }

    #[test]
    fn primitive_round_trip_and_flux_of_rest_state() {
        let e = eos();
        let s = Cons1D::from_primitive(&e, 1.0, 0.0, 0.0, 0.0, 1.0);
        assert!((s.pressure(&e) - 1.0).abs() < 1e-12);
        assert_eq!(s.un(), 0.0);
        let f = s.flux(&e);
        // At rest the only nonzero flux component is the pressure term.
        assert_eq!(f.rho, 0.0);
        assert!((f.mn - 1.0).abs() < 1e-12);
        assert_eq!(f.energy, 0.0);
    }

    #[test]
    fn hll_of_identical_states_is_their_physical_flux() {
        let e = eos();
        let s = Cons1D::from_primitive(&e, 1.3, 0.4, 0.1, -0.2, 0.9);
        let f = hll_flux(&e, &s, &s);
        let expected = s.flux(&e);
        assert!((f.rho - expected.rho).abs() < 1e-12);
        assert!((f.mn - expected.mn).abs() < 1e-12);
        assert!((f.energy - expected.energy).abs() < 1e-12);
    }

    #[test]
    fn supersonic_flow_upwinds_completely() {
        let e = eos();
        // Mach ~3 flow to the right: the flux must equal the left flux.
        let left = Cons1D::from_primitive(&e, 1.0, 4.0, 0.0, 0.0, 1.0);
        let right = Cons1D::from_primitive(&e, 0.1, 4.0, 0.0, 0.0, 0.1);
        let f = hll_flux(&e, &left, &right);
        let fl = left.flux(&e);
        assert!((f.rho - fl.rho).abs() < 1e-12);
        // And symmetrically for leftward supersonic flow.
        let l2 = Cons1D::from_primitive(&e, 0.1, -4.0, 0.0, 0.0, 0.1);
        let r2 = Cons1D::from_primitive(&e, 1.0, -4.0, 0.0, 0.0, 1.0);
        let f2 = hll_flux(&e, &l2, &r2);
        let fr2 = r2.flux(&e);
        assert!((f2.rho - fr2.rho).abs() < 1e-12);
    }

    #[test]
    fn sod_interface_flux_moves_mass_rightward() {
        let e = eos();
        let left = Cons1D::from_primitive(&e, 1.0, 0.0, 0.0, 0.0, 1.0);
        let right = Cons1D::from_primitive(&e, 0.125, 0.0, 0.0, 0.0, 0.1);
        let f = hll_flux(&e, &left, &right);
        assert!(f.rho > 0.0, "mass flux {}", f.rho);
        assert!(f.energy > 0.0);
    }

    #[test]
    fn add_scaled_is_componentwise() {
        let a = Cons1D {
            rho: 1.0,
            mn: 2.0,
            mt1: 3.0,
            mt2: 4.0,
            energy: 5.0,
        };
        let b = Cons1D {
            rho: 10.0,
            mn: 10.0,
            mt1: 10.0,
            mt2: 10.0,
            energy: 10.0,
        };
        let c = a.add_scaled(&b, 0.1);
        assert!((c.rho - 2.0).abs() < 1e-12);
        assert!((c.energy - 6.0).abs() < 1e-12);
    }
}
