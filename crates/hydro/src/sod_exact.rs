//! Exact solution of the Sod shock-tube problem.
//!
//! Used to validate the numerical solver: the exact Riemann solution of the
//! standard Sod initial data (left `(ρ, u, p) = (1, 0, 1)`, right
//! `(0.125, 0, 0.1)`, γ = 1.4) consists of a left rarefaction, a contact
//! discontinuity and a right-moving shock.  The star-region pressure is
//! found by Newton iteration on the standard pressure function (Toro,
//! "Riemann Solvers and Numerical Methods for Fluid Dynamics").

use serde::{Deserialize, Serialize};

/// The two constant states of a 1D Riemann problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiemannStates {
    /// Left density.
    pub rho_l: f64,
    /// Left velocity.
    pub u_l: f64,
    /// Left pressure.
    pub p_l: f64,
    /// Right density.
    pub rho_r: f64,
    /// Right velocity.
    pub u_r: f64,
    /// Right pressure.
    pub p_r: f64,
    /// Adiabatic index.
    pub gamma: f64,
}

impl RiemannStates {
    /// The standard Sod shock-tube data.
    pub fn sod() -> Self {
        RiemannStates {
            rho_l: 1.0,
            u_l: 0.0,
            p_l: 1.0,
            rho_r: 0.125,
            u_r: 0.0,
            p_r: 0.1,
            gamma: 1.4,
        }
    }
}

/// The exact solution of a Riemann problem, sampled by similarity variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactRiemann {
    states: RiemannStates,
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region velocity.
    pub u_star: f64,
}

impl ExactRiemann {
    /// Solve the Riemann problem for the star-region state.
    pub fn solve(states: RiemannStates) -> Self {
        let g = states.gamma;
        let c_l = (g * states.p_l / states.rho_l).sqrt();
        let c_r = (g * states.p_r / states.rho_r).sqrt();

        // f_K(p): velocity change across the left/right wave.
        let f = |p: f64, p_k: f64, rho_k: f64, c_k: f64| -> f64 {
            if p > p_k {
                // Shock.
                let a_k = 2.0 / ((g + 1.0) * rho_k);
                let b_k = (g - 1.0) / (g + 1.0) * p_k;
                (p - p_k) * (a_k / (p + b_k)).sqrt()
            } else {
                // Rarefaction.
                2.0 * c_k / (g - 1.0) * ((p / p_k).powf((g - 1.0) / (2.0 * g)) - 1.0)
            }
        };
        let total = |p: f64| {
            f(p, states.p_l, states.rho_l, c_l)
                + f(p, states.p_r, states.rho_r, c_r)
                + (states.u_r - states.u_l)
        };
        // Newton iteration with a numerical derivative, started from the
        // arithmetic mean pressure.
        let mut p = 0.5 * (states.p_l + states.p_r);
        for _ in 0..60 {
            let fp = total(p);
            let h = 1e-7 * p.max(1e-7);
            let dfdp = (total(p + h) - fp) / h;
            let step = fp / dfdp;
            p = (p - step).max(1e-10);
            if step.abs() < 1e-12 {
                break;
            }
        }
        let u_star = 0.5 * (states.u_l + states.u_r)
            + 0.5 * (f(p, states.p_r, states.rho_r, c_r) - f(p, states.p_l, states.rho_l, c_l));
        ExactRiemann {
            states,
            p_star: p,
            u_star,
        }
    }

    /// Sample the exact solution at position `x` (diaphragm at `x0`) and
    /// time `t`, returning `(rho, u, p)`.
    pub fn sample(&self, x: f64, x0: f64, t: f64) -> (f64, f64, f64) {
        if t <= 0.0 {
            // Degenerate similarity variable: return the initial data.
            return if x < x0 {
                (self.states.rho_l, self.states.u_l, self.states.p_l)
            } else {
                (self.states.rho_r, self.states.u_r, self.states.p_r)
            };
        }
        let s = (x - x0) / t;
        let st = &self.states;
        let g = st.gamma;
        let c_l = (g * st.p_l / st.rho_l).sqrt();
        let c_r = (g * st.p_r / st.rho_r).sqrt();
        let p_star = self.p_star;
        let u_star = self.u_star;

        if s <= u_star {
            // Left of the contact.
            if p_star > st.p_l {
                // Left shock.
                let sl = st.u_l
                    - c_l
                        * ((g + 1.0) / (2.0 * g) * p_star / st.p_l + (g - 1.0) / (2.0 * g)).sqrt();
                if s <= sl {
                    (st.rho_l, st.u_l, st.p_l)
                } else {
                    let rho = st.rho_l
                        * ((p_star / st.p_l + (g - 1.0) / (g + 1.0))
                            / ((g - 1.0) / (g + 1.0) * p_star / st.p_l + 1.0));
                    (rho, u_star, p_star)
                }
            } else {
                // Left rarefaction.
                let c_star = c_l * (p_star / st.p_l).powf((g - 1.0) / (2.0 * g));
                let head = st.u_l - c_l;
                let tail = u_star - c_star;
                if s <= head {
                    (st.rho_l, st.u_l, st.p_l)
                } else if s >= tail {
                    let rho = st.rho_l * (p_star / st.p_l).powf(1.0 / g);
                    (rho, u_star, p_star)
                } else {
                    // Inside the fan.
                    let u = 2.0 / (g + 1.0) * (c_l + (g - 1.0) / 2.0 * st.u_l + s);
                    let c = 2.0 / (g + 1.0) * (c_l + (g - 1.0) / 2.0 * (st.u_l - s));
                    let rho = st.rho_l * (c / c_l).powf(2.0 / (g - 1.0));
                    let p = st.p_l * (c / c_l).powf(2.0 * g / (g - 1.0));
                    (rho, u, p)
                }
            }
        } else {
            // Right of the contact.
            if p_star > st.p_r {
                // Right shock.
                let sr = st.u_r
                    + c_r
                        * ((g + 1.0) / (2.0 * g) * p_star / st.p_r + (g - 1.0) / (2.0 * g)).sqrt();
                if s >= sr {
                    (st.rho_r, st.u_r, st.p_r)
                } else {
                    let rho = st.rho_r
                        * ((p_star / st.p_r + (g - 1.0) / (g + 1.0))
                            / ((g - 1.0) / (g + 1.0) * p_star / st.p_r + 1.0));
                    (rho, u_star, p_star)
                }
            } else {
                // Right rarefaction.
                let c_star = c_r * (p_star / st.p_r).powf((g - 1.0) / (2.0 * g));
                let head = st.u_r + c_r;
                let tail = u_star + c_star;
                if s >= head {
                    (st.rho_r, st.u_r, st.p_r)
                } else if s <= tail {
                    let rho = st.rho_r * (p_star / st.p_r).powf(1.0 / g);
                    (rho, u_star, p_star)
                } else {
                    let u = 2.0 / (g + 1.0) * (-c_r + (g - 1.0) / 2.0 * st.u_r + s);
                    let c = 2.0 / (g + 1.0) * (c_r - (g - 1.0) / 2.0 * (st.u_r - s));
                    let rho = st.rho_r * (c / c_r).powf(2.0 / (g - 1.0));
                    let p = st.p_r * (c / c_r).powf(2.0 * g / (g - 1.0));
                    (rho, u, p)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_star_state_matches_published_values() {
        // Toro reports p* = 0.30313, u* = 0.92745 for the Sod problem.
        let exact = ExactRiemann::solve(RiemannStates::sod());
        assert!((exact.p_star - 0.30313).abs() < 1e-3, "p* {}", exact.p_star);
        assert!((exact.u_star - 0.92745).abs() < 1e-3, "u* {}", exact.u_star);
    }

    #[test]
    fn far_field_states_are_undisturbed() {
        let exact = ExactRiemann::solve(RiemannStates::sod());
        let (rho, u, p) = exact.sample(0.01, 0.5, 0.2);
        assert!((rho - 1.0).abs() < 1e-12);
        assert_eq!(u, 0.0);
        assert!((p - 1.0).abs() < 1e-12);
        let (rho_r, u_r, p_r) = exact.sample(0.99, 0.5, 0.2);
        assert!((rho_r - 0.125).abs() < 1e-12);
        assert_eq!(u_r, 0.0);
        assert!((p_r - 0.1).abs() < 1e-12);
    }

    #[test]
    fn contact_discontinuity_separates_densities_at_equal_pressure() {
        let exact = ExactRiemann::solve(RiemannStates::sod());
        let t = 0.2;
        let x_contact = 0.5 + exact.u_star * t;
        let left = exact.sample(x_contact - 0.01, 0.5, t);
        let right = exact.sample(x_contact + 0.01, 0.5, t);
        // Pressure and velocity are continuous across the contact, density
        // is not.
        assert!((left.2 - right.2).abs() < 1e-9);
        assert!((left.1 - right.1).abs() < 1e-9);
        assert!(left.0 > right.0 + 0.1);
    }

    #[test]
    fn solution_profile_is_monotone_in_pressure_from_left_to_right() {
        let exact = ExactRiemann::solve(RiemannStates::sod());
        let t = 0.2;
        let samples: Vec<f64> = (0..100)
            .map(|i| exact.sample(i as f64 / 99.0, 0.5, t).2)
            .collect();
        // Pressure decreases monotonically from the left state to the right
        // state for the Sod problem.
        assert!(samples.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        assert!((samples[0] - 1.0).abs() < 1e-9);
        assert!((samples[99] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_time_returns_initial_discontinuity() {
        let exact = ExactRiemann::solve(RiemannStates::sod());
        let (rho_l, _, _) = exact.sample(0.4, 0.5, 0.0);
        let (rho_r, _, _) = exact.sample(0.6, 0.5, 0.0);
        assert!((rho_l - 1.0).abs() < 1e-12);
        assert!((rho_r - 0.125).abs() < 1e-12);
    }
}
