//! Adaptive pipeline re-mapping: the monitor half of the control plane.
//!
//! The paper maps the visualization pipeline onto the WAN using *measured*
//! bandwidths and latencies (the inputs to Eqs. 9–10) — once.  If cross
//! traffic ramps up or a link degrades mid-session, the "optimal" loop
//! silently goes stale.  This crate closes that loop:
//!
//! * [`detector::ChangePointDetector`] — per-link drift detection over the
//!   passive [`ricsa_transport::telemetry::FlowTelemetry`] stream, with a
//!   configurable relative-drift threshold and hysteresis so measurement
//!   jitter never triggers re-mapping thrash;
//! * [`monitor::AdaptMonitor`] — ingests telemetry for the links the loop
//!   currently exercises, maintains a live network estimate (the
//!   calibration graph with bandwidths rescaled by observed goodput
//!   ratios and delays rescaled by passive-RTT ratios — queueing
//!   inflation detects degradations goodput cannot see), and, once a
//!   change point is confirmed on either signal, decides via a
//!   warm-started re-solve ([`ricsa_pipemap::dp::optimize_warm`])
//!   whether the predicted win clears the re-map margin.
//!
//! The monitor is deliberately simulator-agnostic: it sees only telemetry
//! snapshots and virtual timestamps, so it can be unit-tested without a
//! network and reused against real measurements.  Executing the resulting
//! migration (quiesce at a frame boundary, hand off state, resume without
//! losing or duplicating a frame) is `ricsa-core::adapt`'s job; DESIGN.md
//! §8 documents the whole control plane.

#![deny(missing_docs)]

pub mod detector;
pub mod monitor;

pub use detector::{ChangePoint, ChangePointDetector, DetectorConfig};
pub use monitor::{
    AdaptConfig, AdaptMonitor, Decision, DecisionRecord, LinkEstimate, SIGNAL_GOODPUT, SIGNAL_RTT,
};
