//! Change-point detection with hysteresis.
//!
//! A link estimate drifts for two very different reasons: measurement
//! jitter (burst/sleep pacing, ACK timing, cross-traffic noise) and a real
//! capacity change.  The detector separates them with two rules:
//!
//! * a **relative drift threshold** — a sample only *arms* the detector
//!   when it deviates from the tracked baseline by more than
//!   `drift_threshold` (relative);
//! * **hysteresis** — the deviation must persist for `hysteresis`
//!   consecutive samples before a [`ChangePoint`] is confirmed.  A single
//!   outlier resets the streak, so jitter can never trigger re-mapping
//!   thrash.
//!
//! While un-armed, the baseline slowly tracks the smoothed signal, so
//! benign drift inside the threshold band is absorbed instead of
//! accumulating into a false positive.

use serde::{Deserialize, Serialize};

/// Detector tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Relative deviation from the baseline that arms the detector
    /// (e.g. `0.3` = ±30 %).
    pub drift_threshold: f64,
    /// Consecutive deviating samples required to confirm a change point.
    pub hysteresis: u32,
    /// EWMA weight applied to incoming samples in `(0, 1]`.
    pub alpha: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            drift_threshold: 0.3,
            hysteresis: 2,
            alpha: 0.5,
        }
    }
}

/// A confirmed change: the level the signal left and the level it reached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// The baseline before the change.
    pub old_level: f64,
    /// The smoothed level after the change (the new baseline).
    pub new_level: f64,
}

impl ChangePoint {
    /// `new_level / old_level` — the scale factor the observed quantity
    /// changed by (guarded against a degenerate zero baseline).
    pub fn scale(&self) -> f64 {
        self.new_level / self.old_level.max(1e-12)
    }
}

/// Streaming change-point detector for one scalar signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangePointDetector {
    config: DetectorConfig,
    /// Smoothed signal (None until the first sample).
    ewma: Option<f64>,
    /// Level the detector currently considers "normal".
    baseline: Option<f64>,
    /// Consecutive samples beyond the threshold.
    streak: u32,
}

impl ChangePointDetector {
    /// A detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        ChangePointDetector {
            config,
            ewma: None,
            baseline: None,
            streak: 0,
        }
    }

    /// A detector whose baseline is pre-seeded to an expected level (e.g.
    /// a calibrated link delay) instead of being learned from the first
    /// sample.  The first observation is then immediately comparable: a
    /// signal already deviating from the expectation arms the detector at
    /// sample one, where a cold detector would silently adopt the deviant
    /// level as the norm.  A non-finite or non-positive seed falls back to
    /// a cold start.
    pub fn with_baseline(config: DetectorConfig, baseline: f64) -> Self {
        ChangePointDetector {
            config,
            ewma: None,
            baseline: (baseline.is_finite() && baseline > 0.0).then_some(baseline),
            streak: 0,
        }
    }

    /// The current baseline level, if established.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// The current smoothed signal, if any sample has arrived.
    pub fn level(&self) -> Option<f64> {
        self.ewma
    }

    /// Feed one sample; returns a confirmed [`ChangePoint`] when the
    /// deviation has persisted for the configured hysteresis.
    pub fn observe(&mut self, sample: f64) -> Option<ChangePoint> {
        if !(sample.is_finite() && sample >= 0.0) {
            return None;
        }
        let alpha = self.config.alpha.clamp(1e-3, 1.0);
        let ewma = match self.ewma {
            None => sample,
            Some(prev) => alpha * sample + (1.0 - alpha) * prev,
        };
        self.ewma = Some(ewma);
        let baseline = match self.baseline {
            None => {
                // First sample establishes the baseline.
                self.baseline = Some(ewma);
                return None;
            }
            Some(b) => b,
        };
        let drift = (ewma - baseline).abs() / baseline.max(1e-12);
        if drift > self.config.drift_threshold {
            self.streak += 1;
            if self.streak >= self.config.hysteresis.max(1) {
                self.streak = 0;
                // Re-lock onto the new regime at the confirming sample:
                // leaving the EWMA mid-convergence would keep drifting away
                // from the just-set baseline and re-confirm the same change.
                self.ewma = Some(sample);
                self.baseline = Some(sample);
                return Some(ChangePoint {
                    old_level: baseline,
                    new_level: sample,
                });
            }
        } else {
            // In-band sample: reset the streak and let the baseline track
            // slow benign drift.
            self.streak = 0;
            self.baseline = Some((1.0 - alpha * 0.25) * baseline + alpha * 0.25 * ewma);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(threshold: f64, hysteresis: u32) -> ChangePointDetector {
        ChangePointDetector::new(DetectorConfig {
            drift_threshold: threshold,
            hysteresis,
            alpha: 0.6,
        })
    }

    #[test]
    fn jitter_inside_the_band_never_confirms() {
        let mut d = detector(0.3, 2);
        // ±10 % noise around 100 for a long stretch.
        for i in 0..200 {
            let sample = 100.0 + if i % 2 == 0 { 10.0 } else { -10.0 };
            assert_eq!(d.observe(sample), None, "sample {i} falsely confirmed");
        }
        let b = d.baseline().unwrap();
        assert!((b - 100.0).abs() < 15.0);
    }

    #[test]
    fn step_change_confirms_after_hysteresis_and_only_once() {
        let mut d = detector(0.3, 2);
        for _ in 0..5 {
            assert_eq!(d.observe(100.0), None);
        }
        // Collapse to 10: first deviating sample arms, second confirms.
        assert_eq!(d.observe(10.0), None);
        let cp = d.observe(10.0).expect("second deviating sample confirms");
        assert!(cp.old_level > 60.0);
        assert!(cp.new_level < 40.0);
        assert!(cp.scale() < 0.5);
        // Steady at the new level: no further confirmations.
        for _ in 0..20 {
            assert_eq!(d.observe(10.0), None);
        }
        // Recovery back to 100 confirms again.
        assert_eq!(d.observe(100.0), None);
        assert!(d.observe(100.0).is_some());
    }

    #[test]
    fn single_outlier_is_absorbed_by_hysteresis() {
        let mut d = detector(0.3, 2);
        for _ in 0..5 {
            d.observe(100.0);
        }
        assert_eq!(d.observe(5.0), None, "outlier arms but must not confirm");
        // Back in band before the streak completes: nothing fires. The
        // EWMA needs a couple of in-band samples to pull back inside the
        // threshold after the outlier dented it.
        for i in 0..20 {
            assert_eq!(d.observe(100.0), None, "post-outlier sample {i}");
        }
    }

    #[test]
    fn seeded_baseline_detects_deviation_in_the_very_first_samples() {
        let config = DetectorConfig {
            drift_threshold: 0.3,
            hysteresis: 2,
            alpha: 0.6,
        };
        // The signal is already inflated when the first sample arrives: a
        // cold detector would adopt 0.2 as normal and never fire; the
        // seeded one arms at sample one and confirms at two.
        let mut d = ChangePointDetector::with_baseline(config, 0.02);
        assert_eq!(d.baseline(), Some(0.02));
        assert_eq!(d.observe(0.2), None, "hysteresis still applies");
        let cp = d.observe(0.2).expect("deviation from the seed confirms");
        assert!((cp.old_level - 0.02).abs() < 1e-12);
        assert!(cp.scale() > 5.0);
        // A healthy signal near the seed is absorbed, never confirmed.
        let mut h = ChangePointDetector::with_baseline(config, 0.024);
        for i in 0..50 {
            assert_eq!(h.observe(0.02), None, "healthy sample {i} confirmed");
        }
        // Degenerate seeds fall back to a cold start.
        assert_eq!(
            ChangePointDetector::with_baseline(config, f64::NAN).baseline(),
            None
        );
        assert_eq!(
            ChangePointDetector::with_baseline(config, 0.0).baseline(),
            None
        );
    }

    #[test]
    fn garbage_samples_are_ignored() {
        let mut d = detector(0.3, 1);
        assert_eq!(d.observe(f64::NAN), None);
        assert_eq!(d.observe(-5.0), None);
        assert_eq!(d.level(), None);
        d.observe(50.0);
        assert_eq!(d.level(), Some(50.0));
    }
}
