//! The adaptive re-mapping monitor.
//!
//! [`AdaptMonitor`] owns the controller's *live network estimate*: the
//! calibration graph the session was planned on, with each link rescaled
//! by ratios of currently observed telemetry to the baseline established
//! when the link first carried traffic.  Two independent signals feed it:
//!
//! * **goodput → bandwidth**: the link's bandwidth estimate is the
//!   calibrated bandwidth times `current / baseline` goodput.  Passive
//!   telemetry measures *change* precisely but absolute capacity poorly
//!   (protocol overhead, the target-goodput cap), so the ratio form keeps
//!   the estimate on the calibration scale — and works in both
//!   directions: a degradation shows as goodput collapsing below
//!   baseline, a recovery as it returning to the (target-capped)
//!   baseline.
//! * **RTT → delay** (on by default, [`AdaptConfig::rtt_signal`]): the
//!   link's delay estimate is the calibrated delay times
//!   `current / baseline` smoothed RTT from the transport's passive
//!   Karn-filtered probes.  Queueing-delay inflation is an *earlier*
//!   degradation signal than goodput collapse: a flow that does not
//!   saturate its link keeps its goodput (still below the shrunken
//!   capacity) while its RTT inflates immediately, so an RTT change point
//!   can confirm degradations the goodput detector sees frames later —
//!   or never.  The `adapt_sweep` bench toggles this axis to measure the
//!   detection-latency win.
//!
//! Each signal runs its own per-link [`ChangePointDetector`]; when either
//! confirms a drift, the monitor re-prices the current mapping on the
//! updated graph and runs a **warm-started** re-solve ([`optimize_warm`])
//! with the current mapping as incumbent.  Only a predicted improvement
//! beyond the configured re-map margin — and outside the cooldown window
//! — produces a [`Decision::Remap`]; everything else is an explicit,
//! recorded *keep*.  The decision trace is fully deterministic for a
//! deterministic input stream: both ratio estimates derive from virtual-
//! time telemetry only, records carry the triggering signal name, and no
//! record contains a wall clock (solve timing is reported separately via
//! [`AdaptMonitor::solve_timing`]).

use crate::detector::{ChangePointDetector, DetectorConfig};
use ricsa_pipemap::delay::{evaluate_mapping, validate_mapping, Mapping};
use ricsa_pipemap::dp::{optimize_warm, optimize_with, DpOptions, OptimizedMapping};
use ricsa_pipemap::network::NetGraph;
use ricsa_pipemap::pipeline::Pipeline;
use ricsa_transport::telemetry::FlowTelemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Per-link drift detection (threshold, hysteresis, smoothing).
    pub detector: DetectorConfig,
    /// Required relative improvement of the re-solved mapping's predicted
    /// delay over the current mapping's before a re-map is worth its
    /// migration disruption (e.g. `0.05` = 5 %).
    pub remap_margin: f64,
    /// Minimum virtual time between re-maps, seconds — a second line of
    /// defence against thrash beyond the detector's hysteresis.
    pub cooldown_s: f64,
    /// DP options used for re-solves (relay semantics by default, so
    /// sparse generated WANs stay feasible).
    pub options: DpOptions,
    /// Lower clamp on the bandwidth scale estimate, so one pathological
    /// sample cannot drive a link estimate to zero.
    pub min_scale: f64,
    /// Also run a change-point detector on the passive RTT signal and
    /// rescale the link's *delay* estimate by the confirmed RTT ratio.
    /// Queueing-delay inflation often confirms frames before the goodput
    /// EWMA leaves its drift band (and is the only signal at all on
    /// under-utilized flows), so this is the earlier-detection axis the
    /// adaptation sweep measures.  On by default.
    pub rtt_signal: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            detector: DetectorConfig::default(),
            remap_margin: 0.05,
            cooldown_s: 1.0,
            options: DpOptions::relayed(),
            min_scale: 0.01,
            rtt_signal: true,
        }
    }
}

/// Upper clamp on the RTT-derived delay scale, so one pathological probe
/// cannot price a link out of every mapping forever.
const MAX_DELAY_SCALE: f64 = 1e3;

/// [`DecisionRecord::signal`] value for goodput-triggered evaluations.
pub const SIGNAL_GOODPUT: &str = "goodput";

/// [`DecisionRecord::signal`] value for RTT-triggered evaluations.
pub const SIGNAL_RTT: &str = "rtt";

/// The live estimate the monitor maintains for one directed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkEstimate {
    /// Calibration bandwidth (bytes/s) from the planning graph.
    pub calibrated_bandwidth: f64,
    /// Goodput level when the link first carried loop traffic, bytes/s.
    pub baseline_goodput: f64,
    /// Most recent confirmed goodput level, bytes/s.
    pub current_goodput: f64,
    /// `current / baseline` — the scale applied to the calibrated
    /// bandwidth (clamped by [`AdaptConfig::min_scale`]).
    pub scale: f64,
    /// Smoothed RTT when the link first reported a resolved probe,
    /// seconds (0 until the first RTT sample arrives).
    pub baseline_rtt_s: f64,
    /// Most recent smoothed RTT, seconds.
    pub current_rtt_s: f64,
    /// `current_rtt / baseline_rtt` at the last confirmed RTT change —
    /// the scale applied to the calibrated link *delay* (1 until a
    /// change confirms; clamped to `[min_scale, 1e3]`).
    pub delay_scale: f64,
}

/// What the monitor concluded at one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Keep the current mapping (no confirmed change, cooldown, mapping
    /// unchanged, or the win was below the margin).
    Keep,
    /// Migrate to a new mapping.
    Remap(Box<OptimizedMapping>),
}

/// One row of the deterministic decision trace.
///
/// Every field derives from virtual-time telemetry — no wall clocks —
/// so a seeded run reproduces the trace byte-for-byte (warm-solve wall
/// time is reported separately by [`AdaptMonitor::solve_timing`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Virtual time of the evaluation, seconds.
    pub at: f64,
    /// The link whose confirmed change triggered the evaluation.
    pub trigger: (usize, usize),
    /// Which telemetry signal confirmed the change: [`SIGNAL_GOODPUT`]
    /// (bandwidth rescale) or [`SIGNAL_RTT`] (delay rescale).
    pub signal: String,
    /// Scale factor of the confirmed change (`new / old` level of the
    /// triggering signal — goodput ratio or RTT ratio).
    pub change_scale: f64,
    /// Predicted delay of the current mapping on the updated estimate.
    pub current_predicted: f64,
    /// Predicted delay of the re-solved mapping (`None` if the re-solve
    /// found no feasible mapping).
    pub resolved_predicted: Option<f64>,
    /// Whether the monitor decided to re-map.
    pub remapped: bool,
    /// Why (`"margin"`, `"cooldown"`, `"same-mapping"`, `"infeasible"`,
    /// `"remap"`).
    pub reason: String,
}

/// The monitor: live estimates, change detection and re-map decisions.
pub struct AdaptMonitor {
    config: AdaptConfig,
    pipeline: Pipeline,
    /// The calibration view the session was planned on (never mutated).
    base_graph: NetGraph,
    /// The live estimated view (bandwidths rescaled by telemetry).
    graph: NetGraph,
    source: usize,
    destination: usize,
    current: Mapping,
    current_predicted: f64,
    detectors: BTreeMap<(usize, usize), ChangePointDetector>,
    rtt_detectors: BTreeMap<(usize, usize), ChangePointDetector>,
    estimates: BTreeMap<(usize, usize), LinkEstimate>,
    /// Confirmed change points not yet evaluated:
    /// `(link, scale, signal)`.
    pending: Vec<((usize, usize), f64, &'static str)>,
    last_remap_at: f64,
    decisions: Vec<DecisionRecord>,
    /// Wall-clock microseconds spent in warm re-solves (reported
    /// separately from the deterministic trace).
    solve_us_total: f64,
    solves: u64,
}

impl AdaptMonitor {
    /// Plan the initial mapping on `graph` and build a monitor around it.
    /// Returns `None` when no feasible mapping exists at all.
    pub fn new(
        pipeline: Pipeline,
        graph: NetGraph,
        source: usize,
        destination: usize,
        config: AdaptConfig,
    ) -> Option<AdaptMonitor> {
        let (initial, _) = optimize_with(&pipeline, &graph, source, destination, &config.options);
        let initial = initial?;
        Some(AdaptMonitor::with_initial(
            pipeline,
            graph,
            source,
            destination,
            config,
            initial,
        ))
    }

    /// Build a monitor around an already-planned mapping (the session
    /// planner has usually just solved this exact instance; re-solving it
    /// would be pure waste).  `initial` must be the optimum of
    /// `(pipeline, graph, source, destination)` under `config.options`.
    pub fn with_initial(
        pipeline: Pipeline,
        graph: NetGraph,
        source: usize,
        destination: usize,
        config: AdaptConfig,
        initial: OptimizedMapping,
    ) -> AdaptMonitor {
        let mut monitor = AdaptMonitor {
            config,
            pipeline,
            base_graph: graph.clone(),
            graph,
            source,
            destination,
            current: initial.mapping,
            current_predicted: initial.delay.total,
            detectors: BTreeMap::new(),
            rtt_detectors: BTreeMap::new(),
            estimates: BTreeMap::new(),
            pending: Vec::new(),
            last_remap_at: f64::NEG_INFINITY,
            decisions: Vec::new(),
            solve_us_total: 0.0,
            solves: 0,
        };
        monitor.seed_route_rtt_baselines();
        monitor
    }

    /// Seed RTT baselines for links of the deployed route that have no
    /// RTT history yet, from the calibration graph (expected RTT ≈ 2 ×
    /// the one-way calibrated delay).
    ///
    /// Without this, a link that never carried loop traffic starts with a
    /// *cold* detector that adopts the first post-deployment RTT sample
    /// as its norm — so a route that is already degraded when traffic
    /// lands on it (a second network event inside the re-map cooldown)
    /// could never be detected.  With the seed, healthy traffic sits
    /// inside the drift band and the baseline adapts smoothly, while
    /// inflated traffic arms the detector from the first sample.
    fn seed_route_rtt_baselines(&mut self) {
        if !self.config.rtt_signal {
            return;
        }
        let links: Vec<(usize, usize)> = self
            .current
            .path
            .windows(2)
            .map(|pair| (pair[0], pair[1]))
            .collect();
        for (from, to) in links {
            let Some(link) = self.base_graph.link_between(from, to) else {
                continue;
            };
            let expected_rtt = 2.0 * link.delay;
            if !(expected_rtt.is_finite() && expected_rtt > 0.0) {
                continue;
            }
            let entry = self.estimates.entry((from, to)).or_insert(LinkEstimate {
                calibrated_bandwidth: link.bandwidth,
                baseline_goodput: 0.0,
                current_goodput: 0.0,
                scale: 1.0,
                baseline_rtt_s: 0.0,
                current_rtt_s: 0.0,
                delay_scale: 1.0,
            });
            if entry.baseline_rtt_s <= 0.0 {
                entry.baseline_rtt_s = expected_rtt;
            }
            let config = self.config.detector;
            self.rtt_detectors
                .entry((from, to))
                .or_insert_with(|| ChangePointDetector::with_baseline(config, expected_rtt));
        }
    }

    /// The mapping the monitor currently considers deployed.
    pub fn current(&self) -> &Mapping {
        &self.current
    }

    /// Predicted delay of the current mapping (on the estimate as of the
    /// last evaluation).
    pub fn current_predicted(&self) -> f64 {
        self.current_predicted
    }

    /// The live per-link estimates.
    pub fn estimates(&self) -> &BTreeMap<(usize, usize), LinkEstimate> {
        &self.estimates
    }

    /// The deterministic decision trace.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Total wall-clock microseconds spent in warm re-solves and how many
    /// ran (not part of the decision trace — wall time is not
    /// deterministic).
    pub fn solve_timing(&self) -> (f64, u64) {
        (self.solve_us_total, self.solves)
    }

    /// Ingest one telemetry snapshot for the directed link `from → to`
    /// (topology node indices).  Updates the live estimate and runs the
    /// link's change-point detectors: goodput always, RTT when
    /// [`AdaptConfig::rtt_signal`] is on and the flow resolved at least
    /// one passive probe.
    pub fn ingest(&mut self, from: usize, to: usize, telemetry: &FlowTelemetry) {
        if !telemetry.has_signal() {
            return;
        }
        let key = (from, to);
        let (calibrated_bandwidth, calibrated_delay) = self
            .base_graph
            .link_between(from, to)
            .map(|l| (l.bandwidth, l.delay))
            .unwrap_or((0.0, 0.0));
        let sample = telemetry.goodput_bps;
        let entry = self.estimates.entry(key).or_insert(LinkEstimate {
            calibrated_bandwidth,
            baseline_goodput: sample,
            current_goodput: sample,
            scale: 1.0,
            baseline_rtt_s: 0.0,
            current_rtt_s: 0.0,
            delay_scale: 1.0,
        });
        if entry.baseline_goodput <= 0.0 {
            // The entry may pre-exist from RTT-baseline seeding (a route
            // deployed before carrying traffic): the first real goodput
            // sample still establishes that baseline.
            entry.baseline_goodput = sample;
        }
        entry.current_goodput = sample;
        let mut confirmed_any = false;
        if let Some(cp) = self
            .detectors
            .entry(key)
            .or_insert_with(|| ChangePointDetector::new(self.config.detector))
            .observe(sample)
        {
            // Scale relative to the link's *first* baseline, so repeated
            // changes compose correctly (baseline_goodput never moves).
            let scale =
                (cp.new_level / entry.baseline_goodput.max(1e-12)).max(self.config.min_scale);
            entry.scale = scale;
            self.pending.push((key, cp.scale(), SIGNAL_GOODPUT));
            confirmed_any = true;
        }
        if self.config.rtt_signal && telemetry.rtt_samples > 0 {
            let rtt = telemetry.rtt_s;
            if entry.baseline_rtt_s <= 0.0 {
                entry.baseline_rtt_s = rtt;
            }
            entry.current_rtt_s = rtt;
            if let Some(cp) = self
                .rtt_detectors
                .entry(key)
                .or_insert_with(|| ChangePointDetector::new(self.config.detector))
                .observe(rtt)
            {
                // Queueing inflation rescales the *delay* estimate, again
                // against the link's first baseline so changes never stack.
                let delay_scale = (cp.new_level / entry.baseline_rtt_s.max(1e-12))
                    .clamp(self.config.min_scale, MAX_DELAY_SCALE);
                entry.delay_scale = delay_scale;
                self.pending.push((key, cp.scale(), SIGNAL_RTT));
                confirmed_any = true;
            }
        }
        if confirmed_any {
            self.graph.set_measured(
                from,
                to,
                (entry.calibrated_bandwidth * entry.scale).max(1.0),
                (calibrated_delay * entry.delay_scale).max(0.0),
            );
        }
    }

    /// Evaluate pending confirmed changes at virtual time `now`: re-price
    /// the current mapping, warm re-solve, and decide.  Appends one
    /// [`DecisionRecord`] per call that had a pending change.
    pub fn evaluate(&mut self, now: f64) -> Decision {
        let Some((trigger, change_scale, signal)) = self.pending.pop() else {
            return Decision::Keep;
        };
        self.pending.clear(); // one evaluation covers all pending changes

        // Re-price the deployed mapping on the updated estimate.  A
        // mapping invalidated outright (should not happen for bandwidth
        // rescales) forces a re-map attempt.
        let current_predicted =
            if validate_mapping(&self.pipeline, &self.graph, &self.current).is_ok() {
                evaluate_mapping(&self.pipeline, &self.graph, &self.current).total
            } else {
                f64::INFINITY
            };
        self.current_predicted = current_predicted;

        if now - self.last_remap_at < self.config.cooldown_s {
            self.decisions.push(DecisionRecord {
                at: now,
                trigger,
                signal: signal.into(),
                change_scale,
                current_predicted,
                resolved_predicted: None,
                remapped: false,
                reason: "cooldown".into(),
            });
            // Defer, don't drop: the detector has re-locked its baseline at
            // the new level, so this change would never re-confirm — the
            // evaluation must retry once the cooldown expires or the loop
            // would sit on a stale mapping forever.
            self.pending.push((trigger, change_scale, signal));
            return Decision::Keep;
        }

        let started = std::time::Instant::now();
        let (resolved, _) = optimize_warm(
            &self.pipeline,
            &self.graph,
            self.source,
            self.destination,
            &self.config.options,
            &self.current,
        );
        self.solve_us_total += started.elapsed().as_secs_f64() * 1e6;
        self.solves += 1;

        let Some(resolved) = resolved else {
            self.decisions.push(DecisionRecord {
                at: now,
                trigger,
                signal: signal.into(),
                change_scale,
                current_predicted,
                resolved_predicted: None,
                remapped: false,
                reason: "infeasible".into(),
            });
            return Decision::Keep;
        };
        let resolved_predicted = resolved.delay.total;
        let improved = resolved_predicted < current_predicted * (1.0 - self.config.remap_margin);
        let same = resolved.mapping == self.current;
        let remap = improved && !same;
        self.decisions.push(DecisionRecord {
            at: now,
            trigger,
            signal: signal.into(),
            change_scale,
            current_predicted,
            resolved_predicted: Some(resolved_predicted),
            remapped: remap,
            reason: if remap {
                "remap".into()
            } else if same {
                "same-mapping".into()
            } else {
                "margin".into()
            },
        });
        if remap {
            self.current = resolved.mapping.clone();
            self.current_predicted = resolved_predicted;
            self.last_remap_at = now;
            // The migration may route traffic over links with no RTT
            // history; seed their baselines so a degradation already
            // present on the new route is detectable immediately.
            self.seed_route_rtt_baselines();
            Decision::Remap(Box::new(resolved))
        } else {
            Decision::Keep
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-route graph: src → midA → dst (fast) and src → midB → dst
    /// (slower), plus a thin direct link.
    fn two_route_graph() -> (Pipeline, NetGraph) {
        let pipeline = Pipeline::new(
            "iso",
            8e6,
            vec![
                ricsa_pipemap::pipeline::ModuleSpec::new("filter", 2e-9, 8e6),
                ricsa_pipemap::pipeline::ModuleSpec::new("extract", 1e-8, 1e6),
                ricsa_pipemap::pipeline::ModuleSpec::new("render", 5e-9, 2e5).requiring_graphics(),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, false);
        let mid_a = g.add_node("midA", 6.0, true);
        let mid_b = g.add_node("midB", 5.0, true);
        let dst = g.add_node("dst", 1.5, true);
        g.add_bidirectional(src, mid_a, 40e6, 0.008);
        g.add_bidirectional(mid_a, dst, 40e6, 0.008);
        g.add_bidirectional(src, mid_b, 25e6, 0.012);
        g.add_bidirectional(mid_b, dst, 25e6, 0.012);
        g.add_bidirectional(src, dst, 5e6, 0.030);
        (pipeline, g)
    }

    fn telemetry(goodput: f64) -> FlowTelemetry {
        FlowTelemetry {
            flow_id: 1,
            goodput_bps: goodput,
            rtt_s: 0.02,
            goodput_samples: 1,
            last_update_s: 1.0,
            ..FlowTelemetry::default()
        }
    }

    fn monitor() -> AdaptMonitor {
        let (pipeline, graph) = two_route_graph();
        AdaptMonitor::new(pipeline, graph, 0, 3, AdaptConfig::default())
            .expect("two-route graph admits a mapping")
    }

    #[test]
    fn initial_mapping_uses_the_fast_route() {
        let m = monitor();
        assert!(
            m.current().path.contains(&1),
            "expected midA in {:?}",
            m.current().path
        );
    }

    #[test]
    fn degradation_on_the_active_route_triggers_a_remap_to_the_other() {
        let mut m = monitor();
        // Establish baselines on the active route (~link goodput).
        for t in 0..3 {
            m.ingest(0, 1, &telemetry(35e6));
            m.ingest(1, 3, &telemetry(35e6));
            assert_eq!(m.evaluate(t as f64), Decision::Keep);
        }
        // src→midA collapses to a tenth; hysteresis (2) needs two samples.
        m.ingest(0, 1, &telemetry(3.5e6));
        assert_eq!(m.evaluate(10.0), Decision::Keep, "one sample must not trip");
        m.ingest(0, 1, &telemetry(3.5e6));
        match m.evaluate(11.0) {
            Decision::Remap(opt) => {
                assert!(
                    opt.mapping.path.contains(&2),
                    "expected midB in {:?}",
                    opt.mapping.path
                );
                assert!(!opt.mapping.path.contains(&1));
            }
            Decision::Keep => panic!("confirmed collapse must trigger a remap"),
        }
        let last = m.decisions().last().unwrap();
        assert!(last.remapped);
        assert_eq!(last.reason, "remap");
        assert_eq!(last.trigger, (0, 1));
        assert!(last.change_scale < 0.5);
        let (us, solves) = m.solve_timing();
        assert!(solves >= 1 && us >= 0.0);
    }

    #[test]
    fn jitter_never_remaps_and_marginal_wins_are_rejected() {
        let mut m = monitor();
        for i in 0..30 {
            let noise = if i % 2 == 0 { 1.05 } else { 0.95 };
            m.ingest(0, 1, &telemetry(35e6 * noise));
            m.ingest(1, 3, &telemetry(35e6 * noise));
            assert_eq!(m.evaluate(i as f64), Decision::Keep);
        }
        assert!(
            m.decisions().is_empty(),
            "jitter produced decisions: {:?}",
            m.decisions()
        );
        // A confirmed collapse on a link the mapping does not use: the
        // evaluation runs, but re-solving re-picks the current mapping —
        // an explicit recorded keep, not a remap.
        let mut m2 = monitor();
        for _ in 0..3 {
            m2.ingest(0, 2, &telemetry(20e6));
        }
        m2.ingest(0, 2, &telemetry(2e6));
        m2.ingest(0, 2, &telemetry(2e6));
        assert_eq!(m2.evaluate(50.0), Decision::Keep);
        let rec = m2.decisions().last().expect("confirmed change is recorded");
        assert!(!rec.remapped);
        assert_eq!(rec.trigger, (0, 2));
        assert!(rec.reason == "same-mapping" || rec.reason == "margin");
    }

    #[test]
    fn rtt_inflation_with_flat_goodput_triggers_detection() {
        // The flow does not saturate its link, so a capacity drop leaves
        // goodput flat — only queueing delay (RTT) inflates.  The RTT
        // detector must confirm; with the signal off, nothing may fire.
        let sample = |rtt: f64| FlowTelemetry {
            flow_id: 1,
            goodput_bps: 20e6,
            rtt_s: rtt,
            goodput_samples: 1,
            rtt_samples: 1,
            last_update_s: 1.0,
            ..FlowTelemetry::default()
        };
        let mut m = monitor();
        for t in 0..3 {
            m.ingest(0, 1, &sample(0.02));
            assert_eq!(m.evaluate(t as f64), Decision::Keep);
        }
        // RTT inflates 10×; hysteresis (2) needs two deviating samples.
        m.ingest(0, 1, &sample(0.2));
        m.evaluate(10.0);
        assert!(m.decisions().is_empty(), "one sample must not confirm");
        m.ingest(0, 1, &sample(0.2));
        m.evaluate(11.0);
        let rec = m.decisions().last().expect("RTT inflation must confirm");
        assert_eq!(rec.signal, SIGNAL_RTT);
        assert_eq!(rec.trigger, (0, 1));
        assert!(rec.change_scale > 2.0, "scale {}", rec.change_scale);
        // The live estimate rescaled the link's delay, not its bandwidth.
        let est = &m.estimates()[&(0, 1)];
        assert!(est.delay_scale > 2.0, "delay_scale {}", est.delay_scale);
        assert_eq!(est.scale, 1.0);
        // Same stream with the RTT signal disabled: no detection at all.
        let (pipeline, graph) = two_route_graph();
        let config = AdaptConfig {
            rtt_signal: false,
            ..AdaptConfig::default()
        };
        let mut off = AdaptMonitor::new(pipeline, graph, 0, 3, config).unwrap();
        for (t, rtt) in [0.02, 0.02, 0.02, 0.2, 0.2].iter().enumerate() {
            off.ingest(0, 1, &sample(*rtt));
            assert_eq!(off.evaluate(t as f64), Decision::Keep);
        }
        assert!(off.decisions().is_empty(), "{:?}", off.decisions());
    }

    #[test]
    fn post_migration_rtt_baselines_are_seeded_from_calibration() {
        // Regression (ROADMAP "RTT baselines cold after migration"): after
        // a remap, traffic lands on links that never carried loop traffic.
        // If a *second* network event has already inflated the new route's
        // RTT, a cold detector would adopt the inflated level as its norm
        // and the event would be undetectable forever.  The baseline
        // seeded from the calibration delay keeps it visible.
        let sample = |rtt: f64| FlowTelemetry {
            flow_id: 1,
            goodput_bps: 20e6,
            rtt_s: rtt,
            goodput_samples: 1,
            rtt_samples: 1,
            last_update_s: 1.0,
            ..FlowTelemetry::default()
        };
        let remapped_monitor = || {
            let (pipeline, graph) = two_route_graph();
            let config = AdaptConfig {
                cooldown_s: 5.0,
                ..AdaptConfig::default()
            };
            let mut m = AdaptMonitor::new(pipeline, graph, 0, 3, config).unwrap();
            for t in 0..3 {
                m.ingest(0, 1, &telemetry(35e6));
                m.ingest(1, 3, &telemetry(35e6));
                m.evaluate(t as f64);
            }
            // Collapse the active route's goodput to force a remap to midB.
            m.ingest(0, 1, &telemetry(3.5e6));
            m.ingest(0, 1, &telemetry(3.5e6));
            match m.evaluate(10.0) {
                Decision::Remap(opt) => assert!(opt.mapping.path.contains(&2)),
                Decision::Keep => panic!("collapse must remap"),
            }
            m
        };

        let mut m = remapped_monitor();
        // The new route's links carry seeded baselines (≈ 2 × calibrated
        // one-way delay) despite never having reported telemetry.
        let est = &m.estimates()[&(0, 2)];
        assert!(
            (est.baseline_rtt_s - 0.024).abs() < 1e-9,
            "seeded baseline, got {}",
            est.baseline_rtt_s
        );
        // Second event *inside the cooldown*: the very first RTT samples
        // from midB are already inflated.  Detection must still fire.
        m.ingest(0, 2, &sample(0.2));
        m.evaluate(11.0);
        m.ingest(0, 2, &sample(0.2));
        m.evaluate(12.0);
        let confirmed: Vec<_> = m
            .decisions()
            .iter()
            .filter(|r| r.signal == SIGNAL_RTT && r.trigger == (0, 2))
            .collect();
        assert!(
            !confirmed.is_empty(),
            "inflated RTT on the fresh route must confirm: {:?}",
            m.decisions()
        );
        assert!(confirmed[0].change_scale > 2.0);

        // Healthy traffic on the seeded route sits inside the drift band:
        // the seed must not manufacture false positives.
        let mut healthy = remapped_monitor();
        for t in 0..10 {
            healthy.ingest(0, 2, &sample(0.02));
            healthy.evaluate(11.0 + t as f64);
        }
        assert!(
            healthy
                .decisions()
                .iter()
                .all(|r| !(r.signal == SIGNAL_RTT && r.trigger == (0, 2))),
            "healthy RTT near the seed fired: {:?}",
            healthy.decisions()
        );
    }

    #[test]
    fn cooldown_blocks_back_to_back_remaps() {
        let (pipeline, graph) = two_route_graph();
        let config = AdaptConfig {
            cooldown_s: 100.0,
            ..AdaptConfig::default()
        };
        let mut m = AdaptMonitor::new(pipeline, graph, 0, 3, config).unwrap();
        for _ in 0..3 {
            m.ingest(0, 1, &telemetry(35e6));
        }
        m.ingest(0, 1, &telemetry(3.5e6));
        m.ingest(0, 1, &telemetry(3.5e6));
        assert!(matches!(m.evaluate(10.0), Decision::Remap(_)));
        // The route flips back up immediately — confirmed, but cooldown.
        m.ingest(0, 1, &telemetry(35e6));
        m.ingest(0, 1, &telemetry(35e6));
        assert_eq!(m.evaluate(12.0), Decision::Keep);
        assert_eq!(m.decisions().last().unwrap().reason, "cooldown");
        // The change was deferred, not dropped: once the cooldown expires
        // the evaluation retries (without any fresh confirmation, which
        // the re-locked detector could never provide) and re-maps back.
        match m.evaluate(200.0) {
            Decision::Remap(opt) => assert!(opt.mapping.path.contains(&1)),
            Decision::Keep => panic!("deferred change must remap after cooldown"),
        }
    }

    #[test]
    fn decision_trace_is_deterministic_and_serializable() {
        let run = || {
            let mut m = monitor();
            for t in 0..3 {
                m.ingest(0, 1, &telemetry(35e6));
                m.evaluate(t as f64);
            }
            m.ingest(0, 1, &telemetry(3.5e6));
            m.ingest(0, 1, &telemetry(3.5e6));
            m.evaluate(10.0);
            serde_json::to_string(m.decisions()).unwrap()
        };
        assert_eq!(run(), run());
    }
}
