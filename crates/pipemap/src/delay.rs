//! The end-to-end delay model (paper Eq. 2) and mapping evaluation.
//!
//! A *mapping* assigns the pipeline's processing modules, decomposed into
//! contiguous non-empty groups, to the nodes of a walk through the network
//! that starts at the data-source node and ends at the client node.  Its
//! end-to-end delay is the sum of the group computing times
//! `Σ_j c_j·m_{j-1} / p_{P[i]}` and the transfer times of the inter-group
//! messages `m(g_i) / b_{P[i],P[i+1]}` (plus each link's minimum delay,
//! which the paper neglects as small but which costs nothing to include).

use crate::network::NetGraph;
use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// A candidate placement: `path[i]` hosts the modules listed in
/// `groups[i]` (0-based module indices, contiguous and in order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// The walk through the network, starting at the data source node and
    /// ending at the client node.
    pub path: Vec<usize>,
    /// For each path node, the contiguous set of module indices it runs.
    pub groups: Vec<Vec<usize>>,
}

/// The delay of a mapping, broken down into its components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayBreakdown {
    /// Total end-to-end delay, seconds.
    pub total: f64,
    /// Time spent computing across all groups, seconds.
    pub computing: f64,
    /// Time spent transferring messages between groups, seconds.
    pub transport: f64,
}

/// Errors detected while validating a mapping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingError {
    /// The path and group lists have different lengths or are empty.
    ShapeMismatch,
    /// The modules are not a contiguous 0..n cover in order.
    ModulesNotContiguous,
    /// Two consecutive path nodes are not connected by a link.
    MissingLink {
        /// Path position of the gap.
        hop: usize,
    },
    /// A module that needs graphics was placed on a node without it.
    GraphicsInfeasible {
        /// The offending module index.
        module: usize,
        /// The node it was placed on.
        node: usize,
    },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::ShapeMismatch => write!(f, "path and groups have mismatched shapes"),
            MappingError::ModulesNotContiguous => {
                write!(f, "groups do not cover the modules contiguously in order")
            }
            MappingError::MissingLink { hop } => {
                write!(f, "no link between path hop {hop} and {}", hop + 1)
            }
            MappingError::GraphicsInfeasible { module, node } => {
                write!(f, "module {module} needs graphics but node {node} has none")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// Validate a mapping against a pipeline and network.
pub fn validate_mapping(
    pipeline: &Pipeline,
    graph: &NetGraph,
    mapping: &Mapping,
) -> Result<(), MappingError> {
    if mapping.path.is_empty() || mapping.path.len() != mapping.groups.len() {
        return Err(MappingError::ShapeMismatch);
    }
    // Modules must appear contiguously, in order, exactly once.
    let flat: Vec<usize> = mapping.groups.iter().flatten().copied().collect();
    let expected: Vec<usize> = (0..pipeline.message_count()).collect();
    if flat != expected {
        return Err(MappingError::ModulesNotContiguous);
    }
    for (g, group) in mapping.groups.iter().enumerate() {
        // Empty groups are allowed: an empty first group means the source
        // only serves raw data, an empty middle group is a relay hop, and an
        // empty final group means the finished image is delivered to the
        // client without further processing.
        for &module in group {
            if pipeline.modules[module].needs_graphics && !graph.node(mapping.path[g]).has_graphics
            {
                return Err(MappingError::GraphicsInfeasible {
                    module,
                    node: mapping.path[g],
                });
            }
        }
    }
    for hop in 0..mapping.path.len() - 1 {
        if graph
            .link_between(mapping.path[hop], mapping.path[hop + 1])
            .is_none()
        {
            return Err(MappingError::MissingLink { hop });
        }
    }
    Ok(())
}

/// Evaluate the end-to-end delay (Eq. 2) of a mapping.
///
/// # Panics
/// Panics if the mapping is structurally invalid; call
/// [`validate_mapping`] first when handling untrusted input.
pub fn evaluate_mapping(
    pipeline: &Pipeline,
    graph: &NetGraph,
    mapping: &Mapping,
) -> DelayBreakdown {
    validate_mapping(pipeline, graph, mapping).expect("invalid mapping");
    let mut computing = 0.0;
    let mut transport = 0.0;
    // The size of the message currently flowing down the pipeline: the raw
    // dataset until the first module runs, then each module's output.
    let mut current_bytes = pipeline.source_bytes;
    for (g, group) in mapping.groups.iter().enumerate() {
        let node = mapping.path[g];
        let power = graph.node(node).power;
        for &module in group {
            computing += pipeline.processing_time(module, power);
            current_bytes = pipeline.modules[module].output_bytes;
        }
        // Transfer of the current message to the next path node.
        if g + 1 < mapping.path.len() {
            let link = graph
                .link_between(mapping.path[g], mapping.path[g + 1])
                .expect("validated above");
            transport += link.transfer_time(current_bytes);
        }
    }
    DelayBreakdown {
        total: computing + transport,
        computing,
        transport,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetGraph;
    use crate::pipeline::ModuleSpec;

    fn setup() -> (Pipeline, NetGraph) {
        let pipeline = Pipeline::new(
            "test",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 1_000_000.0),
                ModuleSpec::new("extract", 1e-7, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, false);
        let mid = g.add_node("mid", 8.0, true);
        let dst = g.add_node("dst", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.01);
        g.add_bidirectional(mid, dst, 2e6, 0.01);
        g.add_bidirectional(src, dst, 0.25e6, 0.03);
        (pipeline, g)
    }

    #[test]
    fn client_server_delay_matches_hand_computation() {
        let (p, g) = setup();
        // All modules at the destination; raw data crosses the slow link.
        let mapping = Mapping {
            path: vec![0, 2],
            groups: vec![vec![], vec![0, 1, 2]],
        };
        let d = evaluate_mapping(&p, &g, &mapping);
        // Transport: 1 MB over 0.25 MB/s + 30 ms = 4.03 s.
        assert!((d.transport - 4.03).abs() < 1e-9);
        // Computing at power 1: 1e-8*1e6 + 1e-7*1e6 + 5e-8*2e5 = 0.01+0.1+0.01.
        assert!((d.computing - 0.12).abs() < 1e-9);
        assert!((d.total - (d.computing + d.transport)).abs() < 1e-12);
    }

    #[test]
    fn offloading_to_the_fast_middle_node_beats_client_server() {
        let (p, g) = setup();
        let client_server = Mapping {
            path: vec![0, 2],
            groups: vec![vec![], vec![0, 1, 2]],
        };
        let offloaded = Mapping {
            path: vec![0, 1, 2],
            groups: vec![vec![0], vec![1], vec![2]],
        };
        let a = evaluate_mapping(&p, &g, &client_server);
        let b = evaluate_mapping(&p, &g, &offloaded);
        assert!(b.total < a.total, "offloaded {b:?} vs client-server {a:?}");
    }

    #[test]
    fn validation_catches_structural_errors() {
        let (p, g) = setup();
        let bad_shape = Mapping {
            path: vec![0, 2],
            groups: vec![vec![0, 1, 2]],
        };
        assert_eq!(
            validate_mapping(&p, &g, &bad_shape),
            Err(MappingError::ShapeMismatch)
        );
        let out_of_order = Mapping {
            path: vec![0, 2],
            groups: vec![vec![1], vec![0, 2]],
        };
        assert_eq!(
            validate_mapping(&p, &g, &out_of_order),
            Err(MappingError::ModulesNotContiguous)
        );
        let graphics_on_headless = Mapping {
            path: vec![0, 2],
            groups: vec![vec![0, 1, 2], vec![]],
        };
        assert_eq!(
            validate_mapping(&p, &g, &graphics_on_headless),
            Err(MappingError::GraphicsInfeasible { module: 2, node: 0 })
        );
        // A disconnected hop.
        let mut island = NetGraph::new();
        island.add_node("a", 1.0, true);
        island.add_node("b", 1.0, true);
        let disconnected = Mapping {
            path: vec![0, 1],
            groups: vec![vec![0, 1], vec![2]],
        };
        assert_eq!(
            validate_mapping(&p, &island, &disconnected),
            Err(MappingError::MissingLink { hop: 0 })
        );
    }

    #[test]
    fn error_display_strings_are_informative() {
        let e = MappingError::GraphicsInfeasible { module: 2, node: 0 };
        assert!(e.to_string().contains("graphics"));
        assert!(MappingError::MissingLink { hop: 1 }
            .to_string()
            .contains("1"));
        assert!(MappingError::ShapeMismatch.to_string().contains("mismatch"));
        assert!(MappingError::ModulesNotContiguous
            .to_string()
            .contains("contiguous"));
    }

    #[test]
    fn relay_hops_and_trailing_delivery_are_evaluated() {
        let (p, g) = setup();
        // Render at the middle node and deliver the finished image to the
        // client over the 2 MB/s link: 50 kB / 2 MB/s + 10 ms = 35 ms of
        // extra transport for the final hop.
        let deliver = Mapping {
            path: vec![0, 1, 2],
            groups: vec![vec![], vec![0, 1, 2], vec![]],
        };
        let d = evaluate_mapping(&p, &g, &deliver);
        let first_hop = 1_000_000.0 / 1e6 + 0.01;
        let last_hop = 50_000.0 / 2e6 + 0.01;
        assert!((d.transport - (first_hop + last_hop)).abs() < 1e-9);
        // A pure relay hop re-transfers the same message.
        let relay = Mapping {
            path: vec![0, 1, 2],
            groups: vec![vec![], vec![], vec![0, 1, 2]],
        };
        let r = evaluate_mapping(&p, &g, &relay);
        assert!((r.transport - (first_hop + 1_000_000.0 / 2e6 + 0.01)).abs() < 1e-9);
    }

    #[test]
    fn single_node_mapping_has_no_transport() {
        let (p, _) = setup();
        let mut g = NetGraph::new();
        g.add_node("all", 2.0, true);
        let mapping = Mapping {
            path: vec![0],
            groups: vec![vec![0, 1, 2]],
        };
        let d = evaluate_mapping(&p, &g, &mapping);
        assert_eq!(d.transport, 0.0);
        assert!((d.computing - 0.06).abs() < 1e-9);
    }
}
