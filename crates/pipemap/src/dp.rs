//! The dynamic-programming pipeline optimizer (paper Eqs. 9–10).
//!
//! `T^j(v_i)` is the minimal total delay of mapping the first `j` messages
//! (equivalently, the first `j + 1` modules) onto a walk from the source
//! node `v_s` to node `v_i`.  The recursion either keeps module `M_{j+1}` on
//! the same node as its predecessor (inheriting `T^{j-1}(v_i)`) or pulls the
//! message `m_j` across one incoming link from a neighbour `u`
//! (`T^{j-1}(u) + m_j / b_{u,v_i}`), in both cases adding the computing time
//! `c_{j+1} · m_j / p_{v_i}`.  The answer is `T^n(v_d)`; backtracking the
//! argmin pointers yields the group decomposition and the routing path.
//! The running time is `O(n · |E|)`, which is the paper's complexity claim.
//!
//! Extensions over the paper's formulation, all noted in DESIGN.md:
//!
//! * the base case also allows placing the first processing module on the
//!   source node itself (needed to express the paper's own PC–PC
//!   experiments, where isosurface extraction runs on the data-source host);
//! * a per-module feasibility predicate (graphics capability) is enforced
//!   exactly as Section 4.5 describes ("the scenario with failed feasibility
//!   check is simply discarded");
//! * optional **dominance pruning** ([`DpOptions::prune`]) discards states
//!   that provably cannot lie on an optimal walk, without changing the
//!   optimum (DESIGN.md §6.3 gives the argument);
//! * optional **relay hops** ([`DpOptions::relay`]): between two module
//!   placements the message may traverse a chain of pure-forwarding nodes.
//!   The paper's recursion crosses exactly one link per message, so on
//!   sparse wide-area topologies (trees, transit-stub graphs) a destination
//!   more than `n` hops from the source is unreachable; the relay extension
//!   closes each DP layer under minimum-cost forwarding, which makes every
//!   connected instance feasible.  It is off by default — the default
//!   semantics stay exactly the paper's.

use crate::delay::{evaluate_mapping, validate_mapping, DelayBreakdown, Mapping};
use crate::network::{dijkstra, EdgeDir, NetGraph};
use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// Relative inflation applied to a warm-start incumbent's evaluated delay
/// before it seeds the pruner's upper bound.  The incumbent's cost and the
/// recursion's objective sum the same terms in different association
/// orders; without this slack an incumbent that *is* the optimum could
/// prune the optimal walk by an ulp.  The inflation only weakens the
/// bound, so the returned objective stays exactly the cold recursion's.
const WARM_START_SLACK: f64 = 1e-9;

/// The result of the dynamic-programming optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedMapping {
    /// The chosen mapping (path plus group decomposition).
    pub mapping: Mapping,
    /// Its predicted delay breakdown under the analytical model.
    pub delay: DelayBreakdown,
    /// The raw optimal objective value `T^n(v_d)` from the recursion (equal
    /// to `delay.total` up to floating-point round-off).
    pub objective: f64,
}

/// Options controlling the dynamic-programming solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpOptions {
    /// Enable dominance pruning.  Pruning is exact — it never changes the
    /// optimal objective — and is on by default; turn it off only for
    /// cross-checks and benchmarks.
    pub prune: bool,
    /// Allow pure-forwarding relay hops between module placements (off by
    /// default: the paper's recursion crosses exactly one link per message).
    pub relay: bool,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions {
            prune: true,
            relay: false,
        }
    }
}

impl DpOptions {
    /// Relay-extended semantics with pruning, used by the scenario sweeps
    /// whose generated WANs are too sparse for single-link message hops.
    pub fn relayed() -> Self {
        DpOptions {
            prune: true,
            relay: true,
        }
    }
}

/// Work counters reported by [`optimize_with`], used by the scaling
/// benchmarks to quantify what pruning saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpStats {
    /// States `(module, node)` whose outgoing relaxations were performed.
    pub states_expanded: u64,
    /// States discarded by the dominance bound before relaxation.
    pub states_pruned: u64,
}

/// Optimize the placement of `pipeline` onto `graph` from `source` to
/// `destination` with default options (pruning on, paper-faithful walk
/// semantics).  Returns `None` when no feasible placement exists (e.g. the
/// destination is unreachable or a graphics-requiring module cannot be
/// placed anywhere along any walk).
pub fn optimize(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
) -> Option<OptimizedMapping> {
    optimize_with(pipeline, graph, source, destination, &DpOptions::default()).0
}

/// Pruning context: lower bounds on what any completion must still pay, and
/// the cheapest known feasible completion (the upper bound).
struct Pruner {
    /// `suffix_min_proc[j]` = Σ_{k≥j} min over feasible nodes of module
    /// `k`'s processing time — a lower bound on the remaining computing.
    suffix_min_proc: Vec<f64>,
    /// `tail_at_destination[j]` = cost of running modules `j..` all on the
    /// destination (∞ if one of them is infeasible there).
    tail_at_destination: Vec<f64>,
    /// `m_floor[j]` = the smallest message the pipeline can still emit from
    /// layer `j` on (suffix minimum of the remaining message sizes plus the
    /// finished image).
    m_floor: Vec<f64>,
    /// Lazily built transport lower bounds, keyed by floor size: the
    /// shortest distance from every node to the destination where crossing
    /// a link costs `transfer_time(floor)`.  Valid because every remaining
    /// link crossing carries some message of at least that size.  Built on
    /// first use — no table exists before the upper bound turns finite,
    /// and suffix minima repeat, so only a handful are ever computed.
    lb_cache: Vec<(f64, Vec<f64>)>,
    /// Cheapest known complete feasible solution.
    upper_bound: f64,
}

impl Pruner {
    /// Build the bounds; `None` means some module is feasible nowhere (the
    /// instance has no placement at all).
    fn build(
        pipeline: &Pipeline,
        graph: &NetGraph,
        destination: usize,
        feasible: &impl Fn(usize, usize) -> bool,
    ) -> Option<Pruner> {
        let n_modules = pipeline.message_count();
        let n_nodes = graph.node_count();
        let mut suffix_min_proc = vec![0.0; n_modules + 1];
        let mut tail_at_destination = vec![0.0; n_modules + 1];
        for j in (0..n_modules).rev() {
            let min_proc = (0..n_nodes)
                .filter(|&v| feasible(j, v))
                .map(|v| pipeline.processing_time(j, graph.node(v).power))
                .fold(f64::INFINITY, f64::min);
            if !min_proc.is_finite() {
                return None;
            }
            suffix_min_proc[j] = suffix_min_proc[j + 1] + min_proc;
            tail_at_destination[j] = if feasible(j, destination) {
                tail_at_destination[j + 1]
                    + pipeline.processing_time(j, graph.node(destination).power)
            } else {
                f64::INFINITY
            };
        }
        // Smallest message that can still cross a link from layer j on:
        // the inputs of the remaining modules, plus the finished image
        // (which relay mode may still forward; including it in walk mode
        // only weakens the bound, never invalidates it).
        let trailing = pipeline
            .modules
            .last()
            .expect("pipelines are non-empty")
            .output_bytes;
        let mut m_floor = vec![trailing; n_modules + 1];
        for j in (0..n_modules).rev() {
            m_floor[j] = m_floor[j + 1].min(pipeline.input_bytes(j));
        }
        Some(Pruner {
            suffix_min_proc,
            tail_at_destination,
            m_floor,
            lb_cache: Vec::new(),
            upper_bound: f64::INFINITY,
        })
    }

    /// The transport lower-bound table for `layer`, built on first use.
    fn transport_lb(&mut self, graph: &NetGraph, destination: usize, layer: usize) -> &[f64] {
        let floor = self.m_floor[layer];
        if let Some(i) = self.lb_cache.iter().position(|(b, _)| *b == floor) {
            return &self.lb_cache[i].1;
        }
        let table = message_distance_to(graph, destination, floor);
        self.lb_cache.push((floor, table));
        &self.lb_cache.last().expect("just pushed").1
    }

    /// True when a state at `node` with modules `..layer` placed and cost
    /// `cost` provably cannot complete better than the upper bound.  The
    /// bound gets a one-part-in-10¹² slack: the upper bound sums the same
    /// terms as the recursion in a different association order, so without
    /// slack an optimal state could lose to its own completion by an ulp.
    fn dominated(
        &mut self,
        graph: &NetGraph,
        destination: usize,
        cost: f64,
        layer: usize,
        node: usize,
    ) -> bool {
        if !self.upper_bound.is_finite() {
            // Nothing can be dominated yet; skip building any bound table.
            return false;
        }
        let upper_bound = self.upper_bound;
        let slack = 1e-12 * upper_bound.abs().max(1.0);
        let suffix = self.suffix_min_proc[layer];
        cost + suffix + self.transport_lb(graph, destination, layer)[node] > upper_bound + slack
    }

    /// Tighten the upper bound with the completion "finish every remaining
    /// module on the destination" from the given destination cost.
    fn observe_destination(&mut self, cost_at_destination: f64, next_layer: usize) {
        if cost_at_destination.is_finite() {
            self.upper_bound = self
                .upper_bound
                .min(cost_at_destination + self.tail_at_destination[next_layer]);
        }
    }
}

/// Shortest distance from every node to `destination` along directed links,
/// where crossing a link costs `transfer_time(bytes)`: a lower bound on
/// the remaining transport cost of any completion whose messages are all
/// at least `bytes` large.
fn message_distance_to(graph: &NetGraph, destination: usize, bytes: f64) -> Vec<f64> {
    let mut init = vec![f64::INFINITY; graph.node_count()];
    init[destination] = 0.0;
    let (dist, _) = dijkstra(
        graph,
        &init,
        EdgeDir::Incoming,
        |link| link.transfer_time(bytes),
        |_, _| true,
    );
    dist
}

/// [`optimize`] with explicit [`DpOptions`], also returning work counters.
///
/// # Dominance pruning
///
/// With `options.prune` the solver maintains an upper bound `U` (the
/// cheapest known *feasible completion*: reach the destination after some
/// prefix of modules and run every remaining module there) and a per-state
/// lower bound `L(j, v) = cost(j, v) + Σ_{k>j} min_u proc(k, u) +
/// transport_lb(j, v → v_d)` (shortest path to the destination charging
/// each link the smallest message the pipeline can still emit).  Both
/// suffix terms truly lower-bound any
/// completion's remaining cost, so a state with `L > U` cannot lie on an
/// optimal walk and is discarded before its relaxations.  Pruning uses a
/// strict inequality, so at least one optimal solution always survives and
/// the returned objective is **identical** to the unpruned recursion's (the
/// cross-check tests assert this exactly).
pub fn optimize_with(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
    options: &DpOptions,
) -> (Option<OptimizedMapping>, DpStats) {
    solve(pipeline, graph, source, destination, options, None)
}

/// Warm-started re-solve: the previous solution (`incumbent`) seeds the
/// pruner's upper bound, so the re-solve discards provably-worse states
/// from the very first layer instead of waiting for the recursion to reach
/// the destination.  The incumbent is first re-validated and re-priced on
/// the *current* graph — a stale mapping that is no longer feasible simply
/// contributes no bound.  The optimum returned is identical to a cold
/// [`optimize_with`] (the bound only discards states that cannot beat a
/// known feasible solution); what changes is the work, which the adaptive
/// re-mapping controller and the sweep records quantify.
pub fn optimize_warm(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
    options: &DpOptions,
    incumbent: &Mapping,
) -> (Option<OptimizedMapping>, DpStats) {
    solve(
        pipeline,
        graph,
        source,
        destination,
        options,
        Some(incumbent),
    )
}

fn solve(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
    options: &DpOptions,
    incumbent: Option<&Mapping>,
) -> (Option<OptimizedMapping>, DpStats) {
    let mut stats = DpStats::default();
    let n_modules = pipeline.message_count();
    let n_nodes = graph.node_count();
    if n_modules == 0 || source >= n_nodes || destination >= n_nodes {
        return (None, stats);
    }
    let feasible = |module: usize, node: usize| -> bool {
        !pipeline.modules[module].needs_graphics || graph.node(node).has_graphics
    };
    let mut pruner = if options.prune {
        match Pruner::build(pipeline, graph, destination, &feasible) {
            Some(p) => Some(p),
            // Some module is feasible nowhere: no placement exists.
            None => return (None, stats),
        }
    } else {
        None
    };
    if let (Some(p), Some(m)) = (pruner.as_mut(), incumbent) {
        // Warm start: a still-feasible incumbent is a known complete
        // solution, so its (slightly inflated, see WARM_START_SLACK)
        // evaluated delay upper-bounds the optimum from the outset.  The
        // incumbent must lie in the *searched* space: a relay mapping
        // (forwarding hops = empty groups beyond the source) can be
        // cheaper than every pure walk, and seeding a walk search with it
        // would prune away all walk solutions.
        let in_space = options.relay || m.groups.iter().skip(1).all(|g| !g.is_empty());
        if in_space && validate_mapping(pipeline, graph, m).is_ok() {
            let cost = evaluate_mapping(pipeline, graph, m).total;
            if cost.is_finite() {
                p.upper_bound = cost * (1.0 + WARM_START_SLACK);
            }
        }
    }
    if options.relay {
        relay_dp(
            pipeline,
            graph,
            source,
            destination,
            &feasible,
            pruner.as_mut(),
            &mut stats,
        )
    } else {
        walk_dp(
            pipeline,
            graph,
            source,
            destination,
            &feasible,
            pruner.as_mut(),
            &mut stats,
        )
    }
}

/// The paper-faithful recursion: each message crosses at most one link.
fn walk_dp(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
    feasible: &impl Fn(usize, usize) -> bool,
    mut pruner: Option<&mut Pruner>,
    stats: &mut DpStats,
) -> (Option<OptimizedMapping>, DpStats) {
    let n_modules = pipeline.message_count();
    let n_nodes = graph.node_count();

    // cost[j][v] = T^{j+1}(v) (0-based j over modules).
    let mut cost = vec![vec![f64::INFINITY; n_nodes]; n_modules];
    // parent[j][v] = node hosting module j-1 in the optimal sub-solution.
    let mut parent = vec![vec![usize::MAX; n_nodes]; n_modules];

    // Base case: place the first processing module either on the source
    // itself or on a direct neighbour of the source.
    for v in 0..n_nodes {
        if !feasible(0, v) {
            continue;
        }
        let proc = pipeline.processing_time(0, graph.node(v).power);
        if v == source {
            cost[0][v] = proc;
            parent[0][v] = source;
        } else if let Some(link) = graph.link_between(source, v) {
            cost[0][v] = proc + link.transfer_time(pipeline.source_bytes);
            parent[0][v] = source;
        }
    }
    if let Some(p) = pruner.as_deref_mut() {
        p.observe_destination(cost[0][destination], 1);
    }

    // Recursion over the remaining modules, relaxing push-style out of each
    // live predecessor state so pruned states cost nothing.
    for j in 1..n_modules {
        let message_bytes = pipeline.input_bytes(j);
        let proc: Vec<f64> = (0..n_nodes)
            .map(|v| pipeline.processing_time(j, graph.node(v).power))
            .collect();
        let module_feasible: Vec<bool> = (0..n_nodes).map(|v| feasible(j, v)).collect();
        let (prev_layers, rest) = cost.split_at_mut(j);
        let prev = &prev_layers[j - 1];
        let next = &mut rest[0];
        for u in 0..n_nodes {
            if !prev[u].is_finite() {
                continue;
            }
            if let Some(p) = pruner.as_deref_mut() {
                if p.dominated(graph, destination, prev[u], j, u) {
                    stats.states_pruned += 1;
                    continue;
                }
            }
            stats.states_expanded += 1;
            // Sub-case 1: inherit (module j stays on the same node as j-1).
            if module_feasible[u] {
                let candidate = prev[u] + proc[u];
                if candidate < next[u] {
                    next[u] = candidate;
                    parent[j][u] = u;
                }
            }
            // Sub-case 2: push the message across an outgoing link.
            for &lid in graph.outgoing_links(u) {
                let link = graph.link(lid);
                let v = link.to;
                if !module_feasible[v] {
                    continue;
                }
                let candidate = prev[u] + proc[v] + link.transfer_time(message_bytes);
                if candidate < next[v] {
                    next[v] = candidate;
                    parent[j][v] = u;
                }
            }
        }
        if let Some(p) = pruner.as_deref_mut() {
            p.observe_destination(cost[j][destination], j + 1);
        }
    }

    let objective = cost[n_modules - 1][destination];
    if !objective.is_finite() {
        return (None, *stats);
    }

    // Backtrack the node hosting each module.
    let mut hosts = vec![0usize; n_modules];
    hosts[n_modules - 1] = destination;
    for j in (1..n_modules).rev() {
        hosts[j - 1] = parent[j][hosts[j]];
    }
    let first_parent = parent[0][hosts[0]];

    // Convert the per-module host list into a path + group decomposition.
    let mut path = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    if first_parent != hosts[0] {
        // The source serves the raw data but runs no module.
        path.push(first_parent);
        groups.push(Vec::new());
    }
    for (module, &host) in hosts.iter().enumerate() {
        if path.last() != Some(&host) {
            path.push(host);
            groups.push(Vec::new());
        }
        groups
            .last_mut()
            .expect("path is non-empty by construction")
            .push(module);
    }

    finish(pipeline, graph, path, groups, objective, stats)
}

/// The relay-extended recursion: before each module placement (and after
/// the last one) the current message may traverse a minimum-cost chain of
/// pure-forwarding nodes.  Implemented as a multi-source Dijkstra closure
/// of each DP layer with edge weight `transfer_time(message)`.
fn relay_dp(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
    feasible: &impl Fn(usize, usize) -> bool,
    mut pruner: Option<&mut Pruner>,
    stats: &mut DpStats,
) -> (Option<OptimizedMapping>, DpStats) {
    let n_modules = pipeline.message_count();
    let n_nodes = graph.node_count();

    let mut cost: Vec<Vec<f64>> = Vec::with_capacity(n_modules);
    // relay_parent[j][v]: predecessor of v in the relay chain that carried
    // message m_j towards module j's host (MAX at the chain's seed).
    let mut relay_parent: Vec<Vec<usize>> = Vec::with_capacity(n_modules);

    let mut seed = vec![f64::INFINITY; n_nodes];
    seed[source] = 0.0;
    for j in 0..n_modules {
        let (closed, rp) = relay_closure(
            graph,
            &seed,
            pipeline.input_bytes(j),
            j,
            destination,
            pruner.as_deref_mut(),
            stats,
        );
        let mut layer = vec![f64::INFINITY; n_nodes];
        for v in 0..n_nodes {
            if feasible(j, v) && closed[v].is_finite() {
                layer[v] = closed[v] + pipeline.processing_time(j, graph.node(v).power);
            }
        }
        if let Some(p) = pruner.as_deref_mut() {
            p.observe_destination(layer[destination], j + 1);
        }
        seed = layer.clone();
        cost.push(layer);
        relay_parent.push(rp);
    }
    // The finished image may still be forwarded to the client.
    let trailing_bytes = pipeline
        .modules
        .last()
        .expect("pipelines are non-empty")
        .output_bytes;
    let (final_closure, final_rp) = relay_closure(
        graph,
        &cost[n_modules - 1],
        trailing_bytes,
        n_modules,
        destination,
        pruner,
        stats,
    );
    let objective = final_closure[destination];
    if !objective.is_finite() {
        return (None, *stats);
    }

    // Backtrack: find each module's host by walking the relay chains from
    // the destination backwards.
    let chain_of = |rp: &[usize], end: usize| -> Vec<usize> {
        let mut chain = vec![end];
        let mut at = end;
        while rp[at] != usize::MAX {
            at = rp[at];
            chain.push(at);
        }
        chain.reverse(); // seed .. end
        chain
    };
    let mut hosts = vec![0usize; n_modules];
    hosts[n_modules - 1] = chain_of(&final_rp, destination)[0];
    for j in (1..n_modules).rev() {
        hosts[j - 1] = chain_of(&relay_parent[j], hosts[j])[0];
    }

    // Assemble the walk: relay nodes carry empty groups.
    let mut path: Vec<usize> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let push_node = |path: &mut Vec<usize>, groups: &mut Vec<Vec<usize>>, node: usize| {
        if path.last() != Some(&node) {
            path.push(node);
            groups.push(Vec::new());
        }
    };
    for (j, &host) in hosts.iter().enumerate() {
        for node in chain_of(&relay_parent[j], host) {
            push_node(&mut path, &mut groups, node);
        }
        groups
            .last_mut()
            .expect("path is non-empty by construction")
            .push(j);
    }
    for node in chain_of(&final_rp, destination) {
        push_node(&mut path, &mut groups, node);
    }

    finish(pipeline, graph, path, groups, objective, stats)
}

/// Multi-source Dijkstra closure: starting from per-node costs `seed`,
/// the cheapest cost of having the message of size `bytes` available at
/// every node after any chain of forwarding hops.  `layer` is the index of
/// the next module to place (used by the pruning bound).
fn relay_closure(
    graph: &NetGraph,
    seed: &[f64],
    bytes: f64,
    layer: usize,
    destination: usize,
    mut pruner: Option<&mut Pruner>,
    stats: &mut DpStats,
) -> (Vec<f64>, Vec<usize>) {
    // Extraction-time dominance: any solution whose relay chain passes
    // through a settled node at this layer costs at least its distance plus
    // the remaining lower bounds, so a dominated node need not relax out —
    // chains through it are provably not optimal.
    dijkstra(
        graph,
        seed,
        EdgeDir::Outgoing,
        |link| link.transfer_time(bytes),
        |u, d| {
            if let Some(p) = pruner.as_deref_mut() {
                if p.dominated(graph, destination, d, layer, u) {
                    stats.states_pruned += 1;
                    return false;
                }
            }
            stats.states_expanded += 1;
            true
        },
    )
}

/// Shared tail: wrap a backtracked walk into an [`OptimizedMapping`].
fn finish(
    pipeline: &Pipeline,
    graph: &NetGraph,
    path: Vec<usize>,
    groups: Vec<Vec<usize>>,
    objective: f64,
    stats: &mut DpStats,
) -> (Option<OptimizedMapping>, DpStats) {
    let mapping = Mapping { path, groups };
    let delay = evaluate_mapping(pipeline, graph, &mapping);
    (
        Some(OptimizedMapping {
            mapping,
            delay,
            objective,
        }),
        *stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::validate_mapping;
    use crate::pipeline::ModuleSpec;
    use crate::testutil::{random_instance, XorShift};

    /// The three-stage pipeline and three-node network from the delay tests:
    /// a weak source, a powerful middle node, and the client.
    fn setup() -> (Pipeline, NetGraph) {
        let pipeline = Pipeline::new(
            "test",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 1_000_000.0),
                ModuleSpec::new("extract", 1e-7, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, false);
        let mid = g.add_node("mid", 8.0, true);
        let dst = g.add_node("dst", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.01);
        g.add_bidirectional(mid, dst, 2e6, 0.01);
        g.add_bidirectional(src, dst, 0.25e6, 0.03);
        (pipeline, g)
    }

    #[test]
    fn optimizer_finds_a_valid_mapping_ending_at_the_client() {
        let (p, g) = setup();
        let opt = optimize(&p, &g, 0, 2).expect("a feasible mapping exists");
        assert_eq!(*opt.mapping.path.first().unwrap(), 0);
        assert_eq!(*opt.mapping.path.last().unwrap(), 2);
        assert!((opt.objective - opt.delay.total).abs() < 1e-6);
        // The optimizer must not be worse than the plain client/server
        // mapping it could always fall back to.
        let client_server = Mapping {
            path: vec![0, 2],
            groups: vec![vec![], vec![0, 1, 2]],
        };
        let cs = evaluate_mapping(&p, &g, &client_server);
        assert!(opt.delay.total <= cs.total + 1e-9);
    }

    #[test]
    fn optimizer_uses_the_powerful_intermediate_node_for_heavy_extraction() {
        // With the default (cheap) extraction the optimizer correctly keeps
        // everything on the source/client pair; once extraction is made
        // compute-heavy, offloading to the 8x-faster cluster must win.
        let (_, g) = setup();
        let heavy = Pipeline::new(
            "heavy",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 1_000_000.0),
                ModuleSpec::new("extract", 1e-6, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let opt = optimize(&heavy, &g, 0, 2).unwrap();
        assert!(
            opt.mapping.path.contains(&1),
            "expected the mid cluster in {:?}",
            opt.mapping.path
        );
        // The extraction module specifically must sit on the cluster.
        let extract_group = opt
            .mapping
            .groups
            .iter()
            .position(|grp| grp.contains(&1))
            .unwrap();
        assert_eq!(opt.mapping.path[extract_group], 1);
    }

    #[test]
    fn graphics_constraint_keeps_rendering_off_headless_nodes() {
        let (p, mut g) = setup();
        // Make even the destination headless except for a fourth node that
        // is the only graphics-capable host.
        let gpu = g.add_node("gpu", 2.0, true);
        g.add_bidirectional(2, gpu, 5e6, 0.005);
        // Destination remains node 2 (has graphics), so rendering may stay
        // there; but if we strip its graphics the render module must move to
        // the gpu node, which is not the destination -> the image is still
        // delivered to node 2 only if the model allows a trailing transfer,
        // which the DP (faithful to the paper) does not.  So instead verify
        // the optimizer simply refuses infeasible placements: make every
        // node except `gpu` headless and ask for destination `gpu`.
        let mut strict = NetGraph::new();
        let s = strict.add_node("src", 1.0, false);
        let m = strict.add_node("mid", 8.0, false);
        let d = strict.add_node("gpu-client", 1.0, true);
        strict.add_bidirectional(s, m, 1e6, 0.01);
        strict.add_bidirectional(m, d, 2e6, 0.01);
        let opt = optimize(&p, &strict, s, d).unwrap();
        // The render module (index 2) must be placed on the destination.
        let render_group = opt
            .mapping
            .groups
            .iter()
            .position(|grp| grp.contains(&2))
            .unwrap();
        assert_eq!(opt.mapping.path[render_group], d);
        let _ = gpu;
    }

    #[test]
    fn infeasible_instances_return_none() {
        let (p, _) = setup();
        // No graphics anywhere: the render module cannot be placed.
        let mut g = NetGraph::new();
        let a = g.add_node("a", 1.0, false);
        let b = g.add_node("b", 1.0, false);
        g.add_bidirectional(a, b, 1e6, 0.01);
        assert!(optimize(&p, &g, a, b).is_none());
        // Unreachable destination.
        let mut g2 = NetGraph::new();
        let a2 = g2.add_node("a", 1.0, true);
        let b2 = g2.add_node("b", 1.0, true);
        let _ = (a2, b2);
        assert!(optimize(&p, &g2, 0, 1).is_none());
        // Out-of-range nodes.
        let (_, g3) = setup();
        assert!(optimize(&p, &g3, 0, 99).is_none());
        // The same instances are infeasible in every option combination.
        for prune in [false, true] {
            for relay in [false, true] {
                let opts = DpOptions { prune, relay };
                assert!(optimize_with(&p, &g, a, b, &opts).0.is_none());
                assert!(optimize_with(&p, &g2, 0, 1, &opts).0.is_none());
            }
        }
    }

    #[test]
    fn single_node_network_runs_everything_locally() {
        let p = Pipeline::new(
            "local",
            1e6,
            vec![
                ModuleSpec::new("a", 1e-8, 1e5),
                ModuleSpec::new("b", 1e-8, 1e4),
            ],
        );
        let mut g = NetGraph::new();
        let only = g.add_node("only", 2.0, true);
        let opt = optimize(&p, &g, only, only).unwrap();
        assert_eq!(opt.mapping.path, vec![only]);
        assert_eq!(opt.delay.transport, 0.0);
        assert!((opt.delay.computing - (1e-8 * 1e6 + 1e-8 * 1e5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn faster_direct_link_wins_when_intermediate_offers_no_benefit() {
        // If the client is as powerful as the intermediate node and the
        // direct link is fast, the optimal mapping is plain client/server.
        let p = Pipeline::new(
            "cheap",
            1e6,
            vec![
                ModuleSpec::new("a", 1e-9, 1e6),
                ModuleSpec::new("b", 1e-9, 1e5),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, true);
        let mid = g.add_node("mid", 1.0, true);
        let dst = g.add_node("dst", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.05);
        g.add_bidirectional(mid, dst, 1e6, 0.05);
        g.add_bidirectional(src, dst, 100e6, 0.001);
        let opt = optimize(&p, &g, src, dst).unwrap();
        assert_eq!(opt.mapping.path, vec![src, dst]);
    }

    #[test]
    fn larger_datasets_increase_the_optimal_delay_monotonically() {
        let (_, g) = setup();
        let delays: Vec<f64> = [16e6, 64e6, 108e6]
            .iter()
            .map(|&bytes| {
                let p = Pipeline::isosurface(bytes, 2e-9, 2.5e-8, 0.35, 6e-9, 1e6);
                optimize(&p, &g, 0, 2).unwrap().delay.total
            })
            .collect();
        assert!(delays[0] < delays[1]);
        assert!(delays[1] < delays[2]);
    }

    /// Dominance pruning must never change the optimum — in either walk or
    /// relay semantics.  Seeded, so every run checks the same instances.
    #[test]
    fn pruned_dp_equals_unpruned_dp_on_random_instances() {
        for relay in [false, true] {
            let mut feasible = 0;
            let mut pruned_any = false;
            for seed in 0u64..40 {
                let mut rng = XorShift::new(seed.wrapping_add(1000));
                let n_nodes = rng.index(4, 14);
                let n_modules = rng.index(2, 7);
                let density = 0.2 + 0.7 * rng.next();
                let (pipeline, g) = random_instance(&mut rng, n_nodes, n_modules, density);
                let pruned_opts = DpOptions { prune: true, relay };
                let unpruned_opts = DpOptions {
                    prune: false,
                    relay,
                };
                let (pruned, pstats) = optimize_with(&pipeline, &g, 0, n_nodes - 1, &pruned_opts);
                let (unpruned, ustats) =
                    optimize_with(&pipeline, &g, 0, n_nodes - 1, &unpruned_opts);
                assert_eq!(ustats.states_pruned, 0);
                pruned_any |= pstats.states_pruned > 0;
                match (pruned, unpruned) {
                    (Some(p), Some(u)) => {
                        feasible += 1;
                        assert_eq!(
                            p.objective, u.objective,
                            "relay={relay} seed {seed}: pruned {} != unpruned {}",
                            p.objective, u.objective
                        );
                        assert!((p.delay.total - u.delay.total).abs() <= 1e-9 * u.delay.total);
                        assert!(validate_mapping(&pipeline, &g, &p.mapping).is_ok());
                    }
                    (None, None) => {}
                    (p, u) => panic!(
                        "relay={relay} seed {seed}: feasibility mismatch: pruned={:?} unpruned={:?}",
                        p.is_some(),
                        u.is_some()
                    ),
                }
            }
            assert!(feasible >= 30, "only {feasible}/40 instances were feasible");
            assert!(
                pruned_any,
                "relay={relay}: pruning never fired — the bound is vacuous"
            );
        }
    }

    #[test]
    fn pruning_skips_work_on_a_large_sparse_instance() {
        let mut rng = XorShift::new(77);
        let (pipeline, g) = random_instance(&mut rng, 120, 4, 0.02);
        let (pruned, pstats) = optimize_with(&pipeline, &g, 0, 119, &DpOptions::relayed());
        let (unpruned, ustats) = optimize_with(
            &pipeline,
            &g,
            0,
            119,
            &DpOptions {
                prune: false,
                relay: true,
            },
        );
        let (p, u) = (pruned.unwrap(), unpruned.unwrap());
        assert_eq!(p.objective, u.objective);
        assert!(
            pstats.states_expanded < ustats.states_expanded,
            "pruned {} !< unpruned {}",
            pstats.states_expanded,
            ustats.states_expanded
        );
        assert!(pstats.states_pruned > 0);
    }

    #[test]
    fn relay_mode_reaches_destinations_beyond_the_module_count() {
        // A 6-node chain with a 2-module pipeline: the paper's walk
        // semantics cannot bridge 5 hops with 2 messages, the relay
        // extension can.
        let p = Pipeline::new(
            "short",
            1e6,
            vec![
                ModuleSpec::new("a", 1e-8, 1e5),
                ModuleSpec::new("b", 1e-8, 1e4),
            ],
        );
        let mut g = NetGraph::new();
        for i in 0..6 {
            g.add_node(format!("n{i}"), 1.0, true);
            if i > 0 {
                g.add_bidirectional(i - 1, i, 1e6, 0.01);
            }
        }
        assert!(optimize(&p, &g, 0, 5).is_none());
        let (relayed, _) = optimize_with(&p, &g, 0, 5, &DpOptions::relayed());
        let relayed = relayed.unwrap();
        assert_eq!(*relayed.mapping.path.first().unwrap(), 0);
        assert_eq!(*relayed.mapping.path.last().unwrap(), 5);
        assert!(validate_mapping(&p, &g, &relayed.mapping).is_ok());
        // Relay hops appear as empty groups.
        assert!(relayed.mapping.groups.iter().any(|grp| grp.is_empty()));
    }

    #[test]
    fn relay_mode_delivers_the_image_from_an_off_path_gpu() {
        // src - gpu - dst where only the middle node can render: walk
        // semantics place render at `gpu` only if it is the last hop; with
        // a headless destination the relay extension must still deliver.
        let p = Pipeline::new(
            "render-only",
            1e6,
            vec![ModuleSpec::new("render", 1e-8, 1e4).requiring_graphics()],
        );
        let mut g = NetGraph::new();
        let s = g.add_node("src", 1.0, false);
        let gpu = g.add_node("gpu", 4.0, true);
        let d = g.add_node("dst", 1.0, false);
        g.add_bidirectional(s, gpu, 1e6, 0.01);
        g.add_bidirectional(gpu, d, 1e6, 0.01);
        assert!(optimize(&p, &g, s, d).is_none());
        let (relayed, _) = optimize_with(&p, &g, s, d, &DpOptions::relayed());
        let relayed = relayed.unwrap();
        assert_eq!(relayed.mapping.path, vec![s, gpu, d]);
        assert_eq!(relayed.mapping.groups, vec![vec![], vec![0], vec![]]);
    }

    /// Warm-started re-solves must return the cold optimum exactly, on the
    /// same graph (incumbent == optimum) and after a parameter drift
    /// (incumbent stale), in both semantics — and the seeded bound must
    /// actually save work somewhere.
    #[test]
    fn warm_start_matches_cold_solve_and_saves_work() {
        for relay in [false, true] {
            let opts = DpOptions { prune: true, relay };
            let mut warm_saved_somewhere = false;
            for seed in 0u64..25 {
                let mut rng = XorShift::new(seed.wrapping_add(9000));
                let n_nodes = rng.index(5, 14);
                let n_modules = rng.index(2, 6);
                let (pipeline, mut g) = random_instance(&mut rng, n_nodes, n_modules, 0.4);
                let (cold, _) = optimize_with(&pipeline, &g, 0, n_nodes - 1, &opts);
                let Some(cold) = cold else { continue };
                // Same graph: the incumbent is the optimum itself.
                let (warm, _) = optimize_warm(&pipeline, &g, 0, n_nodes - 1, &opts, &cold.mapping);
                assert_eq!(
                    warm.expect("warm must stay feasible").objective,
                    cold.objective,
                    "relay={relay} seed={seed}: warm start changed the optimum"
                );
                // Drift every bandwidth (the adaptive re-mapping situation)
                // and compare warm vs cold on the perturbed graph.
                for i in 0..g.link_count() {
                    let factor = 0.3 + 0.9 * rng.next();
                    let link = *g.link(i);
                    g.set_measured(link.from, link.to, link.bandwidth * factor, link.delay);
                }
                let (cold2, cstats) = optimize_with(&pipeline, &g, 0, n_nodes - 1, &opts);
                let (warm2, wstats) =
                    optimize_warm(&pipeline, &g, 0, n_nodes - 1, &opts, &cold.mapping);
                match (cold2, warm2) {
                    (Some(c), Some(w)) => {
                        assert_eq!(
                            w.objective, c.objective,
                            "relay={relay} seed={seed}: stale incumbent changed the optimum"
                        );
                        assert!(wstats.states_expanded <= cstats.states_expanded);
                        warm_saved_somewhere |= wstats.states_expanded < cstats.states_expanded;
                    }
                    (None, None) => {}
                    (c, w) => panic!(
                        "relay={relay} seed={seed}: feasibility mismatch cold={:?} warm={:?}",
                        c.is_some(),
                        w.is_some()
                    ),
                }
            }
            assert!(
                warm_saved_somewhere,
                "relay={relay}: the warm bound never saved any work"
            );
        }
    }

    /// A relay incumbent must not poison a walk-only warm start: the guard
    /// skips seeding and the walk result equals the cold walk solve.
    #[test]
    fn relay_incumbent_does_not_poison_walk_warm_start() {
        let (p, g) = setup();
        let (relayed, _) = optimize_with(&p, &g, 0, 2, &DpOptions::relayed());
        let relayed = relayed.unwrap();
        let cold = optimize(&p, &g, 0, 2).unwrap();
        let (warm, _) = optimize_warm(&p, &g, 0, 2, &DpOptions::default(), &relayed.mapping);
        assert_eq!(warm.unwrap().objective, cold.objective);
    }

    #[test]
    fn relay_mode_never_worsens_the_walk_optimum() {
        for seed in 0u64..20 {
            let mut rng = XorShift::new(seed.wrapping_add(4000));
            let n_nodes = rng.index(4, 10);
            let n_modules = rng.index(2, 5);
            let (pipeline, g) = random_instance(&mut rng, n_nodes, n_modules, 0.5);
            let walk = optimize(&pipeline, &g, 0, n_nodes - 1);
            let (relayed, _) = optimize_with(&pipeline, &g, 0, n_nodes - 1, &DpOptions::relayed());
            if let Some(w) = walk {
                let r = relayed.expect("relay space is a superset");
                assert!(
                    r.objective <= w.objective + 1e-9,
                    "seed {seed}: relay {} worse than walk {}",
                    r.objective,
                    w.objective
                );
            }
        }
    }
}
