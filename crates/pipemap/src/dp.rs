//! The dynamic-programming pipeline optimizer (paper Eqs. 9–10).
//!
//! `T^j(v_i)` is the minimal total delay of mapping the first `j` messages
//! (equivalently, the first `j + 1` modules) onto a walk from the source
//! node `v_s` to node `v_i`.  The recursion either keeps module `M_{j+1}` on
//! the same node as its predecessor (inheriting `T^{j-1}(v_i)`) or pulls the
//! message `m_j` across one incoming link from a neighbour `u`
//! (`T^{j-1}(u) + m_j / b_{u,v_i}`), in both cases adding the computing time
//! `c_{j+1} · m_j / p_{v_i}`.  The answer is `T^n(v_d)`; backtracking the
//! argmin pointers yields the group decomposition and the routing path.
//! The running time is `O(n · |E|)`, which is the paper's complexity claim.
//!
//! Two small extensions over the paper's formulation, both noted in
//! DESIGN.md: the base case also allows placing the first processing module
//! on the source node itself (needed to express the paper's own PC–PC
//! experiments, where isosurface extraction runs on the data-source host),
//! and a per-module feasibility predicate (graphics capability) is enforced
//! exactly as Section 4.5 describes ("the scenario with failed feasibility
//! check is simply discarded").

use crate::delay::{evaluate_mapping, DelayBreakdown, Mapping};
use crate::network::NetGraph;
use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// The result of the dynamic-programming optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedMapping {
    /// The chosen mapping (path plus group decomposition).
    pub mapping: Mapping,
    /// Its predicted delay breakdown under the analytical model.
    pub delay: DelayBreakdown,
    /// The raw optimal objective value `T^n(v_d)` from the recursion (equal
    /// to `delay.total` up to floating-point round-off).
    pub objective: f64,
}

/// Optimize the placement of `pipeline` onto `graph` from `source` to
/// `destination`.  Returns `None` when no feasible placement exists (e.g.
/// the destination is unreachable or a graphics-requiring module cannot be
/// placed anywhere along any walk).
pub fn optimize(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
) -> Option<OptimizedMapping> {
    let n_modules = pipeline.message_count();
    let n_nodes = graph.node_count();
    if n_modules == 0 || source >= n_nodes || destination >= n_nodes {
        return None;
    }

    let feasible = |module: usize, node: usize| -> bool {
        !pipeline.modules[module].needs_graphics || graph.node(node).has_graphics
    };

    // cost[j][v] = T^{j+1}(v) (0-based j over modules).
    let mut cost = vec![vec![f64::INFINITY; n_nodes]; n_modules];
    // parent[j][v] = node hosting module j-1 in the optimal sub-solution.
    let mut parent = vec![vec![usize::MAX; n_nodes]; n_modules];

    // Base case: place the first processing module either on the source
    // itself or on a direct neighbour of the source.
    for v in 0..n_nodes {
        if !feasible(0, v) {
            continue;
        }
        let proc = pipeline.processing_time(0, graph.node(v).power);
        if v == source {
            cost[0][v] = proc;
            parent[0][v] = source;
        } else if let Some(link) = graph.link_between(source, v) {
            cost[0][v] = proc + link.transfer_time(pipeline.source_bytes);
            parent[0][v] = source;
        }
    }

    // Recursion over the remaining modules.
    for j in 1..n_modules {
        let message_bytes = pipeline.input_bytes(j);
        for v in 0..n_nodes {
            if !feasible(j, v) {
                continue;
            }
            let proc = pipeline.processing_time(j, graph.node(v).power);
            // Sub-case 1: inherit (module j stays on the same node as j-1).
            let mut best = cost[j - 1][v] + proc;
            let mut best_parent = v;
            // Sub-case 2: pull the message across an incoming link.
            for &lid in graph.incoming_links(v) {
                let link = graph.link(lid);
                let candidate = cost[j - 1][link.from] + proc + link.transfer_time(message_bytes);
                if candidate < best {
                    best = candidate;
                    best_parent = link.from;
                }
            }
            if best.is_finite() {
                cost[j][v] = best;
                parent[j][v] = best_parent;
            }
        }
    }

    let objective = cost[n_modules - 1][destination];
    if !objective.is_finite() {
        return None;
    }

    // Backtrack the node hosting each module.
    let mut hosts = vec![0usize; n_modules];
    hosts[n_modules - 1] = destination;
    for j in (1..n_modules).rev() {
        hosts[j - 1] = parent[j][hosts[j]];
    }
    let first_parent = parent[0][hosts[0]];

    // Convert the per-module host list into a path + group decomposition.
    let mut path = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    if first_parent != hosts[0] {
        // The source serves the raw data but runs no module.
        path.push(first_parent);
        groups.push(Vec::new());
    }
    for (module, &host) in hosts.iter().enumerate() {
        if path.last() != Some(&host) {
            path.push(host);
            groups.push(Vec::new());
        }
        groups
            .last_mut()
            .expect("path is non-empty by construction")
            .push(module);
    }

    let mapping = Mapping { path, groups };
    let delay = evaluate_mapping(pipeline, graph, &mapping);
    Some(OptimizedMapping {
        mapping,
        delay,
        objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ModuleSpec;

    /// The three-stage pipeline and three-node network from the delay tests:
    /// a weak source, a powerful middle node, and the client.
    fn setup() -> (Pipeline, NetGraph) {
        let pipeline = Pipeline::new(
            "test",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 1_000_000.0),
                ModuleSpec::new("extract", 1e-7, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, false);
        let mid = g.add_node("mid", 8.0, true);
        let dst = g.add_node("dst", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.01);
        g.add_bidirectional(mid, dst, 2e6, 0.01);
        g.add_bidirectional(src, dst, 0.25e6, 0.03);
        (pipeline, g)
    }

    #[test]
    fn optimizer_finds_a_valid_mapping_ending_at_the_client() {
        let (p, g) = setup();
        let opt = optimize(&p, &g, 0, 2).expect("a feasible mapping exists");
        assert_eq!(*opt.mapping.path.first().unwrap(), 0);
        assert_eq!(*opt.mapping.path.last().unwrap(), 2);
        assert!((opt.objective - opt.delay.total).abs() < 1e-6);
        // The optimizer must not be worse than the plain client/server
        // mapping it could always fall back to.
        let client_server = Mapping {
            path: vec![0, 2],
            groups: vec![vec![], vec![0, 1, 2]],
        };
        let cs = evaluate_mapping(&p, &g, &client_server);
        assert!(opt.delay.total <= cs.total + 1e-9);
    }

    #[test]
    fn optimizer_uses_the_powerful_intermediate_node_for_heavy_extraction() {
        // With the default (cheap) extraction the optimizer correctly keeps
        // everything on the source/client pair; once extraction is made
        // compute-heavy, offloading to the 8x-faster cluster must win.
        let (_, g) = setup();
        let heavy = Pipeline::new(
            "heavy",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 1_000_000.0),
                ModuleSpec::new("extract", 1e-6, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let opt = optimize(&heavy, &g, 0, 2).unwrap();
        assert!(
            opt.mapping.path.contains(&1),
            "expected the mid cluster in {:?}",
            opt.mapping.path
        );
        // The extraction module specifically must sit on the cluster.
        let extract_group = opt
            .mapping
            .groups
            .iter()
            .position(|grp| grp.contains(&1))
            .unwrap();
        assert_eq!(opt.mapping.path[extract_group], 1);
    }

    #[test]
    fn graphics_constraint_keeps_rendering_off_headless_nodes() {
        let (p, mut g) = setup();
        // Make even the destination headless except for a fourth node that
        // is the only graphics-capable host.
        let gpu = g.add_node("gpu", 2.0, true);
        g.add_bidirectional(2, gpu, 5e6, 0.005);
        // Destination remains node 2 (has graphics), so rendering may stay
        // there; but if we strip its graphics the render module must move to
        // the gpu node, which is not the destination -> the image is still
        // delivered to node 2 only if the model allows a trailing transfer,
        // which the DP (faithful to the paper) does not.  So instead verify
        // the optimizer simply refuses infeasible placements: make every
        // node except `gpu` headless and ask for destination `gpu`.
        let mut strict = NetGraph::new();
        let s = strict.add_node("src", 1.0, false);
        let m = strict.add_node("mid", 8.0, false);
        let d = strict.add_node("gpu-client", 1.0, true);
        strict.add_bidirectional(s, m, 1e6, 0.01);
        strict.add_bidirectional(m, d, 2e6, 0.01);
        let opt = optimize(&p, &strict, s, d).unwrap();
        // The render module (index 2) must be placed on the destination.
        let render_group = opt
            .mapping
            .groups
            .iter()
            .position(|grp| grp.contains(&2))
            .unwrap();
        assert_eq!(opt.mapping.path[render_group], d);
        let _ = gpu;
    }

    #[test]
    fn infeasible_instances_return_none() {
        let (p, _) = setup();
        // No graphics anywhere: the render module cannot be placed.
        let mut g = NetGraph::new();
        let a = g.add_node("a", 1.0, false);
        let b = g.add_node("b", 1.0, false);
        g.add_bidirectional(a, b, 1e6, 0.01);
        assert!(optimize(&p, &g, a, b).is_none());
        // Unreachable destination.
        let mut g2 = NetGraph::new();
        let a2 = g2.add_node("a", 1.0, true);
        let b2 = g2.add_node("b", 1.0, true);
        let _ = (a2, b2);
        assert!(optimize(&p, &g2, 0, 1).is_none());
        // Out-of-range nodes.
        let (_, g3) = setup();
        assert!(optimize(&p, &g3, 0, 99).is_none());
    }

    #[test]
    fn single_node_network_runs_everything_locally() {
        let p = Pipeline::new(
            "local",
            1e6,
            vec![
                ModuleSpec::new("a", 1e-8, 1e5),
                ModuleSpec::new("b", 1e-8, 1e4),
            ],
        );
        let mut g = NetGraph::new();
        let only = g.add_node("only", 2.0, true);
        let opt = optimize(&p, &g, only, only).unwrap();
        assert_eq!(opt.mapping.path, vec![only]);
        assert_eq!(opt.delay.transport, 0.0);
        assert!((opt.delay.computing - (1e-8 * 1e6 + 1e-8 * 1e5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn faster_direct_link_wins_when_intermediate_offers_no_benefit() {
        // If the client is as powerful as the intermediate node and the
        // direct link is fast, the optimal mapping is plain client/server.
        let p = Pipeline::new(
            "cheap",
            1e6,
            vec![
                ModuleSpec::new("a", 1e-9, 1e6),
                ModuleSpec::new("b", 1e-9, 1e5),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, true);
        let mid = g.add_node("mid", 1.0, true);
        let dst = g.add_node("dst", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.05);
        g.add_bidirectional(mid, dst, 1e6, 0.05);
        g.add_bidirectional(src, dst, 100e6, 0.001);
        let opt = optimize(&p, &g, src, dst).unwrap();
        assert_eq!(opt.mapping.path, vec![src, dst]);
    }

    #[test]
    fn larger_datasets_increase_the_optimal_delay_monotonically() {
        let (_, g) = setup();
        let delays: Vec<f64> = [16e6, 64e6, 108e6]
            .iter()
            .map(|&bytes| {
                let p = Pipeline::isosurface(bytes, 2e-9, 2.5e-8, 0.35, 6e-9, 1e6);
                optimize(&p, &g, 0, 2).unwrap().delay.total
            })
            .collect();
        assert!(delays[0] < delays[1]);
        assert!(delays[1] < delays[2]);
    }
}
