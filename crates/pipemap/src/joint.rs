//! Contention-aware joint mapping for many sessions on one WAN.
//!
//! The DP of [`crate::dp`] optimizes a single pipeline in isolation, so N
//! co-located sessions all pile onto the same "optimal" links and the
//! predicted delays are fictions: a link carrying k sessions gives each of
//! them roughly `1/k` of its bandwidth.  This module solves the *joint*
//! placement problem with an iterated best-response scheme over a
//! link-pricing model:
//!
//! * **Pricing.**  A directed link assigned `k` sessions has effective
//!   bandwidth `b / k`.  When session `i` re-solves, every link is priced
//!   at `b / (1 + others)` where `others` counts the *other* sessions
//!   currently mapped across it — the `+1` is session `i`'s own share once
//!   it commits to the link.
//! * **Best response.**  Sessions re-solve one at a time in deterministic
//!   (index) order against the priced graph, each re-solve warm-started
//!   from the session's incumbent mapping ([`crate::dp::optimize_warm`]).
//! * **Termination.**  The iteration stops at a fixed point (a full round
//!   in which no session moved) or after [`JointOptions::max_rounds`]
//!   rounds, whichever comes first.  Best-response dynamics on priced
//!   links need not converge, so the solver tracks the best iterate seen —
//!   scored by the *contended* aggregate delay, where every link is priced
//!   by its total assigned load — and returns that.  Round zero of the
//!   tracking is the independent solution itself, which makes the returned
//!   assignment **never worse than N independent solves** under the
//!   contended objective, by construction.
//!
//! Everything here is deterministic: same sessions, graph and options give
//! byte-identical solutions (see [`solution_digest`]).  DESIGN.md §11
//! documents the model and its place in the multi-session serving stack.

use crate::delay::{evaluate_mapping, DelayBreakdown, Mapping};
use crate::dp::{optimize_warm, optimize_with, DpOptions};
use crate::network::NetGraph;
use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One session's placement problem: its pipeline and endpoints on the
/// shared graph.
#[derive(Debug, Clone)]
pub struct JointSession {
    /// The visualization pipeline this session maps.
    pub pipeline: Pipeline,
    /// Data-source node index.
    pub source: usize,
    /// Client node index.
    pub destination: usize,
}

/// Knobs for the best-response iteration.
#[derive(Debug, Clone)]
pub struct JointOptions {
    /// Upper bound on best-response rounds (a round re-solves every
    /// session once).  The solver always terminates within this bound.
    pub max_rounds: usize,
    /// DP options used for every solve (relay on for sparse WANs).
    pub dp: DpOptions,
}

impl Default for JointOptions {
    fn default() -> Self {
        JointOptions {
            max_rounds: 8,
            dp: DpOptions::default(),
        }
    }
}

/// The joint solution: the chosen per-session mappings next to the
/// independent baseline they are guaranteed not to lose to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointSolution {
    /// Chosen mapping per session (same order as the input slice).
    pub mappings: Vec<Mapping>,
    /// Per-session delay under contended pricing (links divided by their
    /// total assigned load) for the chosen mappings.
    pub contended: Vec<DelayBreakdown>,
    /// Sum of the contended per-session delays — the objective the
    /// best-response iteration is scored by.
    pub aggregate: f64,
    /// What N independent solves chose (round zero).
    pub independent_mappings: Vec<Mapping>,
    /// Contended per-session delays of the independent mappings.
    pub independent_contended: Vec<DelayBreakdown>,
    /// Aggregate contended delay of the independent mappings; always
    /// `>= aggregate`.
    pub independent_aggregate: f64,
    /// Best-response rounds actually executed (0 for a single session,
    /// where independent is trivially joint-optimal).
    pub rounds_used: usize,
    /// Whether a fixed point was reached inside the round bound.
    pub converged: bool,
}

/// Count, per directed link `(from, to)`, how many of the given mappings
/// traverse it.  A mapping traversing a link twice (possible only through
/// relay walks) counts twice — it really does put two transfers there.
fn link_loads(mappings: &[Mapping], skip: Option<usize>) -> BTreeMap<(usize, usize), u32> {
    let mut loads = BTreeMap::new();
    for (i, mapping) in mappings.iter().enumerate() {
        if Some(i) == skip {
            continue;
        }
        for hop in mapping.path.windows(2) {
            *loads.entry((hop[0], hop[1])).or_insert(0) += 1;
        }
    }
    loads
}

/// A copy of `graph` with every loaded link's bandwidth divided by
/// `extra + load` (pricing: `extra = 1` prices the solving session's own
/// share on top of the others'; contended evaluation uses `extra = 0`
/// with loads that include every session).
fn priced_graph(graph: &NetGraph, loads: &BTreeMap<(usize, usize), u32>, extra: u32) -> NetGraph {
    let mut priced = graph.clone();
    for (&(from, to), &load) in loads {
        let divisor = (extra + load) as f64;
        if divisor <= 1.0 {
            continue;
        }
        if let Some(link) = graph.link_between(from, to) {
            priced.set_measured(from, to, link.bandwidth / divisor, link.delay);
        }
    }
    priced
}

/// Evaluate each mapping's delay on the *contended* graph, where every
/// directed link's bandwidth is divided by the total number of sessions
/// assigned to it (its load).
pub fn contended_delays(
    sessions: &[JointSession],
    graph: &NetGraph,
    mappings: &[Mapping],
) -> Vec<DelayBreakdown> {
    let loads = link_loads(mappings, None);
    let contended = priced_graph(graph, &loads, 0);
    sessions
        .iter()
        .zip(mappings)
        .map(|(s, m)| evaluate_mapping(&s.pipeline, &contended, m))
        .collect()
}

fn aggregate_of(delays: &[DelayBreakdown]) -> f64 {
    delays.iter().map(|d| d.total).sum()
}

/// Solve the joint placement problem.  Returns `None` when any session
/// has no feasible mapping at all (on the unloaded graph); otherwise the
/// best assignment seen across the best-response iteration, which is
/// never worse than the independent solution under the contended
/// aggregate objective.
pub fn solve_joint(
    sessions: &[JointSession],
    graph: &NetGraph,
    options: &JointOptions,
) -> Option<JointSolution> {
    // Round zero: every session solves the pristine graph in isolation.
    let mut current: Vec<Mapping> = Vec::with_capacity(sessions.len());
    for s in sessions {
        let (opt, _) = optimize_with(&s.pipeline, graph, s.source, s.destination, &options.dp);
        current.push(opt?.mapping);
    }
    let independent_mappings = current.clone();
    let independent_contended = contended_delays(sessions, graph, &current);
    let independent_aggregate = aggregate_of(&independent_contended);

    let mut best = current.clone();
    let mut best_aggregate = independent_aggregate;
    let mut converged = sessions.len() <= 1;
    let mut rounds_used = 0;

    if !converged {
        for round in 1..=options.max_rounds {
            rounds_used = round;
            let mut changed = false;
            for i in 0..sessions.len() {
                // Price every link by the *other* sessions' current
                // assignment plus this session's own prospective share.
                let loads = link_loads(&current, Some(i));
                let priced = priced_graph(graph, &loads, 1);
                let s = &sessions[i];
                let (opt, _) = optimize_warm(
                    &s.pipeline,
                    &priced,
                    s.source,
                    s.destination,
                    &options.dp,
                    &current[i],
                );
                if let Some(opt) = opt {
                    if opt.mapping != current[i] {
                        current[i] = opt.mapping;
                        changed = true;
                    }
                }
            }
            let aggregate = aggregate_of(&contended_delays(sessions, graph, &current));
            if aggregate + 1e-12 < best_aggregate {
                best_aggregate = aggregate;
                best = current.clone();
            }
            if !changed {
                converged = true;
                break;
            }
        }
    }

    let contended = contended_delays(sessions, graph, &best);
    let aggregate = aggregate_of(&contended);
    Some(JointSolution {
        mappings: best,
        contended,
        aggregate,
        independent_mappings,
        independent_contended,
        independent_aggregate,
        rounds_used,
        converged,
    })
}

/// FNV-1a digest of a solution's serialized form — the byte-determinism
/// witness the property tests (and the `session_sweep` records) pin.
pub fn solution_digest(solution: &JointSolution) -> String {
    let serialized = serde_json::to_string(solution).unwrap_or_default();
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in serialized.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ModuleSpec;
    use ricsa_netsim::generators::{generate, WanKind};

    /// A transfer-dominated pipeline; `scale` varies the data volume so
    /// co-scheduled sessions are not carbon copies.
    fn pipeline(scale: f64) -> Pipeline {
        Pipeline::new(
            "joint-test",
            1.6e6 * scale,
            vec![
                ModuleSpec::new("filter", 2e-9, 1.6e6 * scale),
                ModuleSpec::new("extract", 1e-8, 4.0e5 * scale),
                ModuleSpec::new("render", 5e-9, 1.6e5 * scale).requiring_graphics(),
            ],
        )
    }

    /// A two-route WAN with one clearly better shared trunk: every
    /// isolated solve picks the trunk, so pricing has something to spread.
    fn trunk_graph() -> NetGraph {
        let mut g = NetGraph::new();
        let s = g.add_node("src", 1.0, false);
        let h1 = g.add_node("hub1", 6.0, true);
        let h2 = g.add_node("hub2", 6.0, true);
        let m1 = g.add_node("alt1", 5.0, true);
        let m2 = g.add_node("alt2", 5.0, true);
        let c = g.add_node("client", 1.5, true);
        g.add_bidirectional(s, h1, 40e6, 0.008);
        g.add_bidirectional(h1, h2, 40e6, 0.008);
        g.add_bidirectional(h2, c, 40e6, 0.008);
        g.add_bidirectional(s, m1, 25e6, 0.012);
        g.add_bidirectional(m1, m2, 25e6, 0.012);
        g.add_bidirectional(m2, c, 25e6, 0.012);
        g
    }

    fn trunk_sessions(n: usize) -> Vec<JointSession> {
        (0..n)
            .map(|i| JointSession {
                pipeline: pipeline(1.0 + 0.2 * i as f64),
                source: 0,
                destination: 5,
            })
            .collect()
    }

    #[test]
    fn pricing_spreads_contending_sessions_off_the_trunk() {
        let graph = trunk_graph();
        let sessions = trunk_sessions(3);
        let solution = solve_joint(&sessions, &graph, &JointOptions::default()).unwrap();
        // Independent solves all ride the hub trunk...
        for m in &solution.independent_mappings {
            assert!(m.path.contains(&1), "independent should use hub1: {m:?}");
        }
        // ...and the joint solution strictly beats them in aggregate by
        // moving at least one session to the alternative route.
        assert!(
            solution.aggregate < solution.independent_aggregate - 1e-9,
            "joint {} vs independent {}",
            solution.aggregate,
            solution.independent_aggregate
        );
        assert!(
            solution.mappings.iter().any(|m| m.path.contains(&3)),
            "someone should move to alt1: {:?}",
            solution.mappings
        );
    }

    #[test]
    fn single_session_joint_equals_independent() {
        let graph = trunk_graph();
        let sessions = trunk_sessions(1);
        let solution = solve_joint(&sessions, &graph, &JointOptions::default()).unwrap();
        assert_eq!(solution.mappings, solution.independent_mappings);
        assert!(solution.converged);
        assert_eq!(solution.rounds_used, 0);
    }

    #[test]
    fn infeasible_session_yields_none() {
        let mut graph = NetGraph::new();
        graph.add_node("a", 1.0, false);
        graph.add_node("b", 1.0, false); // no graphics anywhere, no links
        let sessions = vec![JointSession {
            pipeline: pipeline(1.0),
            source: 0,
            destination: 1,
        }];
        assert!(solve_joint(&sessions, &graph, &JointOptions::default()).is_none());
    }

    /// The foregrounded property test: across 40 seeded generated WANs the
    /// joint solve is byte-deterministic (two runs, digest equality),
    /// never worse than independent solves under the contended aggregate,
    /// and terminates within the round bound.
    #[test]
    fn joint_solve_property_sweep_on_generated_wans() {
        let options = JointOptions {
            max_rounds: 6,
            dp: DpOptions::relayed(),
        };
        let mut solved = 0;
        let mut improved = 0;
        for index in 0..40u64 {
            let kind = if index % 2 == 0 {
                WanKind::Waxman
            } else {
                WanKind::TransitStub
            };
            let nodes = 12 + (index as usize * 3) % 12;
            let wan = generate(kind, nodes, 0xA11C_E5ED ^ (index * 7919));
            let graph = NetGraph::from_topology(&wan.topology);
            let sessions: Vec<JointSession> = (0..3)
                .map(|i| JointSession {
                    pipeline: pipeline(0.8 + 0.3 * i as f64),
                    source: wan.source.0,
                    destination: wan.client.0,
                })
                .collect();
            let Some(a) = solve_joint(&sessions, &graph, &options) else {
                continue; // a generated WAN with no feasible placement
            };
            let b = solve_joint(&sessions, &graph, &options).unwrap();
            assert_eq!(a, b, "wan {index}: joint solve not deterministic");
            assert_eq!(
                solution_digest(&a),
                solution_digest(&b),
                "wan {index}: digest mismatch"
            );
            assert!(
                a.aggregate <= a.independent_aggregate + 1e-9,
                "wan {index}: joint {} worse than independent {}",
                a.aggregate,
                a.independent_aggregate
            );
            assert!(
                a.rounds_used <= options.max_rounds,
                "wan {index}: round bound exceeded"
            );
            solved += 1;
            if a.aggregate < a.independent_aggregate - 1e-9 {
                improved += 1;
            }
        }
        assert!(solved >= 30, "only {solved}/40 WANs had feasible sessions");
        assert!(
            improved >= 1,
            "pricing never improved any of the {solved} WANs"
        );
    }

    #[test]
    fn contended_delays_divide_shared_links_by_load() {
        let graph = trunk_graph();
        let sessions = trunk_sessions(2);
        // Force both sessions onto the same trunk path with everything at
        // the client, so the contended transport doubles exactly.
        let m = Mapping {
            path: vec![0, 1, 2, 5],
            groups: vec![vec![], vec![], vec![], vec![0, 1, 2]],
        };
        let solo = contended_delays(&sessions[..1], &graph, std::slice::from_ref(&m));
        let both = contended_delays(&sessions, &graph, &[m.clone(), m.clone()]);
        // Session 0's transfer times double when session 1 shares every
        // link (bandwidth halves; the fixed link delays are unchanged).
        let solo_bw_time = solo[0].transport - 3.0 * 0.008;
        let both_bw_time = both[0].transport - 3.0 * 0.008;
        assert!(
            (both_bw_time - 2.0 * solo_bw_time).abs() < 1e-9,
            "expected doubled transfer time: solo {solo_bw_time}, shared {both_bw_time}"
        );
    }
}
