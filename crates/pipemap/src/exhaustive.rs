//! Exhaustive search over pipeline placements.
//!
//! Enumerates every assignment of modules to nodes in which the first module
//! sits on the data source or one of its neighbours, each subsequent module
//! stays on the same node or moves across one link, and the last module sits
//! on the client — exactly the placements the DP recursion of Eqs. 9–10
//! explores.  Exponential in the module count, so it is only used to verify
//! the optimizer on small instances (tests, property checks, and the
//! optimality ablation in the benchmark harness).

use crate::delay::{evaluate_mapping, Mapping};
use crate::dp::OptimizedMapping;
use crate::network::NetGraph;
use crate::pipeline::Pipeline;

/// Exhaustively find the optimal placement, or `None` if no feasible
/// placement exists.  Instances with more than `max_modules` modules are
/// rejected (returning `None`) to avoid accidental exponential blow-ups;
/// pass `usize::MAX` to force the search.
pub fn exhaustive_optimal(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
    max_modules: usize,
) -> Option<OptimizedMapping> {
    let n = pipeline.message_count();
    if n == 0
        || n > max_modules
        || source >= graph.node_count()
        || destination >= graph.node_count()
    {
        return None;
    }
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut hosts = vec![0usize; n];
    search(
        pipeline,
        graph,
        source,
        destination,
        0,
        source,
        &mut hosts,
        &mut best,
    );
    let (_, hosts) = best?;
    let mapping = hosts_to_mapping(source, &hosts);
    let delay = evaluate_mapping(pipeline, graph, &mapping);
    Some(OptimizedMapping {
        objective: delay.total,
        mapping,
        delay,
    })
}

#[allow(clippy::too_many_arguments)]
fn search(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
    module: usize,
    at: usize,
    hosts: &mut Vec<usize>,
    best: &mut Option<(f64, Vec<usize>)>,
) {
    let n = pipeline.message_count();
    if module == n {
        if hosts[n - 1] != destination {
            return;
        }
        let mapping = hosts_to_mapping(source, hosts);
        if crate::delay::validate_mapping(pipeline, graph, &mapping).is_err() {
            return;
        }
        let delay = evaluate_mapping(pipeline, graph, &mapping).total;
        if best.as_ref().map(|(d, _)| delay < *d).unwrap_or(true) {
            *best = Some((delay, hosts.clone()));
        }
        return;
    }
    // Candidate nodes for this module: stay on `at` or move to an
    // out-neighbour of `at`.
    let mut candidates = vec![at];
    for &lid in graph.outgoing_links(at) {
        candidates.push(graph.link(lid).to);
    }
    candidates.sort_unstable();
    candidates.dedup();
    for cand in candidates {
        if pipeline.modules[module].needs_graphics && !graph.node(cand).has_graphics {
            continue;
        }
        hosts[module] = cand;
        search(
            pipeline,
            graph,
            source,
            destination,
            module + 1,
            cand,
            hosts,
            best,
        );
    }
}

/// Convert a per-module host assignment into a path + groups mapping.
fn hosts_to_mapping(source: usize, hosts: &[usize]) -> Mapping {
    let mut path = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    if hosts.first() != Some(&source) {
        path.push(source);
        groups.push(Vec::new());
    }
    for (module, &host) in hosts.iter().enumerate() {
        if path.last() != Some(&host) {
            path.push(host);
            groups.push(Vec::new());
        }
        groups.last_mut().expect("non-empty").push(module);
    }
    Mapping { path, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimize;
    use crate::pipeline::ModuleSpec;
    use crate::testutil::{random_instance, XorShift};

    fn small_instance() -> (Pipeline, NetGraph) {
        let pipeline = Pipeline::new(
            "test",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 1_000_000.0),
                ModuleSpec::new("extract", 1e-7, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, false);
        let mid = g.add_node("mid", 8.0, true);
        let dst = g.add_node("dst", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.01);
        g.add_bidirectional(mid, dst, 2e6, 0.01);
        g.add_bidirectional(src, dst, 0.25e6, 0.03);
        (pipeline, g)
    }

    #[test]
    fn exhaustive_matches_dp_on_the_reference_instance() {
        let (p, g) = small_instance();
        let dp = optimize(&p, &g, 0, 2).unwrap();
        let ex = exhaustive_optimal(&p, &g, 0, 2, 8).unwrap();
        assert!((dp.delay.total - ex.delay.total).abs() < 1e-9);
    }

    #[test]
    fn module_budget_guard_rejects_large_instances() {
        let (p, g) = small_instance();
        assert!(exhaustive_optimal(&p, &g, 0, 2, 2).is_none());
        assert!(exhaustive_optimal(&p, &g, 0, 9, 8).is_none());
    }

    /// On random small instances the DP optimum equals the exhaustive
    /// optimum — the central correctness property of the optimizer.
    /// Seeded, so every run checks the same 60 instances.
    #[test]
    fn dp_equals_exhaustive_on_random_instances() {
        let mut feasible = 0;
        for seed in 0u64..60 {
            let mut rng = XorShift::new(seed);
            let n_nodes = rng.index(3, 6);
            let n_modules = rng.index(2, 5);
            let density = 0.3 + 0.7 * rng.next();
            let (pipeline, g) = random_instance(&mut rng, n_nodes, n_modules, density);
            let src = 0;
            let dst = n_nodes - 1;
            let dp = optimize(&pipeline, &g, src, dst);
            let ex = exhaustive_optimal(&pipeline, &g, src, dst, 8);
            match (dp, ex) {
                (Some(dp), Some(ex)) => {
                    feasible += 1;
                    assert!(
                        (dp.delay.total - ex.delay.total).abs() <= 1e-6 * ex.delay.total.max(1e-9),
                        "seed {seed}: dp {} != exhaustive {}",
                        dp.delay.total,
                        ex.delay.total
                    );
                }
                (None, None) => {}
                (dp, ex) => panic!(
                    "seed {seed}: feasibility mismatch: dp={:?} ex={:?}",
                    dp.is_some(),
                    ex.is_some()
                ),
            }
        }
        assert!(
            feasible >= 40,
            "only {feasible}/60 instances were feasible — generator is degenerate"
        );
    }
}
