//! The visualization routing table (VRT).
//!
//! After the central-management node computes the optimal pipeline
//! configuration, it produces a routing table that "is delivered
//! sequentially over the loop to establish the network routing path"
//! (Section 2).  Each participating node learns which modules it must run,
//! where the incoming data arrives from, and where to forward its output.

use crate::delay::Mapping;
use crate::network::NetGraph;
use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// One node's entry in the routing table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingEntry {
    /// The node this entry applies to (index into the optimizer's graph,
    /// which equals the simulator `NodeId` when built from a topology).
    pub node: usize,
    /// Display name of the node.
    pub node_name: String,
    /// Names of the modules this node runs, in pipeline order.
    pub modules: Vec<String>,
    /// The node the output (or relayed data) must be forwarded to, if any.
    pub next_hop: Option<usize>,
    /// Size in bytes of the message this node forwards downstream.
    pub forward_bytes: f64,
    /// The node this entry expects its input from, if any.
    pub previous_hop: Option<usize>,
}

/// The complete routing table for one steering/visualization session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisualizationRoutingTable {
    /// Pipeline name this table was computed for.
    pub pipeline: String,
    /// Predicted end-to-end delay of the configuration, seconds.
    pub predicted_delay: f64,
    /// Entries in loop order (data source first, client last).
    pub entries: Vec<RoutingEntry>,
}

impl VisualizationRoutingTable {
    /// Build the routing table for a mapping.
    pub fn from_mapping(
        pipeline: &Pipeline,
        graph: &NetGraph,
        mapping: &Mapping,
        predicted_delay: f64,
    ) -> Self {
        let mut entries = Vec::with_capacity(mapping.path.len());
        let mut current_bytes = pipeline.source_bytes;
        for (i, &node) in mapping.path.iter().enumerate() {
            let modules: Vec<String> = mapping.groups[i]
                .iter()
                .map(|&m| pipeline.modules[m].name.clone())
                .collect();
            if let Some(&last) = mapping.groups[i].last() {
                current_bytes = pipeline.modules[last].output_bytes;
            }
            entries.push(RoutingEntry {
                node,
                node_name: graph.node(node).name.clone(),
                modules,
                next_hop: mapping.path.get(i + 1).copied(),
                forward_bytes: if i + 1 < mapping.path.len() {
                    current_bytes
                } else {
                    0.0
                },
                previous_hop: if i > 0 {
                    Some(mapping.path[i - 1])
                } else {
                    None
                },
            });
        }
        VisualizationRoutingTable {
            pipeline: pipeline.name.clone(),
            predicted_delay,
            entries,
        }
    }

    /// The entry for a given node, if it participates.
    pub fn entry_for(&self, node: usize) -> Option<&RoutingEntry> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// The client (terminal) node of the loop.
    pub fn client_node(&self) -> Option<usize> {
        self.entries.last().map(|e| e.node)
    }

    /// The data-source node of the loop.
    pub fn source_node(&self) -> Option<usize> {
        self.entries.first().map(|e| e.node)
    }

    /// A compact human-readable description, e.g.
    /// `"GaTech[filter] -> UT[isosurface,render] -> ORNL[]"`.
    pub fn describe(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("{}[{}]", e.node_name, e.modules.join(",")))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimize;
    use crate::pipeline::ModuleSpec;

    fn setup() -> (Pipeline, NetGraph) {
        let pipeline = Pipeline::new(
            "iso",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 800_000.0),
                ModuleSpec::new("isosurface", 1e-7, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("GaTech", 1.0, false);
        let mid = g.add_node("UT", 8.0, true);
        let dst = g.add_node("ORNL", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.01);
        g.add_bidirectional(mid, dst, 2e6, 0.01);
        g.add_bidirectional(src, dst, 0.25e6, 0.03);
        (pipeline, g)
    }

    #[test]
    fn routing_table_reflects_the_mapping() {
        let (p, g) = setup();
        let opt = optimize(&p, &g, 0, 2).unwrap();
        let vrt = VisualizationRoutingTable::from_mapping(&p, &g, &opt.mapping, opt.delay.total);
        assert_eq!(vrt.pipeline, "iso");
        assert_eq!(vrt.source_node(), Some(0));
        assert_eq!(vrt.client_node(), Some(2));
        assert_eq!(vrt.entries.len(), opt.mapping.path.len());
        // The hops chain together.
        for pair in vrt.entries.windows(2) {
            assert_eq!(pair[0].next_hop, Some(pair[1].node));
            assert_eq!(pair[1].previous_hop, Some(pair[0].node));
        }
        // All module names appear exactly once across the table.
        let all: Vec<String> = vrt.entries.iter().flat_map(|e| e.modules.clone()).collect();
        assert_eq!(all, vec!["filter", "isosurface", "render"]);
        // The last entry forwards nothing.
        assert_eq!(vrt.entries.last().unwrap().forward_bytes, 0.0);
        // Intermediate forward sizes are positive.
        assert!(vrt.entries[0].forward_bytes > 0.0);
        assert!(vrt.entry_for(0).is_some());
        assert!(vrt.entry_for(99).is_none());
    }

    #[test]
    fn description_lists_hops_with_their_modules() {
        let (p, g) = setup();
        let opt = optimize(&p, &g, 0, 2).unwrap();
        let vrt = VisualizationRoutingTable::from_mapping(&p, &g, &opt.mapping, opt.delay.total);
        let desc = vrt.describe();
        assert!(desc.contains("ORNL"));
        assert!(desc.contains("->"));
        assert!(desc.contains("render"));
    }

    #[test]
    fn forwarded_bytes_track_the_current_message() {
        let (p, g) = setup();
        // Source serves raw data, middle runs everything, client displays.
        let mapping = Mapping {
            path: vec![0, 1, 2],
            groups: vec![vec![], vec![0, 1, 2], vec![]],
        };
        let vrt = VisualizationRoutingTable::from_mapping(&p, &g, &mapping, 1.0);
        assert_eq!(vrt.entries[0].forward_bytes, 1_000_000.0);
        assert_eq!(vrt.entries[1].forward_bytes, 50_000.0);
        assert_eq!(vrt.entries[1].modules.len(), 3);
        assert!(vrt.entries[2].modules.is_empty());
    }
}
