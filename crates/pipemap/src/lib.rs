//! Visualization-pipeline partitioning and network mapping.
//!
//! This crate implements the analytical core of the RICSA paper
//! (Section 4): given
//!
//! * a linear visualization pipeline `M_1, …, M_{n+1}` where module `M_j`
//!   has computational complexity `c_j` and produces a message of size
//!   `m_j` ([`pipeline`]), and
//! * a transport network `G = (V, E)` whose nodes have normalized compute
//!   powers `p_i` and whose links have bandwidths `b_{i,j}` and minimum
//!   delays `d_{i,j}` ([`network`]),
//!
//! find the decomposition of the pipeline into groups and the mapping of
//! those groups onto a path from the data source to the client that
//! minimizes the end-to-end delay of Eq. 2 ([`delay`]).  The optimizer is
//! the dynamic program of Eqs. 9–10 ([`dp`]), validated against an
//! exhaustive search ([`exhaustive`]) and compared against fixed mappings
//! (client/server and a ParaView-style data-server / render-server / client
//! deployment) and a greedy heuristic ([`baselines`]).  The chosen mapping
//! is turned into the visualization routing table circulated around the
//! RICSA loop ([`vrt`]).

#![deny(missing_docs)]

pub mod baselines;
pub mod delay;
pub mod dp;
pub mod exhaustive;
pub mod joint;
pub mod network;
pub mod pipeline;
pub mod sweep;
#[cfg(test)]
pub(crate) mod testutil;
pub mod vrt;

pub use baselines::{client_server_mapping, greedy_mapping, paraview_crs_mapping};
pub use delay::{evaluate_mapping, DelayBreakdown};
pub use dp::{optimize, optimize_warm, optimize_with, DpOptions, DpStats, OptimizedMapping};
pub use exhaustive::exhaustive_optimal;
pub use joint::{solution_digest, solve_joint, JointOptions, JointSession, JointSolution};
pub use network::{NetGraph, NetLink, NetNode};
pub use pipeline::{ModuleSpec, Pipeline};
pub use sweep::{
    solve_batch, solve_scenario, AdaptSweepRecord, AdaptSweepSummary, Scenario, ScenarioSolution,
    SweepRecord, SweepSummary,
};
pub use vrt::{RoutingEntry, VisualizationRoutingTable};
