//! The linear visualization pipeline model.
//!
//! Following the paper's Section 4.2, a pipeline is a chain of `n + 1`
//! modules `M_1, …, M_{n+1}` where `M_1` is the data source.  Module `M_j`
//! (`j ≥ 2`) performs a task of complexity `c_j` on the data of size
//! `m_{j-1}` it receives and emits data of size `m_j`.  Complexities are
//! expressed as seconds per input byte on a node of normalized compute
//! power 1.0, so the processing time on node `v` is `c_j · m_{j-1} / p_v`.

use serde::{Deserialize, Serialize};

/// One processing module of the pipeline (`M_j` for `j ≥ 2`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Human-readable name (e.g. `"filter"`, `"isosurface"`, `"render"`).
    pub name: String,
    /// Computational complexity `c_j`: seconds per input byte at power 1.
    pub complexity: f64,
    /// Output message size `m_j` in bytes.
    pub output_bytes: f64,
    /// Whether this module requires graphics capability (rendering).
    pub needs_graphics: bool,
}

impl ModuleSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, complexity: f64, output_bytes: f64) -> Self {
        ModuleSpec {
            name: name.into(),
            complexity,
            output_bytes,
            needs_graphics: false,
        }
    }

    /// Mark the module as requiring a graphics-capable node.
    pub fn requiring_graphics(mut self) -> Self {
        self.needs_graphics = true;
        self
    }
}

/// A linear visualization pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Descriptive name (e.g. `"isosurface"`).
    pub name: String,
    /// Size of the raw dataset emitted by the source module `M_1`, bytes
    /// (the paper's `m_1`).
    pub source_bytes: f64,
    /// The processing modules `M_2 … M_{n+1}` in order.
    pub modules: Vec<ModuleSpec>,
}

impl Pipeline {
    /// Create a pipeline.
    ///
    /// # Panics
    /// Panics if no modules are given or any size/complexity is not finite
    /// and non-negative.
    pub fn new(name: impl Into<String>, source_bytes: f64, modules: Vec<ModuleSpec>) -> Self {
        assert!(!modules.is_empty(), "a pipeline needs at least one module");
        assert!(
            source_bytes.is_finite() && source_bytes > 0.0,
            "source size must be positive"
        );
        for m in &modules {
            assert!(
                m.complexity.is_finite() && m.complexity >= 0.0,
                "module '{}' has invalid complexity",
                m.name
            );
            assert!(
                m.output_bytes.is_finite() && m.output_bytes >= 0.0,
                "module '{}' has invalid output size",
                m.name
            );
        }
        Pipeline {
            name: name.into(),
            source_bytes,
            modules,
        }
    }

    /// Number of messages `n` (equals the number of processing modules; the
    /// final module's output is displayed rather than forwarded).
    pub fn message_count(&self) -> usize {
        self.modules.len()
    }

    /// The size `m_j` of message `j` (1-based; `m_0`/`m_1` in the paper's
    /// indexing is [`Pipeline::source_bytes`]).  Message `j` is the *input*
    /// of module index `j` (0-based `modules[j]`)'s successor, i.e. the
    /// output of 0-based module `j - 1`.
    pub fn input_bytes(&self, module_index: usize) -> f64 {
        if module_index == 0 {
            self.source_bytes
        } else {
            self.modules[module_index - 1].output_bytes
        }
    }

    /// Processing time of 0-based module `module_index` on a node of
    /// relative compute power `power`.
    pub fn processing_time(&self, module_index: usize, power: f64) -> f64 {
        let c = self.modules[module_index].complexity;
        c * self.input_bytes(module_index) / power.max(1e-12)
    }

    /// The classic three-stage RICSA isosurface pipeline
    /// (filter → isosurface extraction → rendering) with explicit
    /// complexities and reduction ratios.
    pub fn isosurface(
        source_bytes: f64,
        filter_complexity: f64,
        iso_complexity: f64,
        iso_output_ratio: f64,
        render_complexity: f64,
        image_bytes: f64,
    ) -> Self {
        let filtered = source_bytes;
        let mesh = (source_bytes * iso_output_ratio).max(1.0);
        Pipeline::new(
            "isosurface",
            source_bytes,
            vec![
                ModuleSpec::new("filter", filter_complexity, filtered),
                ModuleSpec::new("isosurface", iso_complexity, mesh),
                ModuleSpec::new("render", render_complexity, image_bytes).requiring_graphics(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pipeline {
        Pipeline::new(
            "test",
            1000.0,
            vec![
                ModuleSpec::new("a", 1e-3, 500.0),
                ModuleSpec::new("b", 2e-3, 100.0),
                ModuleSpec::new("c", 4e-3, 10.0).requiring_graphics(),
            ],
        )
    }

    #[test]
    fn message_sizes_follow_the_chain() {
        let p = sample();
        assert_eq!(p.message_count(), 3);
        assert_eq!(p.input_bytes(0), 1000.0);
        assert_eq!(p.input_bytes(1), 500.0);
        assert_eq!(p.input_bytes(2), 100.0);
    }

    #[test]
    fn processing_time_uses_input_size_and_power() {
        let p = sample();
        // Module 0: 1e-3 s/B * 1000 B = 1 s at power 1, 0.5 s at power 2.
        assert!((p.processing_time(0, 1.0) - 1.0).abs() < 1e-12);
        assert!((p.processing_time(0, 2.0) - 0.5).abs() < 1e-12);
        // Module 2: 4e-3 * 100 = 0.4 s.
        assert!((p.processing_time(2, 1.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn graphics_requirement_is_recorded() {
        let p = sample();
        assert!(!p.modules[0].needs_graphics);
        assert!(p.modules[2].needs_graphics);
    }

    #[test]
    fn isosurface_constructor_builds_three_stages() {
        let p = Pipeline::isosurface(16e6, 2e-9, 2.5e-8, 0.35, 6e-9, 1e6);
        assert_eq!(p.modules.len(), 3);
        assert_eq!(p.modules[0].name, "filter");
        assert_eq!(p.modules[2].name, "render");
        assert!(p.modules[2].needs_graphics);
        assert!((p.input_bytes(2) - 16e6 * 0.35).abs() < 1.0);
        assert_eq!(p.modules[2].output_bytes, 1e6);
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_pipeline_panics() {
        let _ = Pipeline::new("x", 1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "source size")]
    fn non_positive_source_panics() {
        let _ = Pipeline::new("x", 0.0, vec![ModuleSpec::new("a", 1.0, 1.0)]);
    }
}
