//! Scenario sets and parallel batch solving for mapping sweeps.
//!
//! A [`Scenario`] is one self-contained mapping problem: a pipeline, an
//! optimizer network view, and the source/destination pair.  [`solve_batch`]
//! solves many scenarios in parallel (via `rayon`), producing for each a
//! [`ScenarioSolution`] holding the DP-optimal mapping, a *default-route
//! baseline* (the best pipeline split along the minimum-delay path — what a
//! deployment gets when data simply follows the network's default route, the
//! paper's client/server mode generalized to multi-hop routes), and a
//! serializable [`SweepRecord`] comparing the two.  [`SweepSummary`]
//! aggregates a record set into the win-rate and speedup statistics the
//! scenario-sweep experiments report (see DESIGN.md §6).

use crate::baselines::best_split_on_path;
use crate::delay::{DelayBreakdown, Mapping};
use crate::dp::{optimize_with, DpOptions, DpStats, OptimizedMapping};
use crate::network::{dijkstra, EdgeDir, NetGraph};
use crate::pipeline::Pipeline;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One self-contained mapping problem of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique id within the sweep.
    pub id: u64,
    /// Human-readable description (generator family, scale, seed).
    pub label: String,
    /// The seed the scenario's topology was generated from.
    pub seed: u64,
    /// The visualization pipeline to map.
    pub pipeline: Pipeline,
    /// The optimizer's network view.
    pub graph: NetGraph,
    /// Data-source node index.
    pub source: usize,
    /// Client node index.
    pub destination: usize,
}

/// The solved form of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSolution {
    /// Comparable summary row (what reports serialize).
    pub record: SweepRecord,
    /// The DP-optimal mapping, if one exists.
    pub optimal: Option<OptimizedMapping>,
    /// The default-route baseline mapping and its predicted delay.
    pub baseline: Option<(Mapping, DelayBreakdown)>,
}

/// One serializable row of a sweep result set.
///
/// Equality ignores the two wall-clock timing fields (`dp_cold_us`,
/// `dp_warm_us`): everything else in a sweep is deterministic per seed and
/// the determinism tests compare whole reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Scenario id.
    pub id: u64,
    /// Scenario label.
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Node count of the scenario's network.
    pub nodes: usize,
    /// Directed link count of the scenario's network.
    pub links: usize,
    /// Predicted delay of the DP-optimal mapping, seconds.
    pub optimal_delay: Option<f64>,
    /// Hops (path nodes) of the optimal mapping.
    pub optimal_hops: Option<usize>,
    /// Predicted delay of the default-route baseline, seconds.
    pub baseline_delay: Option<f64>,
    /// `baseline_delay / optimal_delay` when both exist (≥ 1 up to
    /// round-off: the optimum is taken over a superset of placements).
    pub speedup: Option<f64>,
    /// Predicted delay of the client/server baseline (the paper's "PC–PC"
    /// mode: processing only on the source and client, the route merely
    /// forwards), seconds.
    pub client_server_delay: Option<f64>,
    /// `client_server_delay / optimal_delay` when both exist.
    pub client_server_speedup: Option<f64>,
    /// DP work counters (with pruning enabled).
    pub dp_stats: DpStats,
    /// Wall-clock time of the cold DP solve, microseconds.
    pub dp_cold_us: f64,
    /// Wall-clock time of a warm re-solve seeded with the cold optimum
    /// (the best-case incumbent — what an adaptive re-map pays when the
    /// network barely moved), microseconds.  0 when the scenario is
    /// infeasible.
    pub dp_warm_us: f64,
}

impl PartialEq for SweepRecord {
    fn eq(&self, other: &Self) -> bool {
        // Timing fields excluded: wall-clock, not part of scenario identity.
        self.id == other.id
            && self.label == other.label
            && self.seed == other.seed
            && self.nodes == other.nodes
            && self.links == other.links
            && self.optimal_delay == other.optimal_delay
            && self.optimal_hops == other.optimal_hops
            && self.baseline_delay == other.baseline_delay
            && self.speedup == other.speedup
            && self.client_server_delay == other.client_server_delay
            && self.client_server_speedup == other.client_server_speedup
            && self.dp_stats == other.dp_stats
    }
}

/// Solve one scenario: DP-optimal mapping (pruned) plus the default-route
/// baseline.
pub fn solve_scenario(scenario: &Scenario) -> ScenarioSolution {
    let cold_started = std::time::Instant::now();
    let (optimal, dp_stats) = optimize_with(
        &scenario.pipeline,
        &scenario.graph,
        scenario.source,
        scenario.destination,
        // Relay semantics: generated WANs are sparse, so the paper-faithful
        // one-link-per-message walk often cannot reach the client at all,
        // and the default-route baseline (which may relay) would not be
        // comparable.  See DESIGN.md §6.
        &DpOptions::relayed(),
    );
    let dp_cold_us = cold_started.elapsed().as_secs_f64() * 1e6;
    // Warm re-solve with the optimum as incumbent: quantifies the
    // best-case warm-start win that adaptive re-mapping banks on
    // (DESIGN.md §8).
    let dp_warm_us = match optimal.as_ref() {
        Some(opt) => {
            let warm_started = std::time::Instant::now();
            let (warm, _) = crate::dp::optimize_warm(
                &scenario.pipeline,
                &scenario.graph,
                scenario.source,
                scenario.destination,
                &DpOptions::relayed(),
                &opt.mapping,
            );
            let us = warm_started.elapsed().as_secs_f64() * 1e6;
            debug_assert_eq!(warm.map(|w| w.objective), Some(opt.objective));
            us
        }
        None => 0.0,
    };
    let baseline = default_route_baseline(
        &scenario.pipeline,
        &scenario.graph,
        scenario.source,
        scenario.destination,
    );
    let optimal_delay = optimal.as_ref().map(|o| o.delay.total);
    let baseline_delay = baseline.as_ref().map(|(_, d)| d.total);
    let speedup = match (optimal_delay, baseline_delay) {
        (Some(o), Some(b)) if o > 0.0 => Some(b / o),
        _ => None,
    };
    let client_server = client_server_on_route(
        &scenario.pipeline,
        &scenario.graph,
        scenario.source,
        scenario.destination,
    );
    let client_server_delay = client_server.as_ref().map(|(_, d)| d.total);
    let client_server_speedup = match (optimal_delay, client_server_delay) {
        (Some(o), Some(b)) if o > 0.0 => Some(b / o),
        _ => None,
    };
    ScenarioSolution {
        record: SweepRecord {
            id: scenario.id,
            label: scenario.label.clone(),
            seed: scenario.seed,
            nodes: scenario.graph.node_count(),
            links: scenario.graph.link_count(),
            optimal_delay,
            optimal_hops: optimal.as_ref().map(|o| o.mapping.path.len()),
            baseline_delay,
            speedup,
            client_server_delay,
            client_server_speedup,
            dp_stats,
            dp_cold_us,
            dp_warm_us,
        },
        optimal,
        baseline,
    }
}

/// Solve a scenario set in parallel, preserving order.
pub fn solve_batch(scenarios: &[Scenario]) -> Vec<ScenarioSolution> {
    scenarios.par_iter().map(solve_scenario).collect()
}

/// The default-route baseline: the best contiguous pipeline split along a
/// minimum-delay path from `source` to `destination` (among equal-delay
/// routes, which one is returned depends on the deterministic Dijkstra
/// settle order).  Returns `None` when the destination is unreachable or
/// no split along that path is feasible.
pub fn default_route_baseline(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
) -> Option<(Mapping, DelayBreakdown)> {
    let path = min_delay_path(graph, source, destination)?;
    best_split_on_path(pipeline, graph, &path)
}

/// The client/server baseline (the paper's "PC–PC" mode generalized to a
/// routed WAN): processing happens only on the source and the client, every
/// intermediate node of the minimum-delay route merely forwards.  The split
/// point between the two hosts is still chosen optimally.
pub fn client_server_on_route(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    destination: usize,
) -> Option<(Mapping, DelayBreakdown)> {
    use crate::delay::{evaluate_mapping, validate_mapping};
    let path = min_delay_path(graph, source, destination)?;
    let n = pipeline.message_count();
    let mut best: Option<(Mapping, DelayBreakdown)> = None;
    for split in 0..=n {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); path.len()];
        groups[0] = (0..split).collect();
        *groups.last_mut().expect("path is non-empty") = (split..n).collect();
        if path.len() == 1 {
            groups[0] = (0..n).collect();
        }
        let mapping = Mapping {
            path: path.clone(),
            groups,
        };
        if validate_mapping(pipeline, graph, &mapping).is_ok() {
            let delay = evaluate_mapping(pipeline, graph, &mapping);
            if best
                .as_ref()
                .map(|(_, d)| delay.total < d.total)
                .unwrap_or(true)
            {
                best = Some((mapping, delay));
            }
        }
    }
    best
}

/// Shortest path by summed link delay (Dijkstra).
fn min_delay_path(graph: &NetGraph, source: usize, destination: usize) -> Option<Vec<usize>> {
    let n = graph.node_count();
    if source >= n || destination >= n {
        return None;
    }
    let mut init = vec![f64::INFINITY; n];
    init[source] = 0.0;
    let (dist, prev) = dijkstra(
        graph,
        &init,
        EdgeDir::Outgoing,
        |link| link.delay,
        |_, _| true,
    );
    if !dist[destination].is_finite() {
        return None;
    }
    let mut path = vec![destination];
    let mut at = destination;
    while at != source {
        at = prev[at];
        if at == usize::MAX {
            return None;
        }
        path.push(at);
    }
    path.reverse();
    Some(path)
}

/// Aggregate win-rate and speedup statistics over a record set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Total scenarios in the set.
    pub scenarios: usize,
    /// Scenarios where both the optimizer and the baseline produced a
    /// mapping (only these contribute to the statistics below).
    pub compared: usize,
    /// Scenarios where the optimal mapping is strictly faster than the
    /// baseline (by more than round-off).
    pub wins: usize,
    /// `wins / compared` (0 when nothing was compared).
    pub win_rate: f64,
    /// Mean of the per-scenario speedups.
    pub mean_speedup: f64,
    /// 10th percentile of the per-scenario speedups.
    pub p10_speedup: f64,
    /// Median per-scenario speedup.
    pub p50_speedup: f64,
    /// 90th percentile of the per-scenario speedups.
    pub p90_speedup: f64,
}

impl SweepSummary {
    /// Compute the summary of a record set.
    pub fn aggregate(records: &[SweepRecord]) -> SweepSummary {
        let speedups: Vec<f64> = records.iter().filter_map(|r| r.speedup).collect();
        SweepSummary::from_speedups(records.len(), speedups)
    }

    /// Compute the summary from raw per-scenario speedups out of a set of
    /// `scenarios` attempts (used for the measured/simulated statistics,
    /// where speedups come from simulator timings rather than records).
    pub fn from_speedups(scenarios: usize, mut speedups: Vec<f64>) -> SweepSummary {
        speedups.sort_by(|a, b| a.partial_cmp(b).expect("speedups are finite"));
        let compared = speedups.len();
        let wins = speedups.iter().filter(|&&s| s > 1.0 + 1e-9).count();
        let mean = if compared == 0 {
            0.0
        } else {
            speedups.iter().sum::<f64>() / compared as f64
        };
        SweepSummary {
            scenarios,
            compared,
            wins,
            win_rate: if compared == 0 {
                0.0
            } else {
                wins as f64 / compared as f64
            },
            mean_speedup: mean,
            p10_speedup: percentile(&speedups, 0.10),
            p50_speedup: percentile(&speedups, 0.50),
            p90_speedup: percentile(&speedups, 0.90),
        }
    }
}

/// One serializable row of a *dynamic*-scenario (adaptation) sweep: a
/// generated WAN plus one seeded event schedule, run under the static,
/// adaptive and oracle control policies (see `ricsa-core::adapt_sweep`,
/// DESIGN.md §9).  Lives here, next to [`SweepRecord`], so the record and
/// summary shapes every sweep reports are defined in one crate.
///
/// Equality ignores the wall-clock solve-timing fields (`warm_solve_us`,
/// `cold_solve_us`), exactly as [`SweepRecord`] ignores its `dp_*_us`
/// fields: everything else is deterministic per seed and the determinism
/// tests compare whole record sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptSweepRecord {
    /// Scenario id within the sweep (`wan_index * schedules_per_wan + k`).
    pub id: u64,
    /// Human-readable description: WAN family/scale plus schedule seed.
    pub label: String,
    /// Seed the WAN topology was generated from.
    pub wan_seed: u64,
    /// Seed of this dynamic schedule (a family member of `wan_seed`).
    pub schedule_seed: u64,
    /// Node count of the WAN.
    pub nodes: usize,
    /// Directed link count of the WAN.
    pub links: usize,
    /// Scheduled link events that landed *inside the run's measured
    /// virtual window* (events the policies actually experienced; events
    /// scheduled past the last completed frame are not counted).  0 when
    /// the scenario never ran.
    pub events: usize,
    /// Frames requested per policy run.
    pub frames: u64,
    /// Frames delivered per virtual second under the static policy.
    pub static_fps: Option<f64>,
    /// Frames delivered per virtual second under the adaptive policy.
    pub adaptive_fps: Option<f64>,
    /// Frames delivered per virtual second under the oracle policy.
    pub oracle_fps: Option<f64>,
    /// Static post-event mean loop delay divided by adaptive post-event
    /// mean (> 1: adaptation won; ≈ 1: tie — typically no event touched
    /// the active route; < 1: adaptation lost, e.g. a migration paid for
    /// a change that recovered).  `None` when no event landed inside the
    /// run's virtual window or a policy run completed no post-event frame.
    pub post_event_speedup: Option<f64>,
    /// Adaptive steady-state mean delay divided by the oracle's (the
    /// adaptation quality bound: 1 = converged onto the oracle).
    pub oracle_gap: Option<f64>,
    /// Virtual seconds from the first scheduled event to the adaptive
    /// run's first migration commit.
    pub remap_latency_s: Option<f64>,
    /// Migrations the adaptive run executed.
    pub migrations: usize,
    /// Virtual seconds from the first scheduled event to the first
    /// confirmed change-point detection, RTT signal on.
    pub detect_latency_s: Option<f64>,
    /// The same with the RTT signal off (goodput-only detection).
    pub detect_latency_no_rtt_s: Option<f64>,
    /// Frames lost, summed over the policy runs (0 on a healthy record).
    pub frames_lost: u64,
    /// Duplicated frame deliveries, summed over the policy runs (0 on a
    /// healthy record).
    pub frames_duplicated: u64,
    /// FNV-1a digest of the adaptive run's serialized decision trace —
    /// the compact determinism witness two runs of the same seed must
    /// reproduce.
    pub decision_digest: String,
    /// Mean wall-clock microseconds per warm (adaptive) re-solve.
    pub warm_solve_us: f64,
    /// Mean wall-clock microseconds per cold (oracle) re-solve.
    pub cold_solve_us: f64,
}

impl PartialEq for AdaptSweepRecord {
    fn eq(&self, other: &Self) -> bool {
        // Solve timings excluded: wall-clock, not part of scenario identity.
        self.id == other.id
            && self.label == other.label
            && self.wan_seed == other.wan_seed
            && self.schedule_seed == other.schedule_seed
            && self.nodes == other.nodes
            && self.links == other.links
            && self.events == other.events
            && self.frames == other.frames
            && self.static_fps == other.static_fps
            && self.adaptive_fps == other.adaptive_fps
            && self.oracle_fps == other.oracle_fps
            && self.post_event_speedup == other.post_event_speedup
            && self.oracle_gap == other.oracle_gap
            && self.remap_latency_s == other.remap_latency_s
            && self.migrations == other.migrations
            && self.detect_latency_s == other.detect_latency_s
            && self.detect_latency_no_rtt_s == other.detect_latency_no_rtt_s
            && self.frames_lost == other.frames_lost
            && self.frames_duplicated == other.frames_duplicated
            && self.decision_digest == other.decision_digest
    }
}

/// Aggregate statistics over an [`AdaptSweepRecord`] set: adaptation win
/// rates against the static policy, oracle-gap percentiles, and the
/// detection-latency comparison of the RTT-signal axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptSweepSummary {
    /// Total dynamic scenarios in the set.
    pub scenarios: usize,
    /// Records with a comparable post-event window (an event landed
    /// in-window and both static and adaptive completed frames after it);
    /// only these contribute to the win/speedup statistics.
    pub compared: usize,
    /// Compared records where adaptive strictly beat static (beyond
    /// round-off).
    pub adaptive_wins: usize,
    /// Compared records where adaptive strictly lost (the honest column:
    /// migrations that paid for changes which recovered, or thrash near
    /// the margin/cooldown boundary).
    pub adaptive_losses: usize,
    /// Compared records decided within round-off — typically no scheduled
    /// event touched the active route, so both policies ran identically.
    pub ties: usize,
    /// `adaptive_wins / compared` (0 when nothing was compared).
    pub win_rate: f64,
    /// Mean post-event speedup (static / adaptive) over compared records.
    pub mean_post_event_speedup: f64,
    /// 10th percentile of the post-event speedups.
    pub p10_post_event_speedup: f64,
    /// Median post-event speedup.
    pub p50_post_event_speedup: f64,
    /// 90th percentile of the post-event speedups.
    pub p90_post_event_speedup: f64,
    /// Mean adaptive/oracle steady-state ratio over records carrying one.
    pub mean_oracle_gap: f64,
    /// 90th percentile of the oracle gap.
    pub p90_oracle_gap: f64,
    /// Mean virtual seconds from first event to migration commit, over
    /// adaptive runs that migrated.
    pub mean_remap_latency_s: Option<f64>,
    /// Fraction of event-carrying records where the RTT-on controller
    /// confirmed any detection.
    pub detect_rate: f64,
    /// The same for the goodput-only (RTT-off) controller.
    pub detect_rate_no_rtt: f64,
    /// Mean detection latency of the RTT-on controller, seconds.
    pub mean_detect_latency_s: Option<f64>,
    /// Mean detection latency of the goodput-only controller, seconds.
    pub mean_detect_latency_no_rtt_s: Option<f64>,
    /// Mean `(goodput-only − RTT-on)` detection latency over records
    /// where both confirmed — positive means the RTT signal detected
    /// earlier.
    pub mean_rtt_detect_advantage_s: Option<f64>,
}

impl AdaptSweepSummary {
    /// Compute the summary of a record set.
    pub fn aggregate(records: &[AdaptSweepRecord]) -> AdaptSweepSummary {
        let mut speedups: Vec<f64> = records
            .iter()
            .filter_map(|r| r.post_event_speedup)
            .collect();
        speedups.sort_by(|a, b| a.partial_cmp(b).expect("speedups are finite"));
        let compared = speedups.len();
        let wins = speedups.iter().filter(|&&s| s > 1.0 + 1e-9).count();
        let losses = speedups.iter().filter(|&&s| s < 1.0 - 1e-9).count();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let mut gaps: Vec<f64> = records.iter().filter_map(|r| r.oracle_gap).collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
        let remap: Vec<f64> = records.iter().filter_map(|r| r.remap_latency_s).collect();
        let eventful: Vec<&AdaptSweepRecord> = records.iter().filter(|r| r.events > 0).collect();
        let detect: Vec<f64> = eventful.iter().filter_map(|r| r.detect_latency_s).collect();
        let detect_no_rtt: Vec<f64> = eventful
            .iter()
            .filter_map(|r| r.detect_latency_no_rtt_s)
            .collect();
        let advantage: Vec<f64> = eventful
            .iter()
            .filter_map(|r| match (r.detect_latency_s, r.detect_latency_no_rtt_s) {
                (Some(rtt), Some(goodput_only)) => Some(goodput_only - rtt),
                _ => None,
            })
            .collect();
        let rate = |n: usize| {
            if eventful.is_empty() {
                0.0
            } else {
                n as f64 / eventful.len() as f64
            }
        };
        AdaptSweepSummary {
            scenarios: records.len(),
            compared,
            adaptive_wins: wins,
            adaptive_losses: losses,
            ties: compared - wins - losses,
            win_rate: if compared == 0 {
                0.0
            } else {
                wins as f64 / compared as f64
            },
            mean_post_event_speedup: mean(&speedups),
            p10_post_event_speedup: percentile(&speedups, 0.10),
            p50_post_event_speedup: percentile(&speedups, 0.50),
            p90_post_event_speedup: percentile(&speedups, 0.90),
            mean_oracle_gap: mean(&gaps),
            p90_oracle_gap: percentile(&gaps, 0.90),
            mean_remap_latency_s: (!remap.is_empty()).then(|| mean(&remap)),
            detect_rate: rate(detect.len()),
            detect_rate_no_rtt: rate(detect_no_rtt.len()),
            mean_detect_latency_s: (!detect.is_empty()).then(|| mean(&detect)),
            mean_detect_latency_no_rtt_s: (!detect_no_rtt.is_empty()).then(|| mean(&detect_no_rtt)),
            mean_rtt_detect_advantage_s: (!advantage.is_empty()).then(|| mean(&advantage)),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_instance, XorShift};

    fn scenario_from_seed(id: u64) -> Scenario {
        let mut rng = XorShift::new(id.wrapping_add(500));
        let n_nodes = rng.index(4, 12);
        let n_modules = rng.index(2, 5);
        let (pipeline, graph) = random_instance(&mut rng, n_nodes, n_modules, 0.4);
        Scenario {
            id,
            label: format!("test-{id}"),
            seed: id,
            pipeline,
            graph,
            source: 0,
            destination: n_nodes - 1,
        }
    }

    #[test]
    fn optimal_never_loses_to_the_default_route_baseline() {
        for id in 0..20 {
            let s = scenario_from_seed(id);
            let sol = solve_scenario(&s);
            if let (Some(o), Some(b)) = (sol.record.optimal_delay, sol.record.baseline_delay) {
                assert!(
                    o <= b + 1e-9,
                    "scenario {id}: optimal {o} worse than baseline {b}"
                );
                assert!(sol.record.speedup.unwrap() >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn batch_solving_matches_sequential_solving() {
        let scenarios: Vec<Scenario> = (0..12).map(scenario_from_seed).collect();
        let parallel = solve_batch(&scenarios);
        let sequential: Vec<ScenarioSolution> = scenarios.iter().map(solve_scenario).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn min_delay_path_follows_low_delay_links() {
        let mut g = NetGraph::new();
        for i in 0..4 {
            g.add_node(format!("n{i}"), 1.0, true);
        }
        // Direct link 0→3 is slow (delay 0.1); the 0→1→2→3 chain totals 0.03.
        g.add_bidirectional(0, 3, 1e6, 0.1);
        g.add_bidirectional(0, 1, 1e6, 0.01);
        g.add_bidirectional(1, 2, 1e6, 0.01);
        g.add_bidirectional(2, 3, 1e6, 0.01);
        assert_eq!(min_delay_path(&g, 0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(min_delay_path(&g, 0, 0), Some(vec![0]));
        // Unreachable node.
        let lonely = g.add_node("lonely", 1.0, true);
        assert_eq!(min_delay_path(&g, 0, lonely), None);
        assert_eq!(min_delay_path(&g, 0, 99), None);
    }

    #[test]
    fn summary_aggregates_wins_and_percentiles() {
        let mk = |id: u64, speedup: Option<f64>| SweepRecord {
            id,
            label: String::new(),
            seed: id,
            nodes: 5,
            links: 10,
            optimal_delay: speedup.map(|_| 1.0),
            optimal_hops: Some(2),
            baseline_delay: speedup,
            speedup,
            client_server_delay: speedup,
            client_server_speedup: speedup,
            dp_stats: DpStats::default(),
            dp_cold_us: 0.0,
            dp_warm_us: 0.0,
        };
        let records: Vec<SweepRecord> = vec![
            mk(0, Some(1.0)),
            mk(1, Some(2.0)),
            mk(2, Some(4.0)),
            mk(3, None),
        ];
        let s = SweepSummary::aggregate(&records);
        assert_eq!(s.scenarios, 4);
        assert_eq!(s.compared, 3);
        assert_eq!(s.wins, 2);
        assert!((s.win_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_speedup - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.p10_speedup, 1.0);
        assert_eq!(s.p50_speedup, 2.0);
        assert_eq!(s.p90_speedup, 4.0);
        let empty = SweepSummary::aggregate(&[]);
        assert_eq!(empty.compared, 0);
        assert_eq!(empty.win_rate, 0.0);
    }

    #[test]
    fn adapt_summary_counts_wins_losses_ties_and_detection_axes() {
        let mk = |id: u64,
                  speedup: Option<f64>,
                  events: usize,
                  detect: Option<f64>,
                  detect_no_rtt: Option<f64>| AdaptSweepRecord {
            id,
            label: String::new(),
            wan_seed: id,
            schedule_seed: id,
            nodes: 8,
            links: 20,
            events,
            frames: 10,
            static_fps: Some(1.0),
            adaptive_fps: Some(1.0),
            oracle_fps: Some(1.0),
            post_event_speedup: speedup,
            oracle_gap: speedup.map(|_| 1.0),
            remap_latency_s: speedup.filter(|&s| s > 1.0).map(|_| 2.0),
            migrations: usize::from(speedup.map(|s| s > 1.0).unwrap_or(false)),
            detect_latency_s: detect,
            detect_latency_no_rtt_s: detect_no_rtt,
            frames_lost: 0,
            frames_duplicated: 0,
            decision_digest: "d".into(),
            warm_solve_us: 1.0,
            cold_solve_us: 2.0,
        };
        let records = vec![
            mk(0, Some(2.0), 3, Some(1.0), Some(3.0)),
            mk(1, Some(1.0), 2, Some(1.5), None),
            mk(2, Some(0.9), 1, None, None),
            mk(3, None, 0, None, None),
        ];
        let s = AdaptSweepSummary::aggregate(&records);
        assert_eq!(s.scenarios, 4);
        assert_eq!(s.compared, 3);
        assert_eq!(s.adaptive_wins, 1);
        assert_eq!(s.adaptive_losses, 1);
        assert_eq!(s.ties, 1);
        assert!((s.win_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_post_event_speedup - 1.3).abs() < 1e-12);
        // Detection rates are over the 3 eventful records only.
        assert!((s.detect_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.detect_rate_no_rtt - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.mean_detect_latency_s, Some(1.25));
        assert_eq!(s.mean_detect_latency_no_rtt_s, Some(3.0));
        // Advantage counted only where both controllers detected.
        assert_eq!(s.mean_rtt_detect_advantage_s, Some(2.0));
        assert_eq!(s.mean_remap_latency_s, Some(2.0));
        // Equality ignores the wall-clock solve timings.
        let mut a = mk(9, Some(2.0), 1, None, None);
        let b = mk(9, Some(2.0), 1, None, None);
        a.warm_solve_us = 777.0;
        a.cold_solve_us = 888.0;
        assert_eq!(a, b);
        let empty = AdaptSweepSummary::aggregate(&[]);
        assert_eq!(empty.compared, 0);
        assert_eq!(empty.detect_rate, 0.0);
        assert_eq!(empty.mean_detect_latency_s, None);
    }
}
