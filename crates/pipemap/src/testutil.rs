//! Shared helpers for this crate's unit tests: a tiny deterministic RNG and
//! a random-instance generator used by the DP/exhaustive/sweep cross-checks.

use crate::network::NetGraph;
use crate::pipeline::{ModuleSpec, Pipeline};

/// A tiny deterministic xorshift generator for building random test
/// instances (kept local so `ricsa-pipemap` needs no RNG dev-dependency).
pub struct XorShift(u64);

impl XorShift {
    /// Seeded constructor; the multiply/add scrambles small seeds apart.
    pub fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() * (hi - lo) as f64) as usize
    }
}

/// A random connected instance: `n_nodes` nodes on a chain plus random
/// extra links of the given density, and an `n_modules`-stage pipeline whose
/// final stage requires graphics (the last node always has a graphics card,
/// so a feasible placement exists).
pub fn random_instance(
    rng: &mut XorShift,
    n_nodes: usize,
    n_modules: usize,
    density: f64,
) -> (Pipeline, NetGraph) {
    let mut g = NetGraph::new();
    for i in 0..n_nodes {
        let power = 0.5 + 4.0 * rng.next();
        // Keep at least the last node graphics-capable so the
        // instance is feasible when a render stage is present.
        let has_gfx = i == n_nodes - 1 || rng.next() > 0.3;
        g.add_node(format!("n{i}"), power, has_gfx);
    }
    for a in 0..n_nodes {
        for b in (a + 1)..n_nodes {
            // Always keep a chain so the graph is connected.
            if b == a + 1 || rng.next() < density {
                let bw = 0.2e6 + 10e6 * rng.next();
                let delay = 0.001 + 0.05 * rng.next();
                g.add_bidirectional(a, b, bw, delay);
            }
        }
    }
    let mut modules = Vec::new();
    for k in 0..n_modules {
        let complexity = 1e-9 + 2e-7 * rng.next();
        let out = 1e4 + 2e6 * rng.next();
        let spec = ModuleSpec::new(format!("m{k}"), complexity, out);
        let spec = if k == n_modules - 1 {
            spec.requiring_graphics()
        } else {
            spec
        };
        modules.push(spec);
    }
    let pipeline = Pipeline::new("random", 0.5e6 + 4e6 * rng.next(), modules);
    (pipeline, g)
}
