//! Fixed-mapping baselines and a greedy heuristic.
//!
//! The paper compares its optimizer against (i) conventional client/server
//! ("PC–PC") deployments where a predetermined split of the pipeline is used
//! over the direct data-source → client link, and (ii) ParaView's manual
//! client / render-server / data-server (`-crs`) deployment (Fig. 10).  A
//! greedy one-step-lookahead heuristic is included as an additional ablation
//! for the benchmark harness.

use crate::delay::{evaluate_mapping, validate_mapping, DelayBreakdown, Mapping};
use crate::network::NetGraph;
use crate::pipeline::Pipeline;

/// The best fixed client/server mapping over the direct `source → client`
/// link: every split point of the pipeline between the two hosts is
/// evaluated (respecting graphics feasibility) and the cheapest is returned.
/// Returns `None` when the two hosts are not directly connected or no split
/// is feasible.
pub fn client_server_mapping(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    client: usize,
) -> Option<(Mapping, DelayBreakdown)> {
    graph.link_between(source, client)?;
    best_split_on_path(pipeline, graph, &[source, client])
}

/// The best contiguous split of the pipeline across an explicit path of
/// nodes; `None` if the path is disconnected or no split is feasible.
pub fn best_split_on_path(
    pipeline: &Pipeline,
    graph: &NetGraph,
    path: &[usize],
) -> Option<(Mapping, DelayBreakdown)> {
    let n = pipeline.message_count();
    let q = path.len();
    if q == 0 {
        return None;
    }
    let mut best: Option<(Mapping, DelayBreakdown)> = None;
    // Enumerate all ways to choose q-1 split points in 0..=n (allowing empty
    // groups, e.g. a source that only serves data or a client that only
    // displays the image).
    let mut splits = vec![0usize; q - 1];
    loop {
        // Build groups from the split points (must be non-decreasing).
        if splits.windows(2).all(|w| w[0] <= w[1]) {
            let mut groups: Vec<Vec<usize>> = Vec::with_capacity(q);
            let mut start = 0usize;
            for &end in splits.iter().chain(std::iter::once(&n)) {
                groups.push((start..end).collect());
                start = end;
            }
            let mapping = Mapping {
                path: path.to_vec(),
                groups,
            };
            if validate_mapping(pipeline, graph, &mapping).is_ok() {
                let delay = evaluate_mapping(pipeline, graph, &mapping);
                if best
                    .as_ref()
                    .map(|(_, d)| delay.total < d.total)
                    .unwrap_or(true)
                {
                    best = Some((mapping, delay));
                }
            }
        }
        // Advance the split-point odometer.
        let mut i = 0;
        loop {
            if i == splits.len() {
                return best;
            }
            splits[i] += 1;
            if splits[i] <= n {
                break;
            }
            splits[i] = 0;
            i += 1;
        }
    }
}

/// The ParaView `-crs` deployment of Fig. 10: the first module (filtering /
/// data serving) on the data server, all remaining modules on the render
/// server, and the finished image delivered to the client.  `overhead`
/// multiplies both computing and transport time to model the heavier
/// general-purpose protocol stack; the paper's measurements showed ParaView
/// moderately slower than RICSA on the identical mapping.
pub fn paraview_crs_mapping(
    pipeline: &Pipeline,
    graph: &NetGraph,
    data_server: usize,
    render_server: usize,
    client: usize,
    overhead: f64,
) -> Option<(Mapping, DelayBreakdown)> {
    let n = pipeline.message_count();
    if n < 2 {
        return None;
    }
    let mapping = Mapping {
        path: vec![data_server, render_server, client],
        groups: vec![vec![0], (1..n).collect(), Vec::new()],
    };
    validate_mapping(pipeline, graph, &mapping).ok()?;
    let base = evaluate_mapping(pipeline, graph, &mapping);
    let overhead = overhead.max(1.0);
    Some((
        mapping,
        DelayBreakdown {
            total: base.total * overhead,
            computing: base.computing * overhead,
            transport: base.transport * overhead,
        },
    ))
}

/// A greedy one-step-lookahead heuristic: each module is placed on whichever
/// of the current node or its out-neighbours minimizes that module's
/// processing time plus the transfer it incurs, with the final module forced
/// onto the client.  Returns `None` if the walk cannot reach the client.
pub fn greedy_mapping(
    pipeline: &Pipeline,
    graph: &NetGraph,
    source: usize,
    client: usize,
) -> Option<(Mapping, DelayBreakdown)> {
    let n = pipeline.message_count();
    let mut hosts = Vec::with_capacity(n);
    let mut at = source;
    for module in 0..n {
        let message = pipeline.input_bytes(module);
        let feasible =
            |node: usize| !pipeline.modules[module].needs_graphics || graph.node(node).has_graphics;
        if module == n - 1 {
            // Final module must land on the client.
            if at != client && graph.link_between(at, client).is_none() {
                return None;
            }
            if !feasible(client) {
                return None;
            }
            hosts.push(client);
            at = client;
            continue;
        }
        let mut best_node = None;
        let mut best_cost = f64::INFINITY;
        let mut consider = |node: usize, transfer: f64| {
            if !feasible(node) {
                return;
            }
            let cost = transfer + pipeline.processing_time(module, graph.node(node).power);
            if cost < best_cost {
                best_cost = cost;
                best_node = Some(node);
            }
        };
        consider(at, 0.0);
        for &lid in graph.outgoing_links(at) {
            let link = graph.link(lid);
            consider(link.to, link.transfer_time(message));
        }
        let chosen = best_node?;
        hosts.push(chosen);
        at = chosen;
    }
    // Convert hosts into a mapping.
    let mut path = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    if hosts.first() != Some(&source) {
        path.push(source);
        groups.push(Vec::new());
    }
    for (module, &host) in hosts.iter().enumerate() {
        if path.last() != Some(&host) {
            path.push(host);
            groups.push(Vec::new());
        }
        groups.last_mut().expect("non-empty").push(module);
    }
    let mapping = Mapping { path, groups };
    validate_mapping(pipeline, graph, &mapping).ok()?;
    let delay = evaluate_mapping(pipeline, graph, &mapping);
    Some((mapping, delay))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimize;
    use crate::pipeline::ModuleSpec;

    fn setup() -> (Pipeline, NetGraph) {
        let pipeline = Pipeline::new(
            "test",
            1_000_000.0,
            vec![
                ModuleSpec::new("filter", 1e-8, 1_000_000.0),
                ModuleSpec::new("extract", 1e-7, 200_000.0),
                ModuleSpec::new("render", 5e-8, 50_000.0).requiring_graphics(),
            ],
        );
        let mut g = NetGraph::new();
        let src = g.add_node("src", 1.0, false);
        let mid = g.add_node("mid", 8.0, true);
        let dst = g.add_node("dst", 1.0, true);
        g.add_bidirectional(src, mid, 1e6, 0.01);
        g.add_bidirectional(mid, dst, 2e6, 0.01);
        g.add_bidirectional(src, dst, 0.25e6, 0.03);
        (pipeline, g)
    }

    #[test]
    fn client_server_picks_the_best_feasible_split() {
        let (p, g) = setup();
        let (mapping, delay) = client_server_mapping(&p, &g, 0, 2).unwrap();
        assert_eq!(mapping.path, vec![0, 2]);
        // The source is headless, so the render module must sit on the
        // client; extraction may sit on either side, whichever is cheaper.
        assert!(mapping.groups[1].contains(&2));
        assert!(delay.total > 0.0);
        // No direct link -> no client/server mapping.
        let mut island = NetGraph::new();
        island.add_node("a", 1.0, true);
        island.add_node("b", 1.0, true);
        assert!(client_server_mapping(&p, &island, 0, 1).is_none());
    }

    #[test]
    fn dp_never_loses_to_the_baselines() {
        let (p, g) = setup();
        let dp = optimize(&p, &g, 0, 2).unwrap();
        if let Some((_, cs)) = client_server_mapping(&p, &g, 0, 2) {
            assert!(dp.delay.total <= cs.total + 1e-9);
        }
        if let Some((_, greedy)) = greedy_mapping(&p, &g, 0, 2) {
            assert!(dp.delay.total <= greedy.total + 1e-9);
        }
        if let Some((_, pv)) = paraview_crs_mapping(&p, &g, 0, 1, 2, 1.0) {
            assert!(dp.delay.total <= pv.total + 1e-9);
        }
    }

    #[test]
    fn paraview_overhead_scales_the_delay() {
        let (p, g) = setup();
        let (_, base) = paraview_crs_mapping(&p, &g, 0, 1, 2, 1.0).unwrap();
        let (_, heavy) = paraview_crs_mapping(&p, &g, 0, 1, 2, 1.4).unwrap();
        assert!((heavy.total / base.total - 1.4).abs() < 1e-9);
        // Overhead below 1 is clamped to 1 (ParaView is never modelled as
        // faster than the bare pipeline).
        let (_, clamped) = paraview_crs_mapping(&p, &g, 0, 1, 2, 0.5).unwrap();
        assert!((clamped.total - base.total).abs() < 1e-12);
    }

    #[test]
    fn greedy_reaches_the_client_and_is_feasible() {
        let (p, g) = setup();
        let (mapping, delay) = greedy_mapping(&p, &g, 0, 2).unwrap();
        assert_eq!(*mapping.path.last().unwrap(), 2);
        assert!(delay.total.is_finite());
    }

    #[test]
    fn best_split_on_longer_paths_uses_the_cluster() {
        let (p, g) = setup();
        let via_mid = best_split_on_path(&p, &g, &[0, 1, 2]).unwrap();
        let direct = best_split_on_path(&p, &g, &[0, 2]).unwrap();
        assert!(via_mid.1.total < direct.1.total);
        assert!(best_split_on_path(&p, &g, &[]).is_none());
    }

    #[test]
    fn paraview_requires_at_least_two_modules() {
        let single = Pipeline::new("one", 1e6, vec![ModuleSpec::new("only", 1e-9, 1e5)]);
        let (_, g) = setup();
        assert!(paraview_crs_mapping(&single, &g, 0, 1, 2, 1.0).is_none());
    }
}
