//! The transport-network model used by the pipeline optimizer.
//!
//! A [`NetGraph`] is the optimizer's view of the overlay: node compute
//! powers `p_i`, graphics capability (for the rendering feasibility check),
//! and directed links with *effective* bandwidth `b_{i,j}` and minimum delay
//! `d_{i,j}`.  It can be built directly from a `ricsa-netsim` topology (using
//! each link's mean effective bandwidth) or from active measurements (EPB
//! estimates), which is how the paper's central-management node obtains it.

use ricsa_netsim::node::NodeId;
use ricsa_netsim::topology::Topology;
use serde::{Deserialize, Serialize};

/// A node of the optimizer's network model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetNode {
    /// Display name.
    pub name: String,
    /// Normalized compute power `p_i`.
    pub power: f64,
    /// Whether rendering modules may be placed here.
    pub has_graphics: bool,
}

/// A directed link of the optimizer's network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetLink {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Effective bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Minimum link delay in seconds.
    pub delay: f64,
}

/// Floor applied to link bandwidths in every delay formula, so a degenerate
/// zero-bandwidth link yields a huge-but-finite delay instead of an
/// infinity/NaN that would poison the DP comparisons.
pub const MIN_BANDWIDTH: f64 = 1e-9;

impl NetLink {
    /// Time to move `bytes` across this link: transmission at the guarded
    /// bandwidth plus the minimum link delay (the `m/b + d` term shared by
    /// the DP objective of Eqs. 9-10 and the Eq. 2 evaluator — one
    /// definition, so the optimizer and `evaluate_mapping` can never
    /// disagree about a link's cost).
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth.max(MIN_BANDWIDTH) + self.delay
    }
}

/// The network graph `G = (V, E)` of the paper's Section 4.2.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetGraph {
    nodes: Vec<NetNode>,
    links: Vec<NetLink>,
    /// `incoming[v]` lists link indices ending at `v` (what the DP iterates
    /// over as `adj(v_i)`).
    incoming: Vec<Vec<usize>>,
    /// `outgoing[v]` lists link indices leaving `v`.
    outgoing: Vec<Vec<usize>>,
}

impl NetGraph {
    /// An empty graph.
    pub fn new() -> Self {
        NetGraph::default()
    }

    /// Add a node and return its index.
    pub fn add_node(&mut self, name: impl Into<String>, power: f64, has_graphics: bool) -> usize {
        self.nodes.push(NetNode {
            name: name.into(),
            power,
            has_graphics,
        });
        self.incoming.push(Vec::new());
        self.outgoing.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Add a directed link.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_link(&mut self, from: usize, to: usize, bandwidth: f64, delay: f64) -> usize {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "link endpoint out of range"
        );
        let idx = self.links.len();
        self.links.push(NetLink {
            from,
            to,
            bandwidth,
            delay,
        });
        self.incoming[to].push(idx);
        self.outgoing[from].push(idx);
        idx
    }

    /// Add a symmetric pair of links.
    pub fn add_bidirectional(&mut self, a: usize, b: usize, bandwidth: f64, delay: f64) {
        self.add_link(a, b, bandwidth, delay);
        self.add_link(b, a, bandwidth, delay);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node by index.
    pub fn node(&self, idx: usize) -> &NetNode {
        &self.nodes[idx]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[NetNode] {
        &self.nodes
    }

    /// Link by index.
    pub fn link(&self, idx: usize) -> &NetLink {
        &self.links[idx]
    }

    /// Indices of links ending at `node`.
    pub fn incoming_links(&self, node: usize) -> &[usize] {
        &self.incoming[node]
    }

    /// Indices of links leaving `node`.
    pub fn outgoing_links(&self, node: usize) -> &[usize] {
        &self.outgoing[node]
    }

    /// The directed link from `from` to `to`, if any.
    pub fn link_between(&self, from: usize, to: usize) -> Option<&NetLink> {
        self.outgoing[from]
            .iter()
            .map(|&i| &self.links[i])
            .find(|l| l.to == to)
    }

    /// Find a node index by name.
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Build the optimizer's view from a simulator topology, using each
    /// link's mean effective bandwidth (raw bandwidth reduced by the mean
    /// cross-traffic load) and minimum delay.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut g = NetGraph::new();
        for (_, spec) in topo.nodes() {
            g.add_node(
                spec.name.clone(),
                spec.compute_power,
                spec.capabilities.has_graphics,
            );
        }
        for edge in topo.edges() {
            g.add_link(
                edge.from.0,
                edge.to.0,
                edge.spec.mean_effective_bandwidth(),
                edge.spec.min_delay,
            );
        }
        g
    }

    /// Map a simulator node id to the corresponding graph index (identical
    /// numbering when built via [`NetGraph::from_topology`]).
    pub fn index_of(&self, node: NodeId) -> usize {
        node.0
    }

    /// Replace the bandwidth/delay of the link `from → to` with measured
    /// values (e.g. an EPB estimate); returns false if no such link exists.
    pub fn set_measured(&mut self, from: usize, to: usize, bandwidth: f64, delay: f64) -> bool {
        if let Some(idx) = self.outgoing[from]
            .iter()
            .copied()
            .find(|&i| self.links[i].to == to)
        {
            self.links[idx].bandwidth = bandwidth;
            self.links[idx].delay = delay;
            true
        } else {
            false
        }
    }
}

/// Which way a [`dijkstra`] traversal follows the directed links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EdgeDir {
    /// Relax along outgoing links (distances *from* the seeds).
    Outgoing,
    /// Relax along incoming links in reverse (distances *to* the seeds).
    Incoming,
}

/// Min-heap entry (reverse order on distance, tie-broken by node id for
/// determinism; a NaN distance never enters the heap because `dijkstra`
/// only pushes finite candidates).
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The one Dijkstra shared by the DP's relay closure and transport lower
/// bounds and the sweep's default-route baseline — a single place for the
/// heap, the stale-entry test and the non-negative-weight guard, so the
/// traversals cannot drift apart.
///
/// `init[v]` is node `v`'s seed distance (use `f64::INFINITY` for
/// non-seeds).  `weight` prices one link; negative prices are clamped to
/// zero.  `expand(node, dist)` is called once per settled node — return
/// `false` to keep the node settled but skip relaxing out of it (the DP's
/// dominance pruning).  Returns `(dist, parent)`, with `parent[v] =
/// usize::MAX` for unreached nodes and seeds.
pub(crate) fn dijkstra(
    graph: &NetGraph,
    init: &[f64],
    dir: EdgeDir,
    weight: impl Fn(&NetLink) -> f64,
    mut expand: impl FnMut(usize, f64) -> bool,
) -> (Vec<f64>, Vec<usize>) {
    let n = graph.node_count();
    let mut dist = init.to_vec();
    let mut parent = vec![usize::MAX; n];
    let mut done = vec![false; n];
    let mut heap = std::collections::BinaryHeap::new();
    for (v, &d) in dist.iter().enumerate() {
        if d.is_finite() {
            heap.push(HeapEntry { dist: d, node: v });
        }
    }
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u] || d > dist[u] {
            continue;
        }
        done[u] = true;
        if !expand(u, dist[u]) {
            continue;
        }
        let links = match dir {
            EdgeDir::Outgoing => graph.outgoing_links(u),
            EdgeDir::Incoming => graph.incoming_links(u),
        };
        for &lid in links {
            let link = graph.link(lid);
            let next = match dir {
                EdgeDir::Outgoing => link.to,
                EdgeDir::Incoming => link.from,
            };
            let cand = dist[u] + weight(link).max(0.0);
            if cand < dist[next] {
                dist[next] = cand;
                parent[next] = u;
                heap.push(HeapEntry {
                    dist: cand,
                    node: next,
                });
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_netsim::link::LinkSpec;
    use ricsa_netsim::node::NodeSpec;

    fn triangle() -> NetGraph {
        let mut g = NetGraph::new();
        let a = g.add_node("a", 1.0, true);
        let b = g.add_node("b", 4.0, true);
        let c = g.add_node("c", 2.0, false);
        g.add_bidirectional(a, b, 1e6, 0.01);
        g.add_bidirectional(b, c, 2e6, 0.02);
        g.add_link(a, c, 0.5e6, 0.05);
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 5);
        assert_eq!(g.node(1).power, 4.0);
        assert!(!g.node(2).has_graphics);
        assert_eq!(g.incoming_links(2).len(), 2);
        assert_eq!(g.outgoing_links(0).len(), 2);
        assert!(g.link_between(0, 2).is_some());
        assert!(g.link_between(2, 0).is_none());
        assert_eq!(g.node_by_name("b"), Some(1));
        assert_eq!(g.node_by_name("zzz"), None);
    }

    #[test]
    fn measured_values_override_link_parameters() {
        let mut g = triangle();
        assert!(g.set_measured(0, 1, 9e6, 0.001));
        let l = g.link_between(0, 1).unwrap();
        assert_eq!(l.bandwidth, 9e6);
        assert_eq!(l.delay, 0.001);
        assert!(!g.set_measured(2, 0, 1.0, 1.0));
    }

    #[test]
    fn from_topology_preserves_structure() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeSpec::workstation("a", 1.5));
        let b = topo.add_node(NodeSpec::cluster("b", 6.0, 8));
        let c = topo.add_node(NodeSpec::headless("c", 1.0));
        topo.connect(a, b, LinkSpec::from_mbps(100.0, 0.01));
        topo.connect(b, c, LinkSpec::from_mbps(10.0, 0.02));
        let g = NetGraph::from_topology(&topo);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 4);
        assert_eq!(g.node(g.index_of(a)).power, 1.5);
        assert!(!g.node(g.index_of(c)).has_graphics);
        let l = g.link_between(0, 1).unwrap();
        assert!((l.bandwidth - 12.5e6).abs() < 1.0);
        assert_eq!(l.delay, 0.01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_link_endpoints_panic() {
        let mut g = NetGraph::new();
        g.add_node("a", 1.0, true);
        g.add_link(0, 5, 1.0, 0.0);
    }
}
