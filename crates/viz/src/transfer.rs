//! Transfer functions for volume ray casting.
//!
//! The paper's ray-casting cost model notes that "the performance estimation
//! for ray casting is much harder ... because of unlimited possibilities of
//! underlying transfer functions".  A transfer function maps a scalar sample
//! to an RGBA contribution; here it is a piecewise-linear ramp over control
//! points, which covers the standard cases (isosurface-like shells, smoky
//! interiors, banded tissue maps).

use serde::{Deserialize, Serialize};

/// One control point of a piecewise-linear transfer function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPoint {
    /// Scalar value at which this point applies.
    pub value: f32,
    /// RGB colour, each in `[0, 1]`.
    pub color: [f32; 3],
    /// Opacity in `[0, 1]` (per unit sample distance).
    pub opacity: f32,
}

/// A piecewise-linear transfer function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    points: Vec<ControlPoint>,
}

impl TransferFunction {
    /// Build from control points; the points are sorted by value.
    ///
    /// # Panics
    /// Panics if no control points are supplied.
    pub fn new(mut points: Vec<ControlPoint>) -> Self {
        assert!(!points.is_empty(), "transfer function needs control points");
        points.sort_by(|a, b| {
            a.value
                .partial_cmp(&b.value)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        TransferFunction { points }
    }

    /// A grayscale ramp: transparent black at `lo`, opaque white at `hi`.
    pub fn grayscale_ramp(lo: f32, hi: f32) -> Self {
        TransferFunction::new(vec![
            ControlPoint {
                value: lo,
                color: [0.0; 3],
                opacity: 0.0,
            },
            ControlPoint {
                value: hi,
                color: [1.0; 3],
                opacity: 0.9,
            },
        ])
    }

    /// A "hot metal" style ramp useful for jet/blast volumes.
    pub fn hot(lo: f32, hi: f32) -> Self {
        let mid = lo + 0.5 * (hi - lo);
        TransferFunction::new(vec![
            ControlPoint {
                value: lo,
                color: [0.0, 0.0, 0.1],
                opacity: 0.0,
            },
            ControlPoint {
                value: mid,
                color: [0.9, 0.3, 0.0],
                opacity: 0.25,
            },
            ControlPoint {
                value: hi,
                color: [1.0, 0.9, 0.3],
                opacity: 0.9,
            },
        ])
    }

    /// A narrow opaque band around `value` (isosurface-like shell).
    pub fn band(value: f32, width: f32, color: [f32; 3]) -> Self {
        let w = width.max(1e-6);
        TransferFunction::new(vec![
            ControlPoint {
                value: value - w,
                color,
                opacity: 0.0,
            },
            ControlPoint {
                value,
                color,
                opacity: 0.95,
            },
            ControlPoint {
                value: value + w,
                color,
                opacity: 0.0,
            },
        ])
    }

    /// Evaluate the transfer function at a scalar value, returning
    /// `(rgb, opacity)`.
    pub fn evaluate(&self, v: f32) -> ([f32; 3], f32) {
        let pts = &self.points;
        if v <= pts[0].value {
            return (pts[0].color, pts[0].opacity);
        }
        if v >= pts[pts.len() - 1].value {
            let last = &pts[pts.len() - 1];
            return (last.color, last.opacity);
        }
        for w in pts.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if v >= a.value && v <= b.value {
                let span = (b.value - a.value).max(1e-12);
                let t = (v - a.value) / span;
                let lerp = |x: f32, y: f32| x + t * (y - x);
                let color = [
                    lerp(a.color[0], b.color[0]),
                    lerp(a.color[1], b.color[1]),
                    lerp(a.color[2], b.color[2]),
                ];
                return (color, lerp(a.opacity, b.opacity));
            }
        }
        let last = &pts[pts.len() - 1];
        (last.color, last.opacity)
    }

    /// The scalar range over which the function has nonzero opacity.
    pub fn opaque_range(&self) -> Option<(f32, f32)> {
        let mut lo = None;
        let mut hi = None;
        for p in &self.points {
            if p.opacity > 0.0 {
                lo = Some(lo.map_or(p.value, |v: f32| v.min(p.value)));
                hi = Some(hi.map_or(p.value, |v: f32| v.max(p.value)));
            }
        }
        match (lo, hi) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_interpolates_linearly() {
        let tf = TransferFunction::grayscale_ramp(0.0, 1.0);
        let (c, o) = tf.evaluate(0.5);
        assert!((c[0] - 0.5).abs() < 1e-6);
        assert!((o - 0.45).abs() < 1e-6);
        // Clamping outside the range.
        assert_eq!(tf.evaluate(-1.0).1, 0.0);
        assert!((tf.evaluate(2.0).1 - 0.9).abs() < 1e-6);
    }

    #[test]
    fn band_is_transparent_away_from_the_band() {
        let tf = TransferFunction::band(0.5, 0.1, [1.0, 0.0, 0.0]);
        assert_eq!(tf.evaluate(0.0).1, 0.0);
        assert_eq!(tf.evaluate(1.0).1, 0.0);
        assert!(tf.evaluate(0.5).1 > 0.9);
        assert!(tf.evaluate(0.45).1 > 0.0);
        let (lo, hi) = tf.opaque_range().unwrap();
        assert!((lo - 0.5).abs() < 1e-6 && (hi - 0.5).abs() < 1e-6);
    }

    #[test]
    fn points_are_sorted_on_construction() {
        let tf = TransferFunction::new(vec![
            ControlPoint {
                value: 1.0,
                color: [1.0; 3],
                opacity: 1.0,
            },
            ControlPoint {
                value: 0.0,
                color: [0.0; 3],
                opacity: 0.0,
            },
        ]);
        assert!(tf.evaluate(0.25).1 < tf.evaluate(0.75).1);
    }

    #[test]
    fn fully_transparent_function_has_no_opaque_range() {
        let tf = TransferFunction::new(vec![ControlPoint {
            value: 0.0,
            color: [0.0; 3],
            opacity: 0.0,
        }]);
        assert!(tf.opaque_range().is_none());
    }

    #[test]
    #[should_panic(expected = "needs control points")]
    fn empty_control_points_panic() {
        let _ = TransferFunction::new(vec![]);
    }

    #[test]
    fn hot_ramp_is_monotone_in_opacity() {
        let tf = TransferFunction::hot(0.0, 1.0);
        let samples: Vec<f32> = (0..=10).map(|i| tf.evaluate(i as f32 / 10.0).1).collect();
        assert!(samples.windows(2).all(|w| w[1] >= w[0] - 1e-6));
    }
}
