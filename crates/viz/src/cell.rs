//! Cube-cell geometry and the canonical 15 marching-cubes case classes.
//!
//! A cell has 8 corners; thresholding against the isovalue gives one of 256
//! corner configurations.  The classic marching-cubes presentation groups
//! those 256 configurations into **15 equivalence classes** under the 24
//! rotations of the cube plus inside/outside complementation — the same 15
//! cases the paper's isosurface cost model (Eq. 5) collects statistics over.
//!
//! Rather than hard-coding a 256-entry lookup copied from reference code,
//! the class of every configuration is derived *from the symmetry group
//! itself* at first use: the canonical representative of a configuration is
//! the smallest bitmask in its orbit under rotation and complement, and the
//! class index is the rank of that representative.  A unit test pins the
//! class count to exactly 15.

use std::sync::OnceLock;

/// Number of marching-cubes equivalence classes (including the empty case).
pub const CASE_CLASS_COUNT: usize = 15;

/// Voxel-space offsets of the 8 cell corners, in the order used throughout
/// this crate (x varies fastest, then y, then z).
pub const CORNER_OFFSETS: [[usize; 3]; 8] = [
    [0, 0, 0],
    [1, 0, 0],
    [0, 1, 0],
    [1, 1, 0],
    [0, 0, 1],
    [1, 0, 1],
    [0, 1, 1],
    [1, 1, 1],
];

/// The corner configuration of a cell: bit `i` is set when corner `i` is at
/// or above the isovalue.
pub fn corner_config(values: &[f32; 8], isovalue: f32) -> u8 {
    let mut config = 0u8;
    for (i, &v) in values.iter().enumerate() {
        if v >= isovalue {
            config |= 1 << i;
        }
    }
    config
}

/// The marching-cubes case class (0..15) of a corner configuration.
///
/// Class 0 is always the empty/full configuration (no isosurface crosses the
/// cell); the remaining classes are numbered by ascending canonical
/// representative.
pub fn case_class(config: u8) -> usize {
    class_table()[config as usize]
}

/// Whether a configuration produces any isosurface geometry at all.
pub fn is_active(config: u8) -> bool {
    config != 0 && config != 0xFF
}

/// The three corner-axis permutations generating the rotation group,
/// expressed as corner index permutations: `perm[i]` is where corner `i`
/// moves to.
fn rotation_generators() -> [[usize; 8]; 3] {
    // Rotations by 90 degrees about the x, y and z axes.  The corner at
    // (x, y, z) maps to:
    //   Rx: (x, 1-z, y)     Ry: (z, y, 1-x)     Rz: (1-y, x, z)
    let mut gens = [[0usize; 8]; 3];
    for (g, map) in gens.iter_mut().zip([
        |c: [usize; 3]| [c[0], 1 - c[2], c[1]],
        |c: [usize; 3]| [c[2], c[1], 1 - c[0]],
        |c: [usize; 3]| [1 - c[1], c[0], c[2]],
    ]) {
        for (i, &corner) in CORNER_OFFSETS.iter().enumerate() {
            let target = map(corner);
            let j = CORNER_OFFSETS
                .iter()
                .position(|&c| c == target)
                .expect("rotated corner must be a corner");
            g[i] = j;
        }
    }
    gens
}

/// All 24 rotation permutations of the cube corners.
fn all_rotations() -> Vec<[usize; 8]> {
    let gens = rotation_generators();
    let identity: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
    let compose = |a: &[usize; 8], b: &[usize; 8]| -> [usize; 8] {
        let mut out = [0usize; 8];
        for i in 0..8 {
            out[i] = b[a[i]];
        }
        out
    };
    let mut rotations = vec![identity];
    // Breadth-first closure under the generators.
    let mut frontier = vec![identity];
    while let Some(r) = frontier.pop() {
        for g in &gens {
            let candidate = compose(&r, g);
            if !rotations.contains(&candidate) {
                rotations.push(candidate);
                frontier.push(candidate);
            }
        }
    }
    rotations
}

fn apply_permutation(config: u8, perm: &[usize; 8]) -> u8 {
    let mut out = 0u8;
    for (i, &target) in perm.iter().enumerate() {
        if config & (1 << i) != 0 {
            out |= 1 << target;
        }
    }
    out
}

fn class_table() -> &'static [usize; 256] {
    static TABLE: OnceLock<[usize; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let rotations = all_rotations();
        // Canonical representative: minimum over the orbit of {config,
        // complement(config)} under all rotations.
        let canonical = |config: u8| -> u8 {
            let mut best = u8::MAX;
            for r in &rotations {
                let a = apply_permutation(config, r);
                let b = apply_permutation(!config, r);
                best = best.min(a).min(b);
            }
            best
        };
        let mut reps: Vec<u8> = (0u16..256).map(|c| canonical(c as u8)).collect::<Vec<_>>();
        let mut unique: Vec<u8> = reps.clone();
        unique.sort_unstable();
        unique.dedup();
        let mut table = [0usize; 256];
        for (config, rep) in reps.drain(..).enumerate() {
            let class = unique
                .binary_search(&rep)
                .expect("representative must be in the unique list");
            table[config] = class;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rotation_group_has_24_elements() {
        assert_eq!(all_rotations().len(), 24);
    }

    #[test]
    fn there_are_exactly_15_case_classes() {
        let classes: HashSet<usize> = (0u16..256).map(|c| case_class(c as u8)).collect();
        assert_eq!(classes.len(), CASE_CLASS_COUNT);
        // Classes are contiguous 0..15.
        assert_eq!(*classes.iter().max().unwrap(), CASE_CLASS_COUNT - 1);
    }

    #[test]
    fn empty_and_full_share_the_trivial_class() {
        assert_eq!(case_class(0x00), case_class(0xFF));
        assert_eq!(case_class(0x00), 0);
        assert!(!is_active(0x00));
        assert!(!is_active(0xFF));
        assert!(is_active(0x01));
    }

    #[test]
    fn class_is_invariant_under_rotation_and_complement() {
        let rotations = all_rotations();
        for config in 0u16..256 {
            let config = config as u8;
            let class = case_class(config);
            assert_eq!(case_class(!config), class, "complement of {config:#x}");
            for r in &rotations {
                assert_eq!(
                    case_class(apply_permutation(config, r)),
                    class,
                    "rotation of {config:#x}"
                );
            }
        }
    }

    #[test]
    fn single_corner_configs_share_one_class() {
        let class = case_class(0x01);
        for corner in 0..8 {
            assert_eq!(case_class(1 << corner), class);
        }
        // A single corner is a different class from two opposite corners.
        assert_ne!(case_class(0x01), case_class(0x81));
    }

    #[test]
    fn corner_config_thresholding() {
        let values = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        assert_eq!(corner_config(&values, 0.5), 0b1010_1010);
        assert_eq!(corner_config(&values, -1.0), 0xFF);
        assert_eq!(corner_config(&values, 2.0), 0x00);
        // Ties count as inside (>= isovalue).
        assert_eq!(corner_config(&values, 1.0), 0b1010_1010);
    }

    #[test]
    fn corner_offsets_are_the_unit_cube() {
        let set: HashSet<[usize; 3]> = CORNER_OFFSETS.iter().copied().collect();
        assert_eq!(set.len(), 8);
        assert!(set.iter().all(|c| c.iter().all(|&v| v <= 1)));
    }
}
