//! Streamline generation in vector fields.
//!
//! The third visualization technique the paper models (Section 4.4.3): the
//! cost is dominated by the number of seed points and the number of advection
//! steps per streamline, with a per-advection cost measured on each machine.
//! Integration uses classical fourth-order Runge–Kutta.

use ricsa_vizdata::field::VectorField;
use serde::{Deserialize, Serialize};

/// Configuration of a streamline tracing pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamlineConfig {
    /// Integration step size, voxels.
    pub step: f32,
    /// Maximum number of advection steps per streamline (the paper's
    /// `n_steps`).
    pub max_steps: usize,
    /// Terminate a streamline when the local speed drops below this value.
    pub min_speed: f32,
}

impl Default for StreamlineConfig {
    fn default() -> Self {
        StreamlineConfig {
            step: 0.5,
            max_steps: 256,
            min_speed: 1e-4,
        }
    }
}

/// One traced streamline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Streamline {
    /// The polyline vertices, starting at the seed point.
    pub points: Vec<[f32; 3]>,
}

impl Streamline {
    /// Number of advection steps actually taken.
    pub fn steps(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Total arc length of the polyline.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let d = [
                    (w[1][0] - w[0][0]) as f64,
                    (w[1][1] - w[0][1]) as f64,
                    (w[1][2] - w[0][2]) as f64,
                ];
                (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
            })
            .sum()
    }
}

/// A set of streamlines traced from a set of seeds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamlineSet {
    /// One streamline per seed, in seed order.
    pub lines: Vec<Streamline>,
}

impl StreamlineSet {
    /// Total number of advection steps across all streamlines (the cost
    /// model's `n_seeds × n_steps` upper bound is attained only when no line
    /// exits the domain early).
    pub fn total_steps(&self) -> usize {
        self.lines.iter().map(|l| l.steps()).sum()
    }

    /// Size in bytes when shipped downstream (three `f32` per vertex).
    pub fn nbytes(&self) -> usize {
        self.lines.iter().map(|l| l.points.len() * 12).sum()
    }
}

/// Trace one streamline from `seed` through `field`.
pub fn trace_streamline(
    field: &VectorField,
    seed: [f32; 3],
    config: &StreamlineConfig,
) -> Streamline {
    let d = field.dims;
    let inside = |p: [f32; 3]| {
        p[0] >= 0.0
            && p[1] >= 0.0
            && p[2] >= 0.0
            && p[0] <= (d.nx.saturating_sub(1)) as f32
            && p[1] <= (d.ny.saturating_sub(1)) as f32
            && p[2] <= (d.nz.saturating_sub(1)) as f32
    };
    let sample = |p: [f32; 3]| field.sample_trilinear(p[0], p[1], p[2]);
    let mut points = vec![seed];
    let mut p = seed;
    if !inside(p) {
        return Streamline { points };
    }
    let h = config.step.max(1e-3);
    for _ in 0..config.max_steps {
        let k1 = sample(p);
        let speed = (k1[0] * k1[0] + k1[1] * k1[1] + k1[2] * k1[2]).sqrt();
        if speed < config.min_speed {
            break;
        }
        let advance = |base: [f32; 3], k: [f32; 3], scale: f32| {
            [
                base[0] + scale * k[0],
                base[1] + scale * k[1],
                base[2] + scale * k[2],
            ]
        };
        let k2 = sample(advance(p, k1, h / 2.0));
        let k3 = sample(advance(p, k2, h / 2.0));
        let k4 = sample(advance(p, k3, h));
        let next = [
            p[0] + h / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]),
            p[1] + h / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]),
            p[2] + h / 6.0 * (k1[2] + 2.0 * k2[2] + 2.0 * k3[2] + k4[2]),
        ];
        if !inside(next) {
            break;
        }
        points.push(next);
        p = next;
    }
    Streamline { points }
}

/// Trace streamlines from all `seeds`.
pub fn trace_streamlines(
    field: &VectorField,
    seeds: &[[f32; 3]],
    config: &StreamlineConfig,
) -> StreamlineSet {
    StreamlineSet {
        lines: seeds
            .iter()
            .map(|&s| trace_streamline(field, s, config))
            .collect(),
    }
}

/// Generate a regular grid of `n × n` seed points on the plane `z = z_plane`.
pub fn grid_seeds(field: &VectorField, n: usize, z_plane: f32) -> Vec<[f32; 3]> {
    let d = field.dims;
    let mut seeds = Vec::with_capacity(n * n);
    if n == 0 {
        return seeds;
    }
    for j in 0..n {
        for i in 0..n {
            let fx = (i as f32 + 0.5) / n as f32 * (d.nx.saturating_sub(1)) as f32;
            let fy = (j as f32 + 0.5) / n as f32 * (d.ny.saturating_sub(1)) as f32;
            seeds.push([fx, fy, z_plane]);
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_vizdata::field::Dims;

    /// A uniform flow along +x.
    fn uniform_flow(n: usize) -> VectorField {
        VectorField::from_fn(Dims::cube(n), |_, _, _| [1.0, 0.0, 0.0])
    }

    /// Rigid rotation about the volume center in the x-y plane.
    fn rotational_flow(n: usize) -> VectorField {
        let c = (n as f32 - 1.0) / 2.0;
        VectorField::from_fn(Dims::cube(n), move |x, y, _| {
            [-(y as f32 - c), x as f32 - c, 0.0]
        })
    }

    #[test]
    fn uniform_flow_gives_straight_lines() {
        let field = uniform_flow(16);
        let line = trace_streamline(&field, [1.0, 8.0, 8.0], &StreamlineConfig::default());
        assert!(line.steps() > 10);
        // y and z never change.
        assert!(line.points.iter().all(|p| (p[1] - 8.0).abs() < 1e-4));
        assert!(line.points.iter().all(|p| (p[2] - 8.0).abs() < 1e-4));
        // Terminates at the +x boundary.
        let last = line.points.last().unwrap();
        assert!(last[0] <= 15.0);
        assert!(last[0] > 13.0);
        assert!((line.length() - (last[0] - 1.0) as f64).abs() < 0.1);
    }

    #[test]
    fn rotational_flow_stays_at_constant_radius() {
        let n = 33;
        let field = rotational_flow(n);
        let c = (n as f32 - 1.0) / 2.0;
        let seed = [c + 6.0, c, 8.0];
        let config = StreamlineConfig {
            step: 0.05,
            max_steps: 2000,
            min_speed: 1e-6,
        };
        let line = trace_streamline(&field, seed, &config);
        assert!(line.steps() > 500);
        for p in &line.points {
            let r = ((p[0] - c).powi(2) + (p[1] - c).powi(2)).sqrt();
            assert!((r - 6.0).abs() < 0.05, "radius drifted to {r}");
        }
    }

    #[test]
    fn zero_field_terminates_immediately() {
        let field = VectorField::zeros(Dims::cube(8));
        let line = trace_streamline(&field, [4.0, 4.0, 4.0], &StreamlineConfig::default());
        assert_eq!(line.steps(), 0);
        assert_eq!(line.length(), 0.0);
    }

    #[test]
    fn seed_outside_domain_yields_single_point() {
        let field = uniform_flow(8);
        let line = trace_streamline(&field, [-5.0, 0.0, 0.0], &StreamlineConfig::default());
        assert_eq!(line.points.len(), 1);
    }

    #[test]
    fn max_steps_bounds_the_trace() {
        let field = rotational_flow(33);
        let config = StreamlineConfig {
            step: 0.1,
            max_steps: 50,
            min_speed: 1e-6,
        };
        let line = trace_streamline(&field, [22.0, 16.0, 8.0], &config);
        assert!(line.steps() <= 50);
    }

    #[test]
    fn seed_grid_and_set_accounting() {
        let field = uniform_flow(16);
        let seeds = grid_seeds(&field, 4, 8.0);
        assert_eq!(seeds.len(), 16);
        assert!(seeds.iter().all(|s| s[2] == 8.0));
        let set = trace_streamlines(&field, &seeds, &StreamlineConfig::default());
        assert_eq!(set.lines.len(), 16);
        assert!(set.total_steps() > 0);
        assert_eq!(
            set.nbytes(),
            set.lines.iter().map(|l| l.points.len() * 12).sum::<usize>()
        );
        assert!(grid_seeds(&field, 0, 0.0).is_empty());
    }
}
