//! Visualization algorithms and performance (cost) models for RICSA.
//!
//! The paper's visualization pipeline (Fig. 3) runs filtering,
//! transformation (isosurface extraction), and rendering modules, and its
//! central-management node needs *cost models* for those modules
//! (Section 4.4) to drive the dynamic-programming pipeline mapping.  This
//! crate implements both halves:
//!
//! **Algorithms**
//! * [`isosurface`] — block-level isosurface extraction over an octree with
//!   per-cell classification into the canonical 15 marching-cubes case
//!   classes (computed by symmetry reduction in [`cell`]) and tetrahedral
//!   triangulation,
//! * [`mod@raycast`] — orthographic ray casting with piecewise-linear transfer
//!   functions ([`transfer`]) and empty-block skipping,
//! * [`streamline`] — fourth-order Runge–Kutta streamline advection,
//! * [`render`] — a software z-buffer rasterizer turning triangle meshes
//!   into shaded RGBA framebuffers ([`image`]), viewed through an
//!   orthographic [`camera`],
//! * [`filtering`] — the pipeline's filtering/preprocessing stage.
//!
//! **Cost models** ([`cost`])
//! * isosurface extraction (paper Eqs. 4–6), ray casting (Eq. 7) and
//!   streamline generation (Eq. 8), with calibration routines that measure
//!   `T_Case(i)`, `P_Case(i)`, `t_sample` and `T_advection` on test volumes
//!   exactly as Section 4.4 prescribes.

#![deny(missing_docs)]

pub mod camera;
pub mod cell;
pub mod cost;
pub mod filtering;
pub mod image;
pub mod isosurface;
pub mod mesh;
pub mod raycast;
pub mod render;
pub mod streamline;
pub mod transfer;

pub use camera::Camera;
pub use cell::{case_class, CASE_CLASS_COUNT};
pub use cost::{
    IsosurfaceCostModel, ModuleCost, PipelineCostDb, RaycastCostModel, StreamlineCostModel,
};
pub use image::Image;
pub use isosurface::{extract_isosurface, CaseHistogram, IsosurfaceResult};
pub use mesh::TriangleMesh;
pub use raycast::{raycast, RaycastConfig};
pub use render::render_mesh;
pub use streamline::{trace_streamlines, StreamlineConfig, StreamlineSet};
pub use transfer::TransferFunction;
