//! RGBA framebuffers and image encoding.
//!
//! The rendering module converts geometry or volume samples into a
//! "pixel-based image" (paper Fig. 3); the Ajax front end then saves each
//! image as a fixed-size file delivered to the browser.  This module provides
//! the framebuffer type, binary PPM encoding for inspection, and a small
//! difference metric used by tests.

use serde::{Deserialize, Serialize};

/// An 8-bit RGBA image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Pixel data, row-major, 4 bytes per pixel (RGBA).
    pub pixels: Vec<u8>,
}

impl Image {
    /// A black, fully transparent image.
    pub fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            pixels: vec![0; width * height * 4],
        }
    }

    /// A solid-colour image.
    pub fn filled(width: usize, height: usize, rgba: [u8; 4]) -> Self {
        let mut pixels = Vec::with_capacity(width * height * 4);
        for _ in 0..width * height {
            pixels.extend_from_slice(&rgba);
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// The RGBA value at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> [u8; 4] {
        let i = (y * self.width + x) * 4;
        [
            self.pixels[i],
            self.pixels[i + 1],
            self.pixels[i + 2],
            self.pixels[i + 3],
        ]
    }

    /// Set the RGBA value at `(x, y)`.
    pub fn set(&mut self, x: usize, y: usize, rgba: [u8; 4]) {
        let i = (y * self.width + x) * 4;
        self.pixels[i..i + 4].copy_from_slice(&rgba);
    }

    /// Size of the raw pixel data in bytes.
    pub fn nbytes(&self) -> usize {
        self.pixels.len()
    }

    /// Fraction of pixels that are not fully transparent black.
    pub fn coverage(&self) -> f64 {
        if self.width * self.height == 0 {
            return 0.0;
        }
        let lit = self
            .pixels
            .chunks_exact(4)
            .filter(|p| p[0] != 0 || p[1] != 0 || p[2] != 0 || p[3] != 0)
            .count();
        lit as f64 / (self.width * self.height) as f64
    }

    /// Mean absolute per-channel difference to another image of the same
    /// size (0 = identical, 255 = maximally different).
    pub fn mean_abs_diff(&self, other: &Image) -> Option<f64> {
        if self.width != other.width || self.height != other.height {
            return None;
        }
        if self.pixels.is_empty() {
            return Some(0.0);
        }
        let total: u64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| (*a as i32 - *b as i32).unsigned_abs() as u64)
            .sum();
        Some(total as f64 / self.pixels.len() as f64)
    }

    /// Encode as a binary PPM (P6) image, dropping the alpha channel.
    pub fn encode_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in self.pixels.chunks_exact(4) {
            out.extend_from_slice(&p[..3]);
        }
        out
    }

    /// Encode as a compact RGBA payload with a 16-byte header — the
    /// "fixed-size file" format the Ajax front end serves to clients.
    pub fn encode_raw(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.pixels.len());
        out.extend_from_slice(b"RICSAIMG");
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Decode the format produced by [`Image::encode_raw`].
    pub fn decode_raw(buf: &[u8]) -> Option<Image> {
        if buf.len() < 16 || &buf[..8] != b"RICSAIMG" {
            return None;
        }
        let width = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
        let height = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]) as usize;
        let expected = width * height * 4;
        if buf.len() != 16 + expected {
            return None;
        }
        Some(Image {
            width,
            height,
            pixels: buf[16..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_pixel_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.nbytes(), 48);
        assert_eq!(img.get(2, 1), [0, 0, 0, 0]);
        img.set(2, 1, [10, 20, 30, 255]);
        assert_eq!(img.get(2, 1), [10, 20, 30, 255]);
        assert!(img.coverage() > 0.0 && img.coverage() < 0.1);
        let solid = Image::filled(2, 2, [1, 2, 3, 4]);
        assert_eq!(solid.coverage(), 1.0);
    }

    #[test]
    fn diff_metric() {
        let a = Image::filled(2, 2, [10, 10, 10, 10]);
        let b = Image::filled(2, 2, [20, 20, 20, 20]);
        assert_eq!(a.mean_abs_diff(&a), Some(0.0));
        assert_eq!(a.mean_abs_diff(&b), Some(10.0));
        let c = Image::new(3, 2);
        assert_eq!(a.mean_abs_diff(&c), None);
    }

    #[test]
    fn ppm_encoding_has_header_and_rgb_payload() {
        let img = Image::filled(2, 1, [1, 2, 3, 255]);
        let ppm = img.encode_ppm();
        assert!(ppm.starts_with(b"P6\n2 1\n255\n"));
        assert_eq!(&ppm[ppm.len() - 6..], &[1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn raw_round_trip() {
        let mut img = Image::new(3, 2);
        img.set(1, 1, [5, 6, 7, 8]);
        let encoded = img.encode_raw();
        let back = Image::decode_raw(&encoded).unwrap();
        assert_eq!(back, img);
        assert!(Image::decode_raw(&encoded[..10]).is_none());
        let mut corrupted = encoded.clone();
        corrupted[0] = b'X';
        assert!(Image::decode_raw(&corrupted).is_none());
        let truncated = &encoded[..encoded.len() - 1];
        assert!(Image::decode_raw(truncated).is_none());
    }

    #[test]
    fn empty_image_edge_cases() {
        let img = Image::new(0, 0);
        assert_eq!(img.coverage(), 0.0);
        assert_eq!(img.mean_abs_diff(&Image::new(0, 0)), Some(0.0));
    }
}
