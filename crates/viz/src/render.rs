//! Software rasterization of triangle meshes.
//!
//! The rendering module is the last stage of the paper's pipeline: it turns
//! the transformed geometry into a pixel image.  The hosts in the Fig. 8
//! deployment differ in whether they even have a graphics card, which is why
//! rendering placement is a feasibility constraint in the optimizer; this
//! software rasterizer plays the role of that stage with a z-buffer and
//! Lambertian shading.

use crate::camera::Camera;
use crate::image::Image;
use crate::mesh::TriangleMesh;

/// Rasterize `mesh` into an RGBA image using the given camera and a single
/// directional light along the view direction.
pub fn render_mesh(mesh: &TriangleMesh, camera: &Camera, base_color: [f32; 3]) -> Image {
    let mut image = Image::new(camera.width, camera.height);
    let mut depth = vec![f32::INFINITY; camera.width * camera.height];
    let (center, half_extent) = match mesh.bounding_box() {
        Some((lo, hi)) => {
            let center = [
                (lo[0] + hi[0]) / 2.0,
                (lo[1] + hi[1]) / 2.0,
                (lo[2] + hi[2]) / 2.0,
            ];
            let half = ((hi[0] - lo[0]).max(hi[1] - lo[1]).max(hi[2] - lo[2]) / 2.0).max(1e-3);
            (center, half)
        }
        None => return image,
    };
    let (_, _, forward) = camera.basis();

    for tri in mesh.indices.chunks_exact(3) {
        let idx = [tri[0] as usize, tri[1] as usize, tri[2] as usize];
        let projected: Vec<(f32, f32, f32)> = idx
            .iter()
            .map(|&i| camera.project(mesh.positions[i], center, half_extent))
            .collect();
        // Lambert shading from the mean normal.
        let n = {
            let mut acc = [0.0f32; 3];
            for &i in &idx {
                for (a, normal) in acc.iter_mut().zip(mesh.normals[i]) {
                    *a += normal;
                }
            }
            let len = (acc[0] * acc[0] + acc[1] * acc[1] + acc[2] * acc[2])
                .sqrt()
                .max(1e-6);
            [acc[0] / len, acc[1] / len, acc[2] / len]
        };
        let lambert = (-(n[0] * forward[0] + n[1] * forward[1] + n[2] * forward[2]))
            .abs()
            .clamp(0.1, 1.0);
        let shade = |c: f32| ((c * (0.25 + 0.75 * lambert)).clamp(0.0, 1.0) * 255.0) as u8;
        let color = [
            shade(base_color[0]),
            shade(base_color[1]),
            shade(base_color[2]),
            255,
        ];

        rasterize_triangle(&mut image, &mut depth, &projected, color);
    }
    image
}

fn rasterize_triangle(
    image: &mut Image,
    depth: &mut [f32],
    projected: &[(f32, f32, f32)],
    color: [u8; 4],
) {
    let (w, h) = (image.width as f32, image.height as f32);
    let xs = [projected[0].0, projected[1].0, projected[2].0];
    let ys = [projected[0].1, projected[1].1, projected[2].1];
    let zs = [projected[0].2, projected[1].2, projected[2].2];
    let min_x = xs
        .iter()
        .cloned()
        .fold(f32::INFINITY, f32::min)
        .floor()
        .max(0.0);
    let max_x = xs
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max)
        .ceil()
        .min(w - 1.0);
    let min_y = ys
        .iter()
        .cloned()
        .fold(f32::INFINITY, f32::min)
        .floor()
        .max(0.0);
    let max_y = ys
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max)
        .ceil()
        .min(h - 1.0);
    if min_x > max_x || min_y > max_y {
        return;
    }
    let area = (xs[1] - xs[0]) * (ys[2] - ys[0]) - (xs[2] - xs[0]) * (ys[1] - ys[0]);
    if area.abs() < 1e-9 {
        return;
    }
    for py in min_y as usize..=max_y as usize {
        for px in min_x as usize..=max_x as usize {
            let p = (px as f32 + 0.5, py as f32 + 0.5);
            // Barycentric coordinates.
            let w0 = ((xs[1] - p.0) * (ys[2] - p.1) - (xs[2] - p.0) * (ys[1] - p.1)) / area;
            let w1 = ((xs[2] - p.0) * (ys[0] - p.1) - (xs[0] - p.0) * (ys[2] - p.1)) / area;
            let w2 = 1.0 - w0 - w1;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let z = w0 * zs[0] + w1 * zs[1] + w2 * zs[2];
            let di = py * image.width + px;
            if z < depth[di] {
                depth[di] = z;
                image.set(px, py, color);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isosurface::extract_isosurface;
    use ricsa_vizdata::field::{Dims, ScalarField};

    fn sphere_mesh(n: usize) -> TriangleMesh {
        let c = (n as f32 - 1.0) / 2.0;
        let radius = n as f32 / 4.0;
        let field = ScalarField::from_fn(Dims::cube(n), move |x, y, z| {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            let dz = z as f32 - c;
            radius - (dx * dx + dy * dy + dz * dz).sqrt()
        });
        extract_isosurface(&field, 0.0, 8).mesh
    }

    #[test]
    fn empty_mesh_renders_black_image() {
        let img = render_mesh(
            &TriangleMesh::new(),
            &Camera::with_viewport(32, 32),
            [1.0; 3],
        );
        assert_eq!(img.coverage(), 0.0);
        assert_eq!(img.width, 32);
    }

    #[test]
    fn sphere_renders_as_a_centered_disk() {
        let mesh = sphere_mesh(24);
        let cam = Camera::with_viewport(64, 64);
        let img = render_mesh(&mesh, &cam, [0.9, 0.5, 0.2]);
        // The camera fits the mesh bounding box to the viewport, so the
        // sphere projects to a disk covering roughly pi/4 of the pixels.
        let cov = img.coverage();
        assert!(cov > 0.5 && cov < 0.95, "coverage {cov}");
        // The center pixel is lit, the corners are not.
        assert_ne!(img.get(32, 32), [0, 0, 0, 0]);
        assert_eq!(img.get(0, 0), [0, 0, 0, 0]);
        assert_eq!(img.get(63, 63), [0, 0, 0, 0]);
    }

    #[test]
    fn zooming_in_increases_coverage() {
        let mesh = sphere_mesh(20);
        let mut cam = Camera::with_viewport(48, 48);
        let cov1 = render_mesh(&mesh, &cam, [1.0; 3]).coverage();
        cam.zoom = 2.0;
        let cov2 = render_mesh(&mesh, &cam, [1.0; 3]).coverage();
        assert!(cov2 > cov1, "zoomed coverage {cov2} should exceed {cov1}");
    }

    #[test]
    fn rotation_changes_the_image_but_not_wildly() {
        let mesh = sphere_mesh(20);
        let cam1 = Camera::with_viewport(48, 48);
        let mut cam2 = cam1;
        cam2.rotate(0.8, 0.3);
        let a = render_mesh(&mesh, &cam1, [1.0; 3]);
        let b = render_mesh(&mesh, &cam2, [1.0; 3]);
        // A sphere looks similar from every angle: coverage within a band.
        assert!((a.coverage() - b.coverage()).abs() < 0.1);
        // But shading/rasterization differs pixel-wise.
        assert!(a.mean_abs_diff(&b).unwrap() > 0.0);
    }

    #[test]
    fn degenerate_triangles_are_skipped() {
        let mut mesh = TriangleMesh::new();
        mesh.push_triangle([0.0; 3], [0.0; 3], [0.0; 3], [0.0, 0.0, 1.0]);
        let img = render_mesh(&mesh, &Camera::with_viewport(16, 16), [1.0; 3]);
        // A zero-area triangle should not light the whole screen (the single
        // pixel it might touch is acceptable).
        assert!(img.coverage() <= 1.0 / 256.0 + 1e-9);
    }
}
