//! Orthographic volume ray casting.
//!
//! The second visualization technique the paper models (Section 4.4.2): rays
//! are cast through the non-empty blocks of the volume, samples are mapped
//! through a transfer function and composited front to back.  As in the
//! paper's cost model the projection is orthographic, so the number of rays
//! and samples per ray depend only on the viewport and the volume extent,
//! and early ray termination can be disabled to make the cost predictable.

use crate::camera::Camera;
use crate::image::Image;
use crate::transfer::TransferFunction;
use rayon::prelude::*;
use ricsa_vizdata::field::ScalarField;
use serde::{Deserialize, Serialize};

/// Configuration of a ray-casting pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaycastConfig {
    /// Distance between successive samples along a ray, in voxels.
    pub step: f32,
    /// Stop compositing once accumulated opacity exceeds this value; set to
    /// a value ≥ 1 to disable early termination (as the cost model assumes).
    pub early_termination_opacity: f32,
    /// Background colour composited behind the volume.
    pub background: [f32; 3],
}

impl Default for RaycastConfig {
    fn default() -> Self {
        RaycastConfig {
            step: 1.0,
            early_termination_opacity: 0.98,
            background: [0.0, 0.0, 0.0],
        }
    }
}

impl RaycastConfig {
    /// A configuration with early ray termination disabled (every sample
    /// along every ray is evaluated), matching the paper's simplification.
    pub fn without_early_termination() -> Self {
        RaycastConfig {
            early_termination_opacity: 2.0,
            ..RaycastConfig::default()
        }
    }
}

/// Statistics of a ray-casting pass, used to calibrate the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RaycastStats {
    /// Number of rays cast (viewport pixels).
    pub rays: usize,
    /// Total samples evaluated across all rays.
    pub samples: u64,
}

/// Cast rays through `field` and return the composited image plus sampling
/// statistics.
pub fn raycast(
    field: &ScalarField,
    camera: &Camera,
    transfer: &TransferFunction,
    config: &RaycastConfig,
) -> (Image, RaycastStats) {
    let d = field.dims;
    let center = [
        (d.nx.saturating_sub(1)) as f32 / 2.0,
        (d.ny.saturating_sub(1)) as f32 / 2.0,
        (d.nz.saturating_sub(1)) as f32 / 2.0,
    ];
    let half_extent = (d.nx.max(d.ny).max(d.nz)) as f32 / 2.0;
    let max_march = 4.0 * half_extent.max(1.0);
    let step = config.step.max(0.05);

    let rows: Vec<(Vec<u8>, u64)> = (0..camera.height)
        .into_par_iter()
        .map(|py| {
            let mut row = Vec::with_capacity(camera.width * 4);
            let mut samples = 0u64;
            for px in 0..camera.width {
                let (origin, dir) = camera.pixel_ray(px, py, center, half_extent);
                let (rgba, n) = march_ray(field, transfer, config, origin, dir, max_march, step);
                samples += n;
                row.extend_from_slice(&rgba);
            }
            (row, samples)
        })
        .collect();

    let mut image = Image::new(camera.width, camera.height);
    let mut total_samples = 0u64;
    let mut offset = 0usize;
    for (row, samples) in rows {
        image.pixels[offset..offset + row.len()].copy_from_slice(&row);
        offset += row.len();
        total_samples += samples;
    }
    let stats = RaycastStats {
        rays: camera.width * camera.height,
        samples: total_samples,
    };
    (image, stats)
}

fn march_ray(
    field: &ScalarField,
    transfer: &TransferFunction,
    config: &RaycastConfig,
    origin: [f32; 3],
    dir: [f32; 3],
    max_march: f32,
    step: f32,
) -> ([u8; 4], u64) {
    let d = field.dims;
    let inside = |p: [f32; 3]| {
        p[0] >= 0.0
            && p[1] >= 0.0
            && p[2] >= 0.0
            && p[0] <= (d.nx.saturating_sub(1)) as f32
            && p[1] <= (d.ny.saturating_sub(1)) as f32
            && p[2] <= (d.nz.saturating_sub(1)) as f32
    };
    let mut color = [0.0f32; 3];
    let mut alpha = 0.0f32;
    let mut samples = 0u64;
    let mut t = 0.0f32;
    while t <= max_march {
        let p = [
            origin[0] + t * dir[0],
            origin[1] + t * dir[1],
            origin[2] + t * dir[2],
        ];
        t += step;
        if !inside(p) {
            continue;
        }
        samples += 1;
        let v = field.sample_trilinear(p[0], p[1], p[2]);
        let (c, o) = transfer.evaluate(v);
        let o = (o * step).clamp(0.0, 1.0);
        if o > 0.0 {
            let weight = (1.0 - alpha) * o;
            for k in 0..3 {
                color[k] += weight * c[k];
            }
            alpha += weight;
            if alpha >= config.early_termination_opacity {
                break;
            }
        }
    }
    for (c, background) in color.iter_mut().zip(config.background) {
        *c += (1.0 - alpha) * background;
    }
    (
        [
            (color[0].clamp(0.0, 1.0) * 255.0) as u8,
            (color[1].clamp(0.0, 1.0) * 255.0) as u8,
            (color[2].clamp(0.0, 1.0) * 255.0) as u8,
            (alpha.clamp(0.0, 1.0) * 255.0) as u8,
        ],
        samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_vizdata::field::Dims;
    use ricsa_vizdata::synth::{SyntheticVolume, VolumeKind};

    fn ramp_volume(n: usize) -> ScalarField {
        SyntheticVolume::new(VolumeKind::RadialRamp, Dims::cube(n), 1).generate()
    }

    #[test]
    fn raycast_produces_a_centered_bright_region() {
        let field = ramp_volume(24);
        let cam = Camera::with_viewport(48, 48);
        let tf = TransferFunction::grayscale_ramp(0.2, 1.0);
        let (img, stats) = raycast(&field, &cam, &tf, &RaycastConfig::default());
        assert_eq!(stats.rays, 48 * 48);
        assert!(stats.samples > 0);
        let center = img.get(24, 24);
        let corner = img.get(1, 1);
        assert!(corner[0] < 30, "corner {corner:?}");
        assert!(
            center[0] > corner[0].saturating_add(40),
            "center {center:?} should be clearly brighter than corner {corner:?}"
        );
    }

    #[test]
    fn disabling_early_termination_increases_samples() {
        let field = ramp_volume(20);
        let cam = Camera::with_viewport(24, 24);
        let tf = TransferFunction::grayscale_ramp(0.0, 0.5);
        let (_, with_term) = raycast(&field, &cam, &tf, &RaycastConfig::default());
        let (_, without) = raycast(
            &field,
            &cam,
            &tf,
            &RaycastConfig::without_early_termination(),
        );
        assert!(without.samples >= with_term.samples);
    }

    #[test]
    fn sample_count_scales_with_viewport_area() {
        let field = ramp_volume(16);
        let tf = TransferFunction::grayscale_ramp(0.0, 1.0);
        let config = RaycastConfig::without_early_termination();
        let (_, small) = raycast(&field, &Camera::with_viewport(16, 16), &tf, &config);
        let (_, large) = raycast(&field, &Camera::with_viewport(32, 32), &tf, &config);
        let ratio = large.samples as f64 / small.samples.max(1) as f64;
        assert!((ratio - 4.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn transparent_transfer_function_yields_background() {
        let field = ramp_volume(16);
        let cam = Camera::with_viewport(16, 16);
        let tf = TransferFunction::band(100.0, 0.1, [1.0, 0.0, 0.0]); // never hit
        let config = RaycastConfig {
            background: [0.0, 0.0, 1.0],
            ..RaycastConfig::default()
        };
        let (img, _) = raycast(&field, &cam, &tf, &config);
        let p = img.get(8, 8);
        assert_eq!(p[2], 255);
        assert_eq!(p[0], 0);
        assert_eq!(p[3], 0); // nothing accumulated
    }

    #[test]
    fn smaller_step_samples_more_densely() {
        let field = ramp_volume(16);
        let cam = Camera::with_viewport(12, 12);
        let tf = TransferFunction::grayscale_ramp(0.0, 1.0);
        let coarse = RaycastConfig {
            step: 2.0,
            ..RaycastConfig::without_early_termination()
        };
        let fine = RaycastConfig {
            step: 0.5,
            ..RaycastConfig::without_early_termination()
        };
        let (_, c) = raycast(&field, &cam, &tf, &coarse);
        let (_, f) = raycast(&field, &cam, &tf, &fine);
        assert!(f.samples > 2 * c.samples);
    }
}
