//! The filtering / preprocessing stage of the visualization pipeline.
//!
//! Per the paper (Section 4.1) "the filtering module extracts the information
//! of interest from the raw data and performs necessary preprocessing to
//! improve processing efficiency and save communication resources as well."
//! Concretely this stage selects a variable, optionally restricts to an
//! octree subset, clamps/normalizes the value range and can down-sample —
//! each option reduces the size `m_j` of the data flowing downstream, which
//! is exactly what the delay model cares about.

use ricsa_vizdata::downsample::downsample;
use ricsa_vizdata::field::ScalarField;
use ricsa_vizdata::io::VolumeContainer;
use ricsa_vizdata::octree::Octree;
use serde::{Deserialize, Serialize};

/// Filtering parameters, chosen by the user in the client GUI and shipped
/// over the control channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterParams {
    /// Which variable of the multivariate container to visualize.
    pub variable: String,
    /// Octant (0..8) to restrict to, or `None` for the whole dataset —
    /// the GUI's "one of the eight octree subsets or entire dataset".
    pub octant: Option<usize>,
    /// Integer down-sampling factor (1 = none).
    pub downsample_factor: usize,
    /// Clamp values to this range and rescale to `[0, 1]`, if set.
    pub normalize_range: Option<(f32, f32)>,
    /// Octree block size used for the subset selection and later extraction.
    pub block_size: usize,
}

impl Default for FilterParams {
    fn default() -> Self {
        FilterParams {
            variable: "pressure".to_string(),
            octant: None,
            downsample_factor: 1,
            normalize_range: None,
            block_size: 16,
        }
    }
}

/// Errors from the filtering stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterError {
    /// The requested variable is not present in the container.
    UnknownVariable(String),
    /// The parameters are invalid (e.g. zero down-sampling factor).
    BadParams(String),
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterError::UnknownVariable(v) => write!(f, "unknown variable '{v}'"),
            FilterError::BadParams(m) => write!(f, "bad filter parameters: {m}"),
        }
    }
}

impl std::error::Error for FilterError {}

/// Apply the filtering stage to a raw container, producing the derived field
/// handed to the transformation stage.
pub fn apply_filter(
    container: &VolumeContainer,
    params: &FilterParams,
) -> Result<ScalarField, FilterError> {
    if params.downsample_factor == 0 {
        return Err(FilterError::BadParams(
            "downsample factor must be >= 1".into(),
        ));
    }
    if params.block_size == 0 {
        return Err(FilterError::BadParams("block size must be >= 1".into()));
    }
    let field = container
        .variable(&params.variable)
        .ok_or_else(|| FilterError::UnknownVariable(params.variable.clone()))?;

    // Octant restriction: zero out everything outside the selected octant so
    // the downstream modules only see the subset (the data size reduction is
    // what matters to the pipeline model; a crop would also change dims).
    let mut working = field.clone();
    if let Some(octant) = params.octant {
        let octree = Octree::build(&working, params.block_size);
        let keep: Vec<_> = octree
            .octant_blocks(octant)
            .iter()
            .map(|b| (b.min, b.max))
            .collect();
        let mut mask = ScalarField::zeros(working.dims);
        for (lo, hi) in keep {
            for z in lo[2]..hi[2] {
                for y in lo[1]..hi[1] {
                    for x in lo[0]..hi[0] {
                        mask.set(x, y, z, working.get(x, y, z));
                    }
                }
            }
        }
        working = mask;
    }

    if params.downsample_factor > 1 {
        working = downsample(&working, params.downsample_factor);
    }

    if let Some((lo, hi)) = params.normalize_range {
        if hi <= lo {
            return Err(FilterError::BadParams(format!(
                "normalize range [{lo}, {hi}] is empty"
            )));
        }
        let span = hi - lo;
        for v in &mut working.data {
            *v = ((*v - lo) / span).clamp(0.0, 1.0);
        }
    }
    Ok(working)
}

/// The fraction by which filtering reduces the data size, used by the cost
/// database to set the filter module's output size.
pub fn reduction_factor(params: &FilterParams) -> f64 {
    let octant = if params.octant.is_some() {
        1.0 / 8.0
    } else {
        1.0
    };
    let ds = params.downsample_factor.max(1).pow(3) as f64;
    octant / ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_vizdata::field::Dims;

    fn container() -> VolumeContainer {
        let mut c = VolumeContainer::new(1, 0.5);
        c.push(
            "pressure",
            ScalarField::from_fn(Dims::cube(16), |x, y, z| (x + y + z) as f32),
        );
        c.push(
            "density",
            ScalarField::from_fn(Dims::cube(16), |x, _, _| x as f32),
        );
        c
    }

    #[test]
    fn selects_the_requested_variable() {
        let c = container();
        let f = apply_filter(&c, &FilterParams::default()).unwrap();
        assert_eq!(f.get(1, 2, 3), 6.0);
        let g = apply_filter(
            &c,
            &FilterParams {
                variable: "density".into(),
                ..FilterParams::default()
            },
        )
        .unwrap();
        assert_eq!(g.get(5, 2, 3), 5.0);
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let c = container();
        let err = apply_filter(
            &c,
            &FilterParams {
                variable: "vorticity".into(),
                ..FilterParams::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FilterError::UnknownVariable(_)));
        assert!(err.to_string().contains("vorticity"));
    }

    #[test]
    fn octant_selection_zeroes_the_rest() {
        let c = container();
        let params = FilterParams {
            octant: Some(0),
            block_size: 8,
            ..FilterParams::default()
        };
        let f = apply_filter(&c, &params).unwrap();
        // Octant 0 covers the low corner; a voxel there keeps its value.
        assert_eq!(f.get(2, 2, 2), 6.0);
        // A voxel in the opposite octant is zeroed.
        assert_eq!(f.get(12, 12, 12), 0.0);
    }

    #[test]
    fn downsampling_shrinks_and_normalization_rescales() {
        let c = container();
        let params = FilterParams {
            downsample_factor: 2,
            normalize_range: Some((0.0, 45.0)),
            ..FilterParams::default()
        };
        let f = apply_filter(&c, &params).unwrap();
        assert_eq!(f.dims, Dims::cube(8));
        let (lo, hi) = f.value_range();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let c = container();
        assert!(apply_filter(
            &c,
            &FilterParams {
                downsample_factor: 0,
                ..FilterParams::default()
            }
        )
        .is_err());
        assert!(apply_filter(
            &c,
            &FilterParams {
                block_size: 0,
                ..FilterParams::default()
            }
        )
        .is_err());
        assert!(apply_filter(
            &c,
            &FilterParams {
                normalize_range: Some((1.0, 1.0)),
                ..FilterParams::default()
            }
        )
        .is_err());
    }

    #[test]
    fn reduction_factor_combines_octant_and_downsampling() {
        assert_eq!(reduction_factor(&FilterParams::default()), 1.0);
        let octant = FilterParams {
            octant: Some(3),
            ..FilterParams::default()
        };
        assert!((reduction_factor(&octant) - 0.125).abs() < 1e-12);
        let ds = FilterParams {
            downsample_factor: 2,
            ..FilterParams::default()
        };
        assert!((reduction_factor(&ds) - 0.125).abs() < 1e-12);
        let both = FilterParams {
            octant: Some(1),
            downsample_factor: 2,
            ..FilterParams::default()
        };
        assert!((reduction_factor(&both) - 0.015625).abs() < 1e-12);
    }
}
